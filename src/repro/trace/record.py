"""Trace records and batched trace containers.

A trace is the unit of exchange between the workload generator, the
cache hierarchy, the DRAM model, and the AVF engine.  The paper's
traces carry, for every memory request: the number of intervening
non-memory instructions, the program counter, the memory address, and
the request type.  We keep the same fields (minus the PC, which none of
the paper's experiments consume) in a struct-of-arrays layout so the
simulators can run vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.config import LINE_SIZE, PAGE_SIZE


@dataclass(frozen=True)
class TraceRecord:
    """A single memory request (scalar view, used at module boundaries)."""

    core: int
    address: int
    is_write: bool
    #: Non-memory instructions retired since the previous request of
    #: the same core.
    gap_instructions: int

    @property
    def line(self) -> int:
        return self.address // LINE_SIZE

    @property
    def page(self) -> int:
        return self.address // PAGE_SIZE


class Trace:
    """A time-ordered batch of memory requests in struct-of-arrays form.

    Attributes are parallel numpy arrays sorted by logical issue order
    (the generator's global interleaving order):

    * ``core``       — issuing core id (uint16)
    * ``address``    — byte address (uint64)
    * ``is_write``   — request type (bool)
    * ``gap``        — intervening non-memory instructions for that core
    """

    __slots__ = ("core", "address", "is_write", "gap")

    def __init__(
        self,
        core: np.ndarray,
        address: np.ndarray,
        is_write: np.ndarray,
        gap: np.ndarray,
    ) -> None:
        n = len(address)
        if not (len(core) == len(is_write) == len(gap) == n):
            raise ValueError("trace arrays must have equal length")
        self.core = np.ascontiguousarray(core, dtype=np.uint16)
        self.address = np.ascontiguousarray(address, dtype=np.uint64)
        self.is_write = np.ascontiguousarray(is_write, dtype=bool)
        self.gap = np.ascontiguousarray(gap, dtype=np.uint32)

    def __len__(self) -> int:
        return len(self.address)

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(len(self)):
            yield TraceRecord(
                core=int(self.core[i]),
                address=int(self.address[i]),
                is_write=bool(self.is_write[i]),
                gap_instructions=int(self.gap[i]),
            )

    @property
    def lines(self) -> np.ndarray:
        """Cache-line index of every request."""
        return self.address // LINE_SIZE

    @property
    def pages(self) -> np.ndarray:
        """4 KB page index of every request."""
        return self.address // PAGE_SIZE

    @property
    def total_instructions(self) -> int:
        """All retired instructions: gaps plus one per memory request."""
        return int(self.gap.sum()) + len(self)

    def footprint_pages(self) -> np.ndarray:
        """Sorted unique pages touched by the trace."""
        return np.unique(self.pages)

    def slice(self, start: int, stop: int) -> "Trace":
        """A view-like sub-trace of requests ``[start, stop)``."""
        return Trace(
            self.core[start:stop],
            self.address[start:stop],
            self.is_write[start:stop],
            self.gap[start:stop],
        )

    @classmethod
    def concatenate(cls, traces: "list[Trace]") -> "Trace":
        """Append traces back to back (no re-interleaving)."""
        if not traces:
            return cls.empty()
        return cls(
            np.concatenate([t.core for t in traces]),
            np.concatenate([t.address for t in traces]),
            np.concatenate([t.is_write for t in traces]),
            np.concatenate([t.gap for t in traces]),
        )

    @classmethod
    def empty(cls) -> "Trace":
        return cls(
            np.empty(0, dtype=np.uint16),
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.uint32),
        )

    @classmethod
    def from_records(cls, records: "list[TraceRecord]") -> "Trace":
        """Build a batch trace from scalar records (test convenience)."""
        return cls(
            np.array([r.core for r in records], dtype=np.uint16),
            np.array([r.address for r in records], dtype=np.uint64),
            np.array([r.is_write for r in records], dtype=bool),
            np.array([r.gap_instructions for r in records], dtype=np.uint32),
        )

    def mpki(self) -> float:
        """Misses (memory requests) per kilo-instruction of this trace."""
        instructions = self.total_instructions
        if instructions == 0:
            return 0.0
        return 1000.0 * len(self) / instructions
