"""Benchmark profiles as data: JSON round-trip.

Users modelling their own applications should not have to edit
``repro.trace.workloads``; a profile — footprint, MPKI, MLP, and the
region list — serialises to a small JSON document:

```json
{
  "name": "kvstore",
  "footprint_mb": 256,
  "mpki": 12.0,
  "mlp": 6,
  "regions": [
    {"name": "hash_index", "footprint_share": 0.25, "hotness": 4.0,
     "write_frac": 0.05, "read_spread": 0.7, "lines_touched": 32}
  ]
}
```

Loaded profiles can be registered into the global
:data:`~repro.trace.workloads.PROFILES` table so the rest of the
library (``Workload.spec``, the CLI, the harness) picks them up by
name.
"""

from __future__ import annotations

import json
import os

from repro.trace.synthetic import RegionSpec
from repro.trace.workloads import PROFILES, BenchmarkProfile

#: Region fields with their defaults (absent keys fall back).
_REGION_OPTIONAL = {
    "zipf_alpha": 0.6,
    "lines_touched": 64,
    "churn": 0.0,
}
_REGION_REQUIRED = (
    "name", "footprint_share", "hotness", "write_frac", "read_spread",
)


def region_to_dict(region: RegionSpec) -> dict:
    out = {key: getattr(region, key) for key in _REGION_REQUIRED}
    for key, default in _REGION_OPTIONAL.items():
        value = getattr(region, key)
        if value != default:
            out[key] = value
    return out


def region_from_dict(data: dict) -> RegionSpec:
    missing = [k for k in _REGION_REQUIRED if k not in data]
    if missing:
        raise ValueError(f"region missing fields: {missing}")
    unknown = set(data) - set(_REGION_REQUIRED) - set(_REGION_OPTIONAL)
    if unknown:
        raise ValueError(f"region has unknown fields: {sorted(unknown)}")
    kwargs = {k: data[k] for k in _REGION_REQUIRED}
    for key, default in _REGION_OPTIONAL.items():
        kwargs[key] = data.get(key, default)
    return RegionSpec(**kwargs)


def profile_to_dict(profile: BenchmarkProfile) -> dict:
    return {
        "name": profile.name,
        "footprint_mb": profile.footprint_mb,
        "mpki": profile.mpki,
        "mlp": profile.mlp,
        "regions": [region_to_dict(r) for r in profile.regions],
    }


def profile_from_dict(data: dict) -> BenchmarkProfile:
    required = ("name", "footprint_mb", "mpki", "regions")
    missing = [k for k in required if k not in data]
    if missing:
        raise ValueError(f"profile missing fields: {missing}")
    if not data["regions"]:
        raise ValueError("profile needs at least one region")
    return BenchmarkProfile(
        name=str(data["name"]),
        footprint_mb=float(data["footprint_mb"]),
        mpki=float(data["mpki"]),
        mlp=int(data.get("mlp", 4)),
        regions=tuple(region_from_dict(r) for r in data["regions"]),
    )


def save_profile(path: "str | os.PathLike",
                 profile: BenchmarkProfile) -> None:
    with open(path, "w") as fh:
        json.dump(profile_to_dict(profile), fh, indent=2)
        fh.write("\n")


def load_profile(path: "str | os.PathLike") -> BenchmarkProfile:
    with open(path) as fh:
        return profile_from_dict(json.load(fh))


def register_profile(profile: BenchmarkProfile,
                     overwrite: bool = False) -> None:
    """Make a profile available to ``Workload.spec(profile.name)``."""
    if profile.name in PROFILES and not overwrite:
        raise ValueError(
            f"profile {profile.name!r} already registered; "
            "pass overwrite=True to replace it"
        )
    PROFILES[profile.name] = profile


def unregister_profile(name: str) -> None:
    """Remove a user-registered profile (bundled ones included — the
    caller owns the registry)."""
    PROFILES.pop(name, None)
