"""Per-benchmark statistical profiles and the :class:`Workload` API.

The paper evaluates seven SPEC CPU2006 benchmarks plus two DoE proxy
apps (XSBench, LULESH) as 16-copy homogeneous workloads, and five mixed
workloads (Table 2) built from fifteen SPEC benchmarks.  We do not have
the benchmark binaries, so each benchmark is modelled as a set of named
program structures (:class:`~repro.trace.synthetic.RegionSpec`) whose
sizes, hotness, write ratios and read spreads are calibrated to the
per-benchmark quantities the paper reports:

* mean memory AVF between 1.7% (astar) and 22.5% (milc)  — Fig. 2,
* MPKI ordering used to sort Fig. 7 (lbm/milc/mcf bandwidth-bound,
  astar/sphinx/dealII latency-bound),
* a hot & low-risk footprint share between 9% and 39%  — Fig. 4,
* annotation counts: a handful of structures for most benchmarks, tens
  for cactusADM — Fig. 17.

The region names double as annotation targets for Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PAGE_SIZE, knob_value
from repro.trace.record import Trace
from repro.trace.synthetic import (
    GeneratedCoreTrace,
    GeneratorParams,
    RegionLayout,
    RegionSpec,
    TraceGenerator,
    interleave_cores,
)

MB = 1024 * 1024


@dataclass(frozen=True)
class BenchmarkProfile:
    """Full-scale statistical description of one benchmark."""

    name: str
    #: Resident memory footprint of one copy, in MB (full scale).
    footprint_mb: float
    #: Main-memory misses per kilo-instruction (sets trace gaps).
    mpki: float
    regions: "tuple[RegionSpec, ...]"
    #: Memory-level parallelism: how many outstanding misses the
    #: benchmark's dependence structure sustains.  Pointer chasers
    #: (astar, mcf, omnetpp) are ~1-2; streaming kernels (lbm,
    #: libquantum) keep the full miss window busy.  This is what makes
    #: a workload latency-sensitive vs. bandwidth-intensive.
    mlp: int = 4

    def footprint_pages(self, scale: float = 1.0) -> int:
        pages = int(self.footprint_mb * MB * scale) // PAGE_SIZE
        return max(len(self.regions), pages)


def _r(
    name: str,
    share: float,
    hot: float,
    wf: float,
    spread: float,
    alpha: float = 0.6,
    lines: int = 64,
    churn: float = 0.0,
) -> RegionSpec:
    return RegionSpec(
        name=name,
        footprint_share=share,
        hotness=hot,
        write_frac=wf,
        read_spread=spread,
        zipf_alpha=alpha,
        lines_touched=lines,
        churn=churn,
    )


def _cactus_regions() -> "tuple[RegionSpec, ...]":
    """cactusADM: dozens of similarly-sized grid-function arrays.

    The paper needs 39 annotations for cactusADM (Fig. 17) because its
    hot & low-risk data is spread over many small structures.
    """
    regions = []
    rng = np.random.default_rng(1234)
    for i in range(48):
        if i % 2 == 0:
            # Actively updated grid functions: hot and short-lived.
            wf = 0.45 + 0.15 * rng.random()
            spread = 0.12 + 0.10 * rng.random()
            regions.append(
                _r(f"grid_fn_{i:02d}", 0.016, 3.0, wf, spread,
                   alpha=0.2, lines=40, churn=0.05)
            )
        else:
            # Read-mostly grid functions: warm but long-lived (risky).
            wf = 0.03 + 0.04 * rng.random()
            spread = 0.55 + 0.30 * rng.random()
            regions.append(
                _r(f"grid_fn_{i:02d}", 0.016, 1.2, wf, spread,
                   alpha=0.2, lines=24)
            )
    regions.append(_r("coeff_tables", 0.08, 1.5, 0.02, 0.90, alpha=0.3))
    regions.append(_r("halo_buffers", 0.07, 0.8, 0.55, 0.30, lines=16))
    regions.append(_r("cold_setup", 0.082, 0.02, 0.05, 0.35, alpha=0.2, lines=8))
    return tuple(regions)


#: Full-scale profiles for every benchmark the paper uses.
PROFILES: "dict[str, BenchmarkProfile]" = {
    p.name: p
    for p in [
        # -- latency-bound, low-AVF benchmarks --------------------------------
        BenchmarkProfile(
            "astar",
            footprint_mb=180,
            mpki=3.0,
            mlp=1,
            regions=(
                _r("way_array", 0.18, 6.0, 0.55, 0.05, alpha=0.9, lines=16),
                _r("open_list", 0.10, 3.0, 0.60, 0.04, lines=16, churn=0.10),
                _r("landscape", 0.42, 0.9, 0.03, 0.15, alpha=0.4, lines=8),
                _r("search_state", 0.12, 1.2, 0.45, 0.08, lines=16),
                _r("cold_heap", 0.18, 0.015, 0.10, 0.30, alpha=0.2, lines=4),
            ),
        ),
        BenchmarkProfile(
            "bzip",
            footprint_mb=160,
            mpki=3.5,
            mlp=2,
            regions=(
                _r("block_buffer", 0.25, 5.0, 0.50, 0.07, alpha=0.7, lines=32),
                _r("huffman_tables", 0.08, 3.5, 0.30, 0.15, lines=32),
                _r("sort_ptrs", 0.22, 1.5, 0.48, 0.06, lines=16, churn=0.15),
                _r("input_window", 0.45, 0.04, 0.04, 0.25, alpha=0.3, lines=8),
            ),
        ),
        BenchmarkProfile(
            "gcc",
            footprint_mb=220,
            mpki=4.5,
            mlp=2,
            regions=(
                _r("rtl_pool", 0.30, 4.0, 0.42, 0.08, alpha=0.8, lines=32,
                   churn=0.2),
                _r("symbol_table", 0.15, 2.0, 0.12, 0.25, lines=16),
                _r("df_bitmaps", 0.12, 3.0, 0.55, 0.06, lines=32),
                _r("cold_objects", 0.43, 0.03, 0.08, 0.25, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "deaIII",
            footprint_mb=300,
            mpki=2.5,
            mlp=3,
            regions=(
                _r("sparsity_pattern", 0.20, 3.5, 0.08, 0.30, alpha=0.5, lines=16),
                _r("solution_vec", 0.10, 5.0, 0.52, 0.08, lines=32),
                _r("system_matrix", 0.40, 1.0, 0.05, 0.18, alpha=0.3, lines=8),
                _r("dof_handler", 0.30, 0.04, 0.10, 0.25, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "omnetpp",
            footprint_mb=260,
            mpki=9.0,
            mlp=2,
            regions=(
                _r("event_queue", 0.12, 6.0, 0.50, 0.10, lines=32, churn=0.25),
                _r("message_pool", 0.22, 3.0, 0.45, 0.12, alpha=0.7, lines=32),
                _r("topology", 0.28, 1.2, 0.03, 0.45, alpha=0.4, lines=8),
                _r("stats_counters", 0.08, 2.5, 0.70, 0.05, lines=32),
                _r("cold_modules", 0.30, 0.03, 0.08, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "sphinx",
            footprint_mb=200,
            mpki=5.0,
            mlp=2,
            regions=(
                _r("acoustic_model", 0.45, 2.0, 0.01, 0.50, alpha=0.4, lines=12),
                _r("active_hmm", 0.12, 5.5, 0.58, 0.07, lines=32, churn=0.2),
                _r("lattice", 0.13, 2.5, 0.50, 0.10, lines=32),
                _r("cold_dict", 0.30, 0.03, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        # -- mid-range -------------------------------------------------------
        BenchmarkProfile(
            "xsbench",
            footprint_mb=450,
            mpki=14.0,
            mlp=10,
            regions=(
                _r("nuclide_grids", 0.55, 1.8, 0.005, 0.45, alpha=0.25, lines=12),
                _r("energy_grid", 0.20, 3.0, 0.01, 0.40, alpha=0.4, lines=16),
                _r("macro_xs_buf", 0.05, 6.0, 0.60, 0.06, lines=32),
                _r("cold_init", 0.20, 0.02, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "lulesh",
            footprint_mb=380,
            mpki=8.0,
            mlp=8,
            regions=(
                _r("nodal_forces", 0.15, 4.5, 0.55, 0.08, lines=32),
                _r("elem_centered", 0.30, 2.5, 0.35, 0.30, alpha=0.3, lines=24),
                _r("nodal_coords", 0.20, 3.0, 0.25, 0.45, alpha=0.3, lines=24),
                _r("mesh_conn", 0.20, 1.0, 0.01, 0.40, alpha=0.3, lines=12),
                _r("cold_regions", 0.15, 0.02, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "soplex",
            footprint_mb=340,
            mpki=20.0,
            mlp=6,
            regions=(
                _r("lp_matrix_cols", 0.35, 2.2, 0.02, 0.52, alpha=0.35, lines=24),
                _r("basis_factors", 0.18, 4.0, 0.55, 0.08, lines=32, churn=0.15),
                _r("pricing_vectors", 0.12, 5.0, 0.48, 0.10, lines=32),
                _r("bound_arrays", 0.10, 2.0, 0.15, 0.45, lines=32),
                _r("cold_presolve", 0.25, 0.03, 0.08, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "libquantum",
            footprint_mb=280,
            mpki=24.0,
            mlp=16,
            regions=(
                _r("quantum_reg", 0.55, 3.0, 0.12, 0.36, alpha=0.15, lines=40),
                _r("gate_workspace", 0.15, 4.0, 0.65, 0.06, lines=32),
                _r("cold_tables", 0.30, 0.03, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "leslie3d",
            footprint_mb=400,
            mpki=16.0,
            mlp=12,
            regions=(
                _r("flow_field", 0.45, 2.5, 0.30, 0.40, alpha=0.2, lines=32),
                _r("flux_buffers", 0.15, 4.0, 0.58, 0.08, lines=32),
                _r("metric_terms", 0.20, 1.8, 0.02, 0.50, alpha=0.25, lines=16),
                _r("cold_bc", 0.20, 0.02, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "GemsFDTD",
            footprint_mb=420,
            mpki=18.0,
            mlp=12,
            regions=(
                _r("e_field", 0.28, 2.8, 0.40, 0.40, alpha=0.2, lines=32),
                _r("h_field", 0.28, 2.8, 0.40, 0.40, alpha=0.2, lines=32),
                _r("update_coeffs", 0.18, 2.0, 0.01, 0.55, alpha=0.25, lines=16),
                _r("pml_buffers", 0.08, 3.5, 0.55, 0.08, lines=32),
                _r("cold_geometry", 0.18, 0.02, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "bwaves",
            footprint_mb=440,
            mpki=13.0,
            mlp=12,
            regions=(
                _r("block_matrix", 0.50, 2.2, 0.25, 0.45, alpha=0.2, lines=32),
                _r("rhs_vectors", 0.15, 3.5, 0.55, 0.10, lines=32),
                _r("jacobian_diag", 0.15, 2.0, 0.10, 0.55, alpha=0.25, lines=24),
                _r("cold_grid", 0.20, 0.02, 0.05, 0.30, alpha=0.2, lines=8),
            ),
        ),
        # -- bandwidth-bound, high-AVF benchmarks ------------------------------
        BenchmarkProfile(
            "mcf",
            footprint_mb=520,
            mpki=38.0,
            mlp=4,
            regions=(
                _r("node_array", 0.13, 6.0, 0.08, 0.85, alpha=0.15, lines=64),
                _r("arc_array", 0.25, 3.0, 0.05, 0.80, alpha=0.25, lines=24),
                _r("basket_heap", 0.08, 7.0, 0.60, 0.08, lines=64, churn=0.2),
                _r("pointer_scratch", 0.03, 14.0, 0.60, 0.06, alpha=0.3,
                   lines=48),
                _r("dual_prices", 0.07, 4.0, 0.50, 0.12, lines=32),
                _r("cold_aux", 0.44, 0.03, 0.08, 0.40, alpha=0.2, lines=6),
            ),
        ),
        BenchmarkProfile(
            "cactusADM",
            footprint_mb=480,
            mpki=22.0,
            mlp=8,
            regions=_cactus_regions(),
        ),
        BenchmarkProfile(
            "lbm",
            footprint_mb=460,
            mpki=32.0,
            mlp=16,
            regions=(
                # lbm is the paper's outlier: near-uniform access counts
                # (few pages in the "hot" upper quadrants of Fig. 4).
                _r("src_lattice", 0.44, 2.0, 0.28, 0.70, alpha=0.03, lines=44),
                _r("dst_lattice", 0.44, 2.0, 0.62, 0.12, alpha=0.03, lines=40),
                _r("obstacle_map", 0.08, 1.5, 0.01, 0.60, alpha=0.05, lines=16),
                _r("cold_setup", 0.04, 0.02, 0.05, 0.40, alpha=0.2, lines=8),
            ),
        ),
        BenchmarkProfile(
            "milc",
            footprint_mb=430,
            mpki=26.0,
            mlp=16,
            regions=(
                _r("su3_links", 0.40, 3.5, 0.12, 0.80, alpha=0.1, lines=32),
                _r("fermion_vecs", 0.30, 3.2, 0.35, 0.70, alpha=0.12, lines=32),
                _r("cg_workspace", 0.15, 2.5, 0.55, 0.15, alpha=0.2, lines=32),
                _r("accum_buffers", 0.03, 10.0, 0.60, 0.08, alpha=0.3,
                   lines=48),
                _r("cold_io", 0.12, 0.02, 0.05, 0.40, alpha=0.2, lines=8),
            ),
        ),
    ]
}

#: The nine benchmarks run as 16-copy homogeneous workloads (Sec. 3.3).
HOMOGENEOUS_BENCHMARKS = (
    "mcf",
    "lbm",
    "milc",
    "astar",
    "soplex",
    "libquantum",
    "cactusADM",
    "xsbench",
    "lulesh",
)


@dataclass
class WorkloadTrace:
    """A generated multi-core trace plus its page-layout metadata."""

    workload_name: str
    trace: Trace
    #: Logical time in [0, 1) of every request, aligned with ``trace``.
    times: np.ndarray
    #: Per-core region layouts in the global page namespace.
    core_layouts: "list[list[RegionLayout]]"
    #: Per-core benchmark names.
    core_benchmarks: "list[str]"
    #: Total footprint in pages (sum over cores).
    footprint_pages: int
    #: Explicit per-core MLP for workloads whose benchmarks are not in
    #: PROFILES (the frontier server generators); None -> look up.
    core_mlps: "list[int] | None" = None
    #: Optional per-page error-tolerance classes
    #: (:class:`repro.core.annotations.ToleranceMap`).
    tolerance: "object | None" = None

    @property
    def core_mlp(self) -> "list[int]":
        """Per-core outstanding-miss windows from the profiles."""
        # getattr: traces unpickled from pre-v3 caches lack the field.
        mlps = getattr(self, "core_mlps", None)
        if mlps is not None:
            return list(mlps)
        return [PROFILES[b].mlp for b in self.core_benchmarks]

    def structures(self) -> "dict[str, list[RegionLayout]]":
        """All annotatable structures, keyed by ``benchmark.region``.

        Homogeneous copies of the same benchmark share one annotation
        (annotating the source structure covers all 16 processes), so
        layouts from identical benchmarks aggregate under one key.
        """
        out: "dict[str, list[RegionLayout]]" = {}
        for bench, layouts in zip(self.core_benchmarks, self.core_layouts):
            for layout in layouts:
                out.setdefault(f"{bench}.{layout.spec.name}", []).append(layout)
        return out


@dataclass(frozen=True)
class Workload:
    """A named 16-core workload: one benchmark per core."""

    name: str
    cores: "tuple[str, ...]"

    def __post_init__(self) -> None:
        unknown = [b for b in self.cores if b not in PROFILES]
        if unknown:
            raise KeyError(f"unknown benchmarks: {unknown}")

    @classmethod
    def spec(cls, benchmark: str, num_cores: int = 16) -> "Workload":
        """A homogeneous workload: ``num_cores`` copies of ``benchmark``."""
        if benchmark not in PROFILES:
            raise KeyError(f"unknown benchmark: {benchmark}")
        return cls(name=benchmark, cores=(benchmark,) * num_cores)

    @classmethod
    def mix(cls, name: str) -> "Workload":
        """One of the paper's Table 2 mixes (``mix1`` .. ``mix5``)."""
        from repro.trace.mixes import MIXES

        if name not in MIXES:
            raise KeyError(f"unknown mix: {name}")
        return cls(name=name, cores=MIXES[name])

    def generate(
        self,
        scale: float = 1.0,
        accesses_per_core: int = 50_000,
        seed: "int | None" = None,
        phases: int = 8,
    ) -> WorkloadTrace:
        """Generate the interleaved multi-core memory trace.

        ``scale`` shrinks every footprint proportionally (pair it with
        :func:`repro.config.scaled_config`); access counts stay as
        requested so per-page hotness rises at small scales, which
        keeps the hot/cold contrast intact.  ``seed`` defaults to the
        ``seed`` knob (``REPRO_SEED``, else 0).
        """
        seed = knob_value("seed", seed)
        cores: "list[GeneratedCoreTrace]" = []
        next_page = 0
        total_pages = 0
        # Co-running cores share one time window, so each core's access
        # budget scales with its benchmark's MPKI: a bandwidth hog
        # issues proportionally more requests than a latency-bound
        # pointer chaser.  The workload total stays at
        # ``accesses_per_core * num_cores``.
        mpkis = np.array([PROFILES[b].mpki for b in self.cores])
        budgets = accesses_per_core * len(self.cores) * mpkis / mpkis.sum()
        for idx, bench in enumerate(self.cores):
            profile = PROFILES[bench]
            pages = profile.footprint_pages(scale)
            params = GeneratorParams(
                target_accesses=max(1, int(round(budgets[idx]))),
                mpki=profile.mpki,
                phases=phases,
                seed=seed * 131 + idx,
            )
            gen = TraceGenerator(
                regions=list(profile.regions),
                footprint_pages=pages,
                params=params,
                first_page=next_page,
            )
            cores.append(gen.generate())
            next_page += pages
            total_pages += pages

        merged, times = interleave_cores(cores)
        return WorkloadTrace(
            workload_name=self.name,
            trace=merged,
            times=times,
            core_layouts=[c.layouts for c in cores],
            core_benchmarks=list(self.cores),
            footprint_pages=total_pages,
        )
