"""Statistical page-behaviour trace generator.

The paper generates memory traces with Pin/PinPlay + SimPoint and
filters them through the Moola cache simulator, so that the trace seen
by the DRAM model contains only main-memory requests.  We do not have
the SPEC CPU2006 binaries or the authors' trace files, so this module
synthesises *main-memory* traces from per-benchmark statistical
profiles (see ``repro.trace.workloads``), preserving the properties the
paper's experiments consume:

* a Zipf-skewed page *hotness* distribution (raw access counts),
* a per-region *write ratio* (writes / reads),
* a per-region *read spread* that controls how long written data stays
  live before its last read — this is what determines a page's AVF, and
* per-region *churn*, which makes a fraction of pages bursty so that
  the hot set rotates across migration intervals.

The generative model is epoch-based and mirrors Figure 3 of the paper:
each touched cache line receives a sequence of epochs, an epoch being
one write followed by a burst of reads.  The line is ACE (vulnerable)
from the write until its last read of the epoch and dead afterwards, so
``read_spread`` directly dials the resulting AVF while the write ratio
and the access count remain independently controllable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.config import LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE
from repro.trace.record import Trace


@dataclass(frozen=True)
class RegionSpec:
    """A named program structure: a contiguous run of pages that share
    access behaviour.

    Regions are the annotation unit for the paper's Section 7
    experiments: a programmer pins whole structures (arrays, heaps,
    matrices) into HBM.
    """

    name: str
    #: Fraction of the workload footprint owned by this region.
    footprint_share: float
    #: Relative per-page access rate (hotness) of the region.
    hotness: float
    #: Fraction of the region's accesses that are writes.
    write_frac: float
    #: How far into an epoch the last read happens, in [0, 1].  This is
    #: the knob for AVF: ~0 means data dies immediately after being
    #: written (low risk), ~1 means data stays live until the next
    #: write (high risk).
    read_spread: float
    #: Zipf skew of per-page hotness inside the region; must be
    #: positive (alpha -> 0 approaches uniform).
    zipf_alpha: float = 0.6
    #: Distinct cache lines touched per page (out of 64).
    lines_touched: int = LINES_PER_PAGE
    #: Fraction of the region's pages that are bursty: their activity
    #: concentrates in one random sub-window instead of spanning the
    #: whole trace.
    churn: float = 0.0

    def __post_init__(self) -> None:
        # Every range check is phrased to also reject NaN (NaN fails
        # any comparison, so `not lo <= x <= hi` style catches it).
        if not 0 < self.footprint_share <= 1:
            raise ValueError(f"{self.name}: footprint_share must be in (0, 1]")
        if not self.hotness >= 0:
            raise ValueError(f"{self.name}: hotness must be non-negative")
        if not 0 <= self.write_frac <= 1:
            raise ValueError(f"{self.name}: write_frac must be in [0, 1]")
        if not 0 <= self.read_spread <= 1:
            raise ValueError(f"{self.name}: read_spread must be in [0, 1]")
        if not self.zipf_alpha > 0 or not np.isfinite(self.zipf_alpha):
            raise ValueError(
                f"{self.name}: zipf_alpha must be a positive finite "
                f"number (got {self.zipf_alpha!r}; alpha -> 0 "
                f"approaches uniform)")
        if not 1 <= self.lines_touched <= LINES_PER_PAGE:
            raise ValueError(f"{self.name}: lines_touched must be in [1, 64]")
        if not 0 <= self.churn <= 1:
            raise ValueError(f"{self.name}: churn must be in [0, 1]")


@dataclass(frozen=True)
class RegionLayout:
    """Placement of one region inside a core's page namespace."""

    spec: RegionSpec
    first_page: int
    num_pages: int

    @property
    def last_page(self) -> int:
        return self.first_page + self.num_pages - 1

    def contains(self, page: int) -> bool:
        return self.first_page <= page < self.first_page + self.num_pages


@dataclass
class GeneratorParams:
    """Scale-independent knobs of a generation run."""

    #: Total memory requests to emit for this core.
    target_accesses: int
    #: Misses per kilo-instruction; sets the instruction gaps.
    mpki: float
    #: Number of bursty-activity phases the trace window is split into.
    phases: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.target_accesses > 0:
            raise ValueError("target_accesses must be positive")
        if not self.mpki > 0 or not np.isfinite(self.mpki):
            raise ValueError("mpki must be a positive finite number")
        if not self.phases >= 1:
            raise ValueError("phases must be >= 1")


@dataclass
class GeneratedCoreTrace:
    """Trace of one core plus the layout metadata needed downstream."""

    trace: Trace
    layouts: "list[RegionLayout]"
    #: Logical time of each request in [0, 1), aligned with the trace.
    times: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]


def _zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Zipf-like weights 1/rank^alpha over ``n`` items, normalised."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -alpha if alpha > 0 else np.ones(n)
    return weights / weights.sum()


def layout_regions(
    regions: "list[RegionSpec]", footprint_pages: int, first_page: int = 0
) -> "list[RegionLayout]":
    """Assign each region a contiguous page range.

    Shares are normalised, every region receives at least one page, and
    rounding slack is apportioned by largest remainder so the total is
    exact even at tiny scales.
    """
    if not regions:
        raise ValueError("at least one region is required")
    if footprint_pages <= 0:
        raise ValueError(
            f"footprint_pages must be positive (got {footprint_pages})")
    if footprint_pages < len(regions):
        raise ValueError("footprint smaller than the number of regions")
    shares = np.array([r.footprint_share for r in regions], dtype=np.float64)
    shares = shares / shares.sum()
    exact = shares * footprint_pages
    sizes = np.maximum(1, np.floor(exact).astype(np.int64))
    # Largest-remainder apportionment of the rounding slack so every
    # region's size tracks its share even at tiny scales.
    slack = footprint_pages - int(sizes.sum())
    if slack > 0:
        order = np.argsort(-(exact - np.floor(exact)), kind="stable")
        for i in range(slack):
            sizes[order[i % len(order)]] += 1
    elif slack < 0:
        order = np.argsort(exact - np.floor(exact), kind="stable")
        remaining = -slack
        progress = True
        while remaining > 0 and progress:
            progress = False
            for victim in order:
                if remaining == 0:
                    break
                if sizes[victim] > 1:
                    sizes[victim] -= 1
                    remaining -= 1
                    progress = True
        if remaining > 0:
            raise ValueError(
                "footprint too small for the requested region shares"
            )
    layouts = []
    cursor = first_page
    for spec, size in zip(regions, sizes):
        layouts.append(RegionLayout(spec=spec, first_page=cursor, num_pages=int(size)))
        cursor += int(size)
    return layouts


class TraceGenerator:
    """Epoch-based synthetic trace generator for one core."""

    def __init__(
        self,
        regions: "list[RegionSpec]",
        footprint_pages: int,
        params: GeneratorParams,
        first_page: int = 0,
    ) -> None:
        if footprint_pages <= 0:
            raise ValueError("footprint_pages must be positive")
        self.params = params
        self.layouts = layout_regions(regions, footprint_pages, first_page)
        self._rng = np.random.default_rng(params.seed)

    # -- page-level plan ---------------------------------------------------

    def _page_plan(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Distribute the access budget over pages.

        Returns parallel per-page arrays: page id, access count, write
        fraction, read spread, lines touched, and the activity phase
        (-1 for pages active over the whole window).
        """
        rng = self._rng
        page_ids = []
        weights = []
        write_frac = []
        read_spread = []
        lines_touched = []
        phase = []
        for layout in self.layouts:
            spec = layout.spec
            ids = np.arange(
                layout.first_page, layout.first_page + layout.num_pages, dtype=np.int64
            )
            # Zipf weights are normalised to the region, so scale by the
            # page count to make ``hotness`` a *per-page* rate: a small
            # region is not hotter per page than a large one of equal
            # hotness.
            w = (
                _zipf_weights(layout.num_pages, spec.zipf_alpha)
                * layout.num_pages
                * spec.hotness
            )
            # Shuffle so hot pages are not always at the low addresses.
            rng.shuffle(w)
            page_ids.append(ids)
            weights.append(w)
            write_frac.append(np.full(layout.num_pages, spec.write_frac))
            # Jitter the spread slightly so AVF varies inside a region.
            spread = np.clip(
                spec.read_spread + rng.normal(0.0, 0.05, layout.num_pages), 0.0, 1.0
            )
            read_spread.append(spread)
            lines_touched.append(np.full(layout.num_pages, spec.lines_touched))
            ph = np.full(layout.num_pages, -1, dtype=np.int64)
            if spec.churn > 0 and self.params.phases > 1:
                bursty = rng.random(layout.num_pages) < spec.churn
                ph[bursty] = rng.integers(
                    0, self.params.phases, size=int(bursty.sum())
                )
            phase.append(ph)

        ids = np.concatenate(page_ids)
        w = np.concatenate(weights)
        w = w / w.sum()
        counts = rng.multinomial(self.params.target_accesses, w).astype(np.int64)
        return (
            ids,
            counts,
            np.concatenate(write_frac),
            np.concatenate(read_spread),
            np.concatenate(lines_touched).astype(np.int64),
            np.concatenate(phase),
        )

    # -- epoch expansion ---------------------------------------------------

    def generate(self) -> GeneratedCoreTrace:
        """Emit the core's trace, time-sorted, with instruction gaps.

        Expansion is per *line*: each touched page spreads its access
        budget over its ``lines_touched`` lines, and every line gets an
        independent epoch structure (a write opening each epoch, reads
        spread over the epoch's first ``read_spread`` fraction).  Lines
        that receive no write are read-only — their data was live
        before the window.
        """
        rng = self._rng
        ids, counts, wf, spread, lines_limit, phase = self._page_plan()

        touched = counts > 0
        ids, counts, wf = ids[touched], counts[touched], wf[touched]
        spread, lines_limit, phase = (
            spread[touched], lines_limit[touched], phase[touched],
        )

        # --- line-level arrays (one entry per touched line) ---
        lines_used = np.minimum(lines_limit, np.maximum(1, counts)).astype(np.int64)
        line_page_idx = np.repeat(np.arange(len(ids)), lines_used)
        n_lines = len(line_page_idx)
        line_local = np.arange(n_lines) - np.repeat(
            np.cumsum(lines_used) - lines_used, lines_used
        )
        # Spread the page's accesses and writes evenly over its lines.
        base_count = counts // lines_used
        extra_count = counts - base_count * lines_used
        line_count = base_count[line_page_idx] + (line_local < extra_count[line_page_idx])
        writes_total = np.round(counts * wf).astype(np.int64)
        writes_total = np.minimum(writes_total, counts)
        base_writes = writes_total // lines_used
        extra_writes = writes_total - base_writes * lines_used
        line_writes = base_writes[line_page_idx] + (
            line_local < extra_writes[line_page_idx]
        )
        line_writes = np.minimum(line_writes, line_count)
        line_reads = line_count - line_writes

        # --- epoch-level arrays (one entry per line-epoch) ---
        epochs = np.maximum(line_writes, 1)
        epoch_line_idx = np.repeat(np.arange(n_lines), epochs)
        n_epochs = len(epoch_line_idx)
        epoch_local = np.arange(n_epochs) - np.repeat(
            np.cumsum(epochs) - epochs, epochs
        )
        epochs_of = epochs[epoch_line_idx].astype(np.float64)

        # Each page's activity spans a window [w0, w1) in logical time.
        w0 = np.zeros(len(ids))
        w1 = np.ones(len(ids))
        bursty = phase >= 0
        if bursty.any():
            w0[bursty] = phase[bursty] / self.params.phases
            w1[bursty] = (phase[bursty] + 1) / self.params.phases
        epoch_page = line_page_idx[epoch_line_idx]
        span = (w1 - w0)[epoch_page]
        epoch_len = span / epochs_of
        epoch_start = w0[epoch_page] + epoch_local * epoch_len

        # Whether the epoch opens with a real write (read-only lines
        # have a single epoch that starts pre-written).
        has_write = np.repeat(line_writes > 0, epochs)

        # Reads per epoch: each line's read budget split evenly over
        # its epochs, remainder to the earliest epochs.
        base_reads = line_reads // epochs
        extra_reads = line_reads - base_reads * epochs
        reads_per_epoch = base_reads[epoch_line_idx] + (
            epoch_local < extra_reads[epoch_line_idx]
        )

        # --- expand to request-level arrays ---
        spread_e = spread[epoch_page]

        wr_page = epoch_page[has_write]
        wr_time = epoch_start[has_write]
        wr_line = line_local[epoch_line_idx[has_write]]

        rd_epoch = np.repeat(np.arange(n_epochs), reads_per_epoch)
        n_reads = len(rd_epoch)
        rd_page = epoch_page[rd_epoch]
        # Reads land uniformly within [start, start + spread * len) of
        # their epoch; a tiny offset keeps them after the write.
        u = rng.random(n_reads)
        rd_time = (
            epoch_start[rd_epoch]
            + (0.02 + 0.98 * u * spread_e[rd_epoch]) * epoch_len[rd_epoch]
        )
        rd_line = line_local[epoch_line_idx[rd_epoch]]

        page = np.concatenate([ids[wr_page], ids[rd_page]])
        line = np.concatenate([wr_line, rd_line])
        time = np.concatenate([wr_time, rd_time])
        is_write = np.concatenate(
            [np.ones(len(wr_page), dtype=bool), np.zeros(n_reads, dtype=bool)]
        )

        order = _stable_time_argsort(time)
        page, line, time, is_write = page[order], line[order], time[order], is_write[order]

        address = page.astype(np.uint64) * PAGE_SIZE + line.astype(np.uint64) * LINE_SIZE

        n = len(address)
        mean_gap = max(0.0, 1000.0 / self.params.mpki - 1.0)
        if mean_gap > 0:
            gap = rng.geometric(1.0 / (1.0 + mean_gap), size=n) - 1
        else:
            gap = np.zeros(n, dtype=np.int64)

        trace = Trace(
            core=np.zeros(n, dtype=np.uint16),
            address=address,
            is_write=is_write,
            gap=gap.astype(np.uint32),
        )
        return GeneratedCoreTrace(trace=trace, layouts=self.layouts, times=time)


def _stable_time_argsort(times: np.ndarray) -> np.ndarray:
    """Stable argsort of a nonnegative float64 time array.

    For nonnegative finite IEEE-754 doubles the raw bit pattern is
    monotonic in the value and equal values share one pattern, so a
    stable argsort of the ``uint64`` view orders exactly like a stable
    argsort of the floats while using numpy's integer sort path
    (measured ~10% faster on both random times and the concatenated
    per-core runs :func:`interleave_cores` merges; the e2e pipeline
    benchmark's ``synthesis`` stage picks the gain up).  Anything
    outside that domain — negatives, ``-0.0``, NaN/inf, other dtypes,
    non-contiguous views — falls back to the float sort.
    """
    if (times.dtype == np.float64 and times.flags.c_contiguous
            and len(times)
            and not np.signbit(times).any()
            and np.isfinite(times).all()):
        return np.argsort(times.view(np.uint64), kind="stable")
    return np.argsort(times, kind="stable")


def interleave_cores(cores: "list[GeneratedCoreTrace]") -> "tuple[Trace, np.ndarray]":
    """Merge per-core traces into one global, time-ordered trace.

    Returns the merged trace and the merged logical-time array.  Core
    ids are assigned by list position.
    """
    if not cores:
        return Trace.empty(), np.empty(0)
    addresses = np.concatenate([c.trace.address for c in cores])
    is_write = np.concatenate([c.trace.is_write for c in cores])
    gaps = np.concatenate([c.trace.gap for c in cores])
    times = np.concatenate([c.times for c in cores])
    core_ids = np.concatenate(
        [np.full(len(c.trace), i, dtype=np.uint16) for i, c in enumerate(cores)]
    )
    order = _stable_time_argsort(times)
    merged = Trace(
        core=core_ids[order],
        address=addresses[order],
        is_write=is_write[order],
        gap=gaps[order],
    )
    return merged, times[order]
