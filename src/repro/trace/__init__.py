"""Workload substrate: trace records, synthetic generation, benchmarks."""

from repro.trace.record import Trace, TraceRecord
from repro.trace.synthetic import (
    GeneratorParams,
    RegionLayout,
    RegionSpec,
    TraceGenerator,
    interleave_cores,
    layout_regions,
)
from repro.trace.workloads import (
    HOMOGENEOUS_BENCHMARKS,
    PROFILES,
    BenchmarkProfile,
    Workload,
    WorkloadTrace,
)
from repro.trace.mixes import MIX_NAMES, MIX_TABLE, MIXES
from repro.trace.io import load_npz, load_text, save_npz, save_text
from repro.trace.profiles_io import (
    load_profile,
    register_profile,
    save_profile,
    unregister_profile,
)
from repro.trace.simpoints import (
    KMeans,
    SimPoint,
    estimate_with_simpoints,
    interval_vectors,
    pick_simpoints,
)

__all__ = [
    "Trace",
    "TraceRecord",
    "RegionSpec",
    "RegionLayout",
    "GeneratorParams",
    "TraceGenerator",
    "layout_regions",
    "interleave_cores",
    "BenchmarkProfile",
    "Workload",
    "WorkloadTrace",
    "PROFILES",
    "HOMOGENEOUS_BENCHMARKS",
    "MIXES",
    "MIX_TABLE",
    "MIX_NAMES",
    "save_npz",
    "load_npz",
    "save_text",
    "load_text",
    "save_profile",
    "load_profile",
    "register_profile",
    "unregister_profile",
    "SimPoint",
    "KMeans",
    "interval_vectors",
    "pick_simpoints",
    "estimate_with_simpoints",
]
