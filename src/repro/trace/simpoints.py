"""SimPoint-style representative-interval selection.

The paper generates traces with SimPoints [54]: execution is split into
fixed-size intervals, each interval is summarised by a feature vector
(SimPoint uses basic-block vectors; for memory traces the natural
analogue is the per-page access histogram), the vectors are clustered
with k-means, and one representative interval per cluster — weighted by
cluster size — stands in for the whole execution.

This module reimplements that flow for memory traces:

* :func:`interval_vectors` — split a trace into intervals and build
  normalised page-access histograms,
* :class:`KMeans` — a small, dependency-free Lloyd's k-means with
  k-means++ seeding, and
* :func:`pick_simpoints` — cluster and select the representative
  interval (closest to each centroid) with its weight.

:func:`estimate_with_simpoints` demonstrates the intended use: estimate
a whole-trace statistic from the weighted representatives only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.record import Trace


@dataclass(frozen=True)
class SimPoint:
    """One representative interval."""

    interval: int
    weight: float
    cluster: int


@dataclass
class IntervalFeatures:
    """Per-interval page-access histograms."""

    #: (num_intervals x num_pages) row-normalised access frequencies.
    vectors: np.ndarray
    #: Page ids for the histogram columns.
    pages: np.ndarray
    #: [start, stop) request index of every interval.
    bounds: "list[tuple[int, int]]"


def interval_vectors(trace: Trace, interval_length: int) -> IntervalFeatures:
    """Split ``trace`` into ``interval_length``-request intervals and
    build the per-interval page-access frequency vectors."""
    if interval_length <= 0:
        raise ValueError("interval_length must be positive")
    if len(trace) == 0:
        raise ValueError("cannot build features of an empty trace")
    pages = trace.pages.astype(np.int64)
    unique = np.unique(pages)
    column = np.searchsorted(unique, pages)

    n_intervals = (len(trace) + interval_length - 1) // interval_length
    vectors = np.zeros((n_intervals, len(unique)))
    bounds = []
    for i in range(n_intervals):
        start = i * interval_length
        stop = min(len(trace), start + interval_length)
        np.add.at(vectors[i], column[start:stop], 1.0)
        total = vectors[i].sum()
        if total:
            vectors[i] /= total
        bounds.append((start, stop))
    return IntervalFeatures(vectors=vectors, pages=unique, bounds=bounds)


class KMeans:
    """Lloyd's algorithm with k-means++ seeding (no sklearn needed)."""

    def __init__(self, k: int, max_iterations: int = 50, seed: int = 0) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.centroids: "np.ndarray | None" = None

    def _seed_centroids(self, data: np.ndarray,
                        rng: np.random.Generator) -> np.ndarray:
        n = len(data)
        centroids = [data[rng.integers(n)]]
        for _ in range(1, self.k):
            d2 = np.min(
                [((data - c) ** 2).sum(axis=1) for c in centroids], axis=0
            )
            total = d2.sum()
            if total == 0:
                centroids.append(data[rng.integers(n)])
                continue
            centroids.append(data[rng.choice(n, p=d2 / total)])
        return np.stack(centroids)

    def fit(self, data: np.ndarray) -> np.ndarray:
        """Cluster rows of ``data``; returns per-row labels."""
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or len(data) == 0:
            raise ValueError("data must be a non-empty 2-D array")
        k = min(self.k, len(data))
        rng = np.random.default_rng(self.seed)
        self.k = k
        centroids = self._seed_centroids(data, rng)
        labels = np.zeros(len(data), dtype=np.int64)
        for _ in range(self.max_iterations):
            distances = ((data[:, None, :] - centroids[None, :, :]) ** 2
                         ).sum(axis=2)
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for cluster in range(k):
                members = data[labels == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        self.centroids = centroids
        return labels


def pick_simpoints(
    trace: Trace,
    interval_length: int,
    k: int = 4,
    seed: int = 0,
) -> "tuple[list[SimPoint], IntervalFeatures]":
    """Cluster the trace's intervals and pick one representative each.

    The representative of a cluster is its member closest to the
    centroid; its weight is the cluster's share of all intervals —
    exactly SimPoint's selection rule.
    """
    features = interval_vectors(trace, interval_length)
    kmeans = KMeans(k=k, seed=seed)
    labels = kmeans.fit(features.vectors)
    assert kmeans.centroids is not None

    simpoints = []
    n = len(features.vectors)
    for cluster in range(kmeans.k):
        members = np.nonzero(labels == cluster)[0]
        if len(members) == 0:
            continue
        distances = ((features.vectors[members] - kmeans.centroids[cluster])
                     ** 2).sum(axis=1)
        representative = int(members[distances.argmin()])
        simpoints.append(SimPoint(
            interval=representative,
            weight=len(members) / n,
            cluster=cluster,
        ))
    simpoints.sort(key=lambda sp: sp.interval)
    return simpoints, features


def estimate_with_simpoints(
    trace: Trace,
    simpoints: "list[SimPoint]",
    features: IntervalFeatures,
    statistic,
) -> float:
    """Weighted estimate of ``statistic(sub_trace)`` over representative
    intervals — the SimPoint methodology's payoff.

    ``statistic`` maps a Trace slice to a float; the estimate is the
    cluster-weight-weighted sum.
    """
    if not simpoints:
        raise ValueError("need at least one simpoint")
    total = 0.0
    for sp in simpoints:
        start, stop = features.bounds[sp.interval]
        total += sp.weight * float(statistic(trace.slice(start, stop)))
    return total
