"""Trace persistence: binary (npz) and Ramulator-style text formats.

The paper's toolchain exchanges trace files between Pin/PinPlay, Moola,
and Ramulator.  This module gives the library the same capability:

* :func:`save_npz` / :func:`load_npz` — lossless binary round-trip of a
  :class:`~repro.trace.record.Trace` (and its logical times), suitable
  for caching generated workloads.
* :func:`save_text` / :func:`load_text` — a Ramulator-like text format,
  one request per line::

      <gap-instructions> <hex-address> R|W [core]

  matching the fields the paper lists for its trace files (intervening
  non-memory instructions, memory address, request type).
"""

from __future__ import annotations

import os

import numpy as np

from repro.trace.record import Trace


def save_npz(path: "str | os.PathLike", trace: Trace,
             times: "np.ndarray | None" = None) -> None:
    """Write a trace (and optional logical times) as compressed npz."""
    arrays = {
        "core": trace.core,
        "address": trace.address,
        "is_write": trace.is_write,
        "gap": trace.gap,
    }
    if times is not None:
        if len(times) != len(trace):
            raise ValueError("times must align with the trace")
        arrays["times"] = np.asarray(times, dtype=np.float64)
    np.savez_compressed(path, **arrays)


def load_npz(path: "str | os.PathLike") -> "tuple[Trace, np.ndarray | None]":
    """Read a trace written by :func:`save_npz`.

    Returns ``(trace, times)`` with ``times`` None when absent.
    """
    with np.load(path) as data:
        required = {"core", "address", "is_write", "gap"}
        missing = required - set(data.files)
        if missing:
            raise ValueError(f"not a trace file: missing {sorted(missing)}")
        trace = Trace(
            core=data["core"],
            address=data["address"],
            is_write=data["is_write"],
            gap=data["gap"],
        )
        times = data["times"] if "times" in data.files else None
    return trace, times


def save_text(path: "str | os.PathLike", trace: Trace) -> None:
    """Write a Ramulator-style text trace."""
    with open(path, "w") as fh:
        fh.write("# gap address type core\n")
        for record in trace:
            kind = "W" if record.is_write else "R"
            fh.write(
                f"{record.gap_instructions} 0x{record.address:x} {kind} "
                f"{record.core}\n"
            )


def load_text(path: "str | os.PathLike") -> Trace:
    """Read a text trace written by :func:`save_text`.

    Lines are ``<gap> <address> R|W [core]``; ``#`` comments and blank
    lines are skipped; the core column defaults to 0 (single-core
    Ramulator traces omit it).
    """
    cores: "list[int]" = []
    addresses: "list[int]" = []
    writes: "list[bool]" = []
    gaps: "list[int]" = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 3:
                raise ValueError(f"{path}:{lineno}: expected "
                                 f"'<gap> <address> R|W [core]', got {text!r}")
            gap, address, kind = parts[0], parts[1], parts[2].upper()
            if kind not in ("R", "W"):
                raise ValueError(f"{path}:{lineno}: bad request type {kind!r}")
            gaps.append(int(gap))
            addresses.append(int(address, 16) if address.lower().startswith("0x")
                             else int(address))
            writes.append(kind == "W")
            cores.append(int(parts[3]) if len(parts) > 3 else 0)
    return Trace(
        core=np.array(cores, dtype=np.uint16),
        address=np.array(addresses, dtype=np.uint64),
        is_write=np.array(writes, dtype=bool),
        gap=np.array(gaps, dtype=np.uint32),
    )
