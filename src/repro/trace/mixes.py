"""The paper's Table 2 mixed workloads.

Each mix assigns benchmarks to the 16 cores.  Table 2 gives per-mix
copy counts; where a column sums to fewer than 16 copies the paper does
not say how the remaining cores are filled, so we pad by repeating the
listed benchmarks round-robin (documented substitution — the padding
preserves the mix's high/medium/low-AVF character).
"""

from __future__ import annotations

#: Copy counts straight out of Table 2 of the paper.
MIX_TABLE: "dict[str, dict[str, int]]" = {
    "mix1": {
        "mcf": 3, "lbm": 2, "milc": 2, "omnetpp": 1, "astar": 2,
        "sphinx": 1, "soplex": 2, "libquantum": 2, "gcc": 1,
    },
    "mix2": {
        "mcf": 2, "lbm": 3, "soplex": 3, "deaIII": 3, "GemsFDTD": 2,
        "bzip": 1, "cactusADM": 2,
    },
    "mix3": {
        "omnetpp": 2, "astar": 1, "sphinx": 2, "deaIII": 1,
        "libquantum": 1, "leslie3d": 2, "gcc": 2, "GemsFDTD": 2,
        "bzip": 1, "cactusADM": 2,
    },
    "mix4": {
        "mcf": 1, "lbm": 1, "milc": 1, "soplex": 3, "deaIII": 1,
        "libquantum": 3, "leslie3d": 1, "gcc": 1, "GemsFDTD": 1,
        "bzip": 2, "cactusADM": 1,
    },
    "mix5": {
        "deaIII": 3, "leslie3d": 3, "GemsFDTD": 1, "bzip": 3,
        "bwaves": 1, "cactusADM": 5,
    },
}


def _expand(table: "dict[str, int]", num_cores: int = 16) -> "tuple[str, ...]":
    """Expand copy counts to a per-core benchmark tuple of length 16."""
    cores: "list[str]" = []
    for bench, count in table.items():
        cores.extend([bench] * count)
    if len(cores) > num_cores:
        raise ValueError(f"mix defines {len(cores)} copies for {num_cores} cores")
    # Pad under-full mixes round-robin over the listed benchmarks.
    names = list(table)
    i = 0
    while len(cores) < num_cores:
        cores.append(names[i % len(names)])
        i += 1
    return tuple(cores)


#: Per-core benchmark assignment for every mix.
MIXES: "dict[str, tuple[str, ...]]" = {
    name: _expand(table) for name, table in MIX_TABLE.items()
}

MIX_NAMES = tuple(MIXES)
