"""Extension sweep: die-stacked raw-FIT multiplier vs SER blow-up.

The reliability gap the paper says "has continued to widen": the SER
penalty of performance-focused placement scales linearly with the raw
FIT of the fast memory; the Wr^2 heuristic flattens the slope.
"""

from repro.harness.sweeps import fit_multiplier_sweep


def test_sweep_fit_multiplier(run_once):
    result = run_once(fit_multiplier_sweep, workload="mix1",
                      multipliers=(1.0, 2.0, 4.0, 7.0, 12.0))
    result.print()
    perf = [row[2] for row in result.rows]
    wr2 = [row[3] for row in result.rows]
    assert perf == sorted(perf)
    assert all(w < p for w, p in zip(wr2, perf))
