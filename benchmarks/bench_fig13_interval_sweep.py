"""Figure 13: migration interval sweep (paper: 100 ms optimum).

The reproduced shape is the interior optimum: too-frequent migration
pays copy bandwidth, too-rare migration reacts slowly to hot-set churn.
"""

from repro.harness.experiments import fig13_interval_sweep


def test_fig13_interval_sweep(cache, run_once):
    result = run_once(
        fig13_interval_sweep, intervals=(2, 4, 8, 16, 32, 64), cache=cache
    )
    result.print()
    ipcs = {int(row[0]): row[1] for row in result.rows}
    best = int(result.summary["best_intervals"])
    # The optimum is interior: neither the rarest nor the most
    # frequent migration cadence wins.
    assert best not in (2, 64)
    assert ipcs[best] >= ipcs[2]
    assert ipcs[best] >= ipcs[64]
