"""Throughput benchmarks of the simulation engines themselves.

pytest-benchmark's timing applies directly here: requests/second of
the fast busy-until engine, the event-driven engine, the AVF profiler,
and the trace generator — the numbers that determine how large a
workload the library handles interactively.
"""

import numpy as np

from repro.config import PAGE_SIZE, scaled_config
from repro.avf.page import profile_trace
from repro.dram.hma import HeterogeneousMemory
from repro.sim.engine import replay
from repro.sim.event_engine import replay_event_driven
from repro.trace.record import Trace
from repro.trace.workloads import Workload

N = 20_000


def sample_trace(seed=0):
    rng = np.random.default_rng(seed)
    return Trace(
        core=rng.integers(0, 16, N).astype(np.uint16),
        address=(rng.integers(0, 512, N) * PAGE_SIZE
                 + rng.integers(0, 64, N) * 64).astype(np.uint64),
        is_write=rng.random(N) < 0.3,
        gap=np.full(N, 40, dtype=np.uint32),
    ), np.sort(rng.random(N))


def test_perf_fast_engine(benchmark):
    config = scaled_config(1 / 1024)
    trace, times = sample_trace()

    def run():
        hma = HeterogeneousMemory(config)
        hma.install_placement(range(256), range(512))
        return replay(config, hma, trace, times)

    result = benchmark(run)
    assert result.requests == N


def test_perf_event_engine(benchmark):
    config = scaled_config(1 / 1024)
    trace, _times = sample_trace()

    def run():
        hma = HeterogeneousMemory(config)
        hma.install_placement(range(256), range(512))
        return replay_event_driven(config, hma, trace)

    result = benchmark(run)
    assert result.requests == N


def test_perf_avf_profiler(benchmark):
    trace, times = sample_trace()
    stats = benchmark(profile_trace, trace, times)
    assert len(stats) > 0


def test_perf_trace_generation(benchmark):
    def run():
        return Workload.spec("mcf").generate(
            scale=1 / 1024, accesses_per_core=2_000, seed=1
        )

    wt = benchmark(run)
    assert len(wt.trace) > 0
