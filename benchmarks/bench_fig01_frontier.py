"""Figure 1: reliability vs performance frontier.

Sweeping the fraction of hot pages placed in the fast memory traces
the frontier the paper's intro plots: performance rises monotonically
while reliability collapses by orders of magnitude.
"""

from repro.harness.experiments import SWEEP_WORKLOADS, fig01_frontier


def test_fig01_frontier(cache, run_once):
    result = run_once(fig01_frontier, workloads=SWEEP_WORKLOADS, cache=cache)
    result.print()
    ipcs = [row[1] for row in result.rows]
    sers = [row[2] for row in result.rows]
    # Performance grows with the hot fraction...
    assert ipcs[-1] > ipcs[0] * 1.1
    # ...while the soft error rate explodes.
    assert sers[-1] > 20 * max(sers[0], 1.0)
