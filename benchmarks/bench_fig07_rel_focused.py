"""Figure 7: reliability-focused placement (paper: SER/5 at -17% IPC)."""

from repro.harness.experiments import fig07_rel_focused


def test_fig07_rel_focused(cache, run_once):
    result = run_once(fig07_rel_focused, cache=cache)
    result.print()
    # Large SER cut, significant IPC loss.
    assert result.summary["mean_ser_ratio"] < 0.4
    assert 0.6 < result.summary["mean_ipc_ratio"] < 0.95
