"""Extension: lifetime study — permanent-fault attrition meets
transient-fault placement.

The paper's related work [16] (same authors) handles permanent-fault
aging; the HPCA paper handles transient SER.  This extension combines
them: as the die-stacked memory ages and pages retire, the usable HBM
shrinks, which degrades the IPC of every placement while the SER
picture stays reliability-ordered.
"""

from dataclasses import replace

import pytest

from repro.core.placement import PerformanceFocusedPlacement, Wr2RatioPlacement
from repro.faults.aging import AgingModel
from repro.harness.reporting import print_table
from repro.sim.system import evaluate_static


def run(cache):
    prep = cache.get("milc")
    model = AgingModel(prep.config.fast_memory)
    rows = []
    ipcs = []
    for years in (0.0, 2.0, 5.0, 10.0):
        frac = model.usable_fraction(years)
        usable_pages = max(1, int(prep.capacity_pages * frac))
        aged_fast = replace(prep.config.fast_memory,
                            capacity_bytes=usable_pages * 4096)
        aged_config = replace(prep.config, fast_memory=aged_fast)
        from dataclasses import replace as dc_replace

        aged_prep = dc_replace(prep, config=aged_config)
        perf = evaluate_static(aged_prep, PerformanceFocusedPlacement())
        wr2 = evaluate_static(aged_prep, Wr2RatioPlacement())
        ipcs.append(perf.ipc_vs_ddr)
        rows.append([f"{years:.0f}y", f"{frac * 100:.1f}%",
                     f"{perf.ipc_vs_ddr:.2f}x", f"{perf.ser_vs_ddr:.0f}x",
                     f"{wr2.ipc_vs_ddr:.2f}x", f"{wr2.ser_vs_ddr:.0f}x"])
    return rows, ipcs


def test_ext_aging(cache, run_once):
    rows, ipcs = run_once(run, cache)
    print_table(
        ["age", "usable HBM", "perf IPC", "perf SER", "wr2 IPC", "wr2 SER"],
        rows, title="Extension: HBM aging (permanent-fault page retirement)",
    )
    # Usable capacity only shrinks, so the HMA speedup can only erode —
    # at this (scaled) FIT rate the fast memory is fully retired by
    # year 10 and the system degrades gracefully to DDR-only behaviour.
    assert ipcs[0] > 1.1
    assert ipcs == sorted(ipcs, reverse=True)
    assert ipcs[-1] == pytest.approx(1.0, abs=0.05)
