"""Table 3: the paper's summary of every scheme, side by side with
the paper's own numbers."""

from repro.harness.experiments import table3_summary


def test_table3_summary(cache, run_once):
    result = run_once(table3_summary, cache=cache)
    result.print()
    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {
        "Reliability-focused", "Balanced", "Wr ratio", "Wr^2 ratio",
        "Reliability-aware (FC)", "Reliability-aware (CC)",
        "Program annotations",
    }

    def ser_gain(label):
        return float(rows[label][2].rstrip("x"))

    def ipc_loss(label):
        return float(rows[label][1].rstrip("%"))

    # Ordering of the static schemes, as in the paper's Table 3.
    assert ser_gain("Reliability-focused") > ser_gain("Balanced")
    assert ser_gain("Balanced") >= ser_gain("Wr^2 ratio") * 0.85
    assert ipc_loss("Reliability-focused") > ipc_loss("Wr^2 ratio")
    # Every scheme actually improves reliability.
    for label in rows:
        assert ser_gain(label) > 1.0
