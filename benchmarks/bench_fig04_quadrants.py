"""Figure 4: hotness-risk quadrants (hot & low-risk = 9-39%)."""

from repro.harness.experiments import fig04_quadrants


def test_fig04_quadrants(cache, run_once):
    result = run_once(fig04_quadrants, cache=cache)
    result.print()
    # Meaningful hot & low-risk share across the suite (paper: 9-39%).
    assert 2.0 < result.summary["hot_low_min_pct"] < 20.0
    assert 15.0 < result.summary["hot_low_max_pct"] < 50.0
