"""Figure 6: hotness vs AVF of the hottest pages (paper: rho = 0.08)."""

from repro.harness.experiments import fig06_correlation


def test_fig06_correlation(cache, run_once):
    result = run_once(fig06_correlation, workload="mix1", cache=cache)
    result.print()
    # Weak correlation: neither strongly positive nor negative.
    assert abs(result.summary["rho_hotness_avf"]) < 0.5
