"""Ablation: the Wr/Rd risk proxy vs measured-AVF oracle risk.

Section 5.3 proposes the write ratio as a cheap stand-in for AVF.  This
ablation runs the FC migration mechanism twice — once with the Wr/Rd
proxy, once with the (non-realisable) per-interval measured AVF — and
shows how much of the oracle's reliability benefit the proxy captures.
"""

from repro.core.migration import (
    OracleRiskMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.core.placement import BalancedPlacement
from repro.harness.reporting import gmean, print_table
from repro.sim.system import evaluate_migration

WORKLOADS = ("mcf", "milc", "mix1")


def run(cache):
    rows = []
    proxy_red, oracle_red = [], []
    for wl in WORKLOADS:
        prep = cache.get(wl)
        pm = evaluate_migration(prep, PerformanceFocusedMigration(),
                                num_intervals=16)
        fc = evaluate_migration(prep, ReliabilityAwareFCMigration(),
                                num_intervals=16,
                                initial_policy=BalancedPlacement())
        oracle = evaluate_migration(prep, OracleRiskMigration(),
                                    num_intervals=16,
                                    initial_policy=BalancedPlacement())
        proxy_red.append(pm.ser / fc.ser)
        oracle_red.append(pm.ser / oracle.ser)
        rows.append([wl, f"{pm.ser / fc.ser:.2f}x",
                     f"{pm.ser / oracle.ser:.2f}x",
                     f"{fc.ipc / pm.ipc:.2f}",
                     f"{oracle.ipc / pm.ipc:.2f}"])
    return rows, gmean(proxy_red), gmean(oracle_red)


def test_ablation_oracle_risk(cache, run_once):
    rows, proxy, oracle = run_once(run, cache)
    print_table(
        ["workload", "proxy SER cut", "oracle SER cut",
         "proxy IPC vs pm", "oracle IPC vs pm"],
        rows, title="Ablation: Wr/Rd proxy vs measured-AVF oracle risk",
    )
    print(f"proxy captures {proxy / oracle * 100:.0f}% of the oracle's "
          "SER reduction")
    # Both reduce SER; the proxy captures the bulk of the oracle's win
    # (the paper's justification for the cheap heuristic).
    assert proxy > 1.2
    assert oracle > 1.2
    assert proxy > 0.5 * oracle
