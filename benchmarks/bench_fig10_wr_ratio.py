"""Figure 10: Wr-ratio placement (paper: SER/1.8 at -8.1% IPC)."""

from repro.harness.experiments import fig10_wr_ratio


def test_fig10_wr_ratio(cache, run_once):
    result = run_once(fig10_wr_ratio, cache=cache)
    result.print()
    assert result.summary["mean_ser_ratio"] < 0.8
    assert result.summary["mean_ipc_ratio"] > 0.8
