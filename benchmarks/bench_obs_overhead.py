"""Telemetry overhead guard: dormant instrumentation must stay free.

Times the default-scale migration replay twice:

1. *bare* — the observability hook points in the engine are stubbed
   out, approximating the uninstrumented engine;
2. *dormant* — the shipped code path with telemetry off (null-backend
   registry, no sink, no recorder).

Asserts the dormant path is within ``OVERHEAD_CEILING`` of bare
(default 2%), and that a telemetry-*on* replay still produces
bit-identical simulation results.  Writes ``BENCH_obs.json``
(override with ``REPRO_BENCH_OBS_JSON``).
"""

import json
import os
import tempfile
import time

from repro.core.migration import ReliabilityAwareFCMigration
from repro.dram.hma import HeterogeneousMemory
from repro.obs import run_context
from repro.obs.tracing import NULL_SPAN
from repro.sim import engine
from repro.sim.system import prepare_workload

ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
REPEATS = 5
OVERHEAD_CEILING = float(os.environ.get("REPRO_BENCH_OBS_CEILING", "0.02"))


def _best_of(func, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _make_run(prep):
    wt = prep.workload_trace

    def run():
        hma = HeterogeneousMemory(prep.config)
        hma.install_placement([], prep.stats.pages)
        return engine.replay(
            prep.config, hma, wt.trace, times=wt.times,
            mechanism=ReliabilityAwareFCMigration(), num_intervals=16,
            core_windows=wt.core_mlp)

    return run


def test_dormant_telemetry_overhead():
    prep = prepare_workload("mcf", accesses_per_core=ACCESSES, seed=0)
    run = _make_run(prep)

    # Bare: stub the engine's hook points, approximating pre-telemetry
    # code.  Restored before the dormant measurement.
    saved = (engine.replay_sink, engine.span)
    engine.replay_sink = lambda hma: None
    engine.span = lambda name, **attrs: NULL_SPAN
    try:
        bare_result, bare_s = _best_of(run)
    finally:
        engine.replay_sink, engine.span = saved

    dormant_result, dormant_s = _best_of(run)
    assert dormant_result.snapshots is None  # telemetry really was off

    with tempfile.TemporaryDirectory() as obs_dir:
        with run_context("bench-obs", obs_dir=obs_dir, enabled=True):
            traced_result, traced_s = _best_of(run)
    assert traced_result.snapshots is not None
    assert len(traced_result.snapshots) == 16

    # Telemetry must never perturb the simulation itself.
    for probe in (dormant_result, traced_result):
        assert probe.total_seconds == bare_result.total_seconds
        assert probe.mean_read_latency == bare_result.mean_read_latency
        assert probe.per_core_ipc == bare_result.per_core_ipc

    overhead = dormant_s / bare_s - 1.0
    report = {
        "workload": "mcf",
        "accesses_per_core": ACCESSES,
        "requests": dormant_result.requests,
        "bare_seconds": bare_s,
        "dormant_seconds": dormant_s,
        "telemetry_on_seconds": traced_s,
        "dormant_overhead": overhead,
        "telemetry_on_overhead": traced_s / bare_s - 1.0,
        "ceiling": OVERHEAD_CEILING,
    }
    out = os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"\ntelemetry overhead ({dormant_result.requests} requests): "
          f"bare {bare_s:.3f}s, dormant {dormant_s:.3f}s "
          f"({overhead * 100:+.2f}%), on {traced_s:.3f}s "
          f"({report['telemetry_on_overhead'] * 100:+.2f}%) -> {out}")
    assert overhead < OVERHEAD_CEILING, (
        f"dormant telemetry costs {overhead * 100:.2f}% "
        f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)")
