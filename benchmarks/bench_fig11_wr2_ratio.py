"""Figure 11: Wr^2-ratio placement (paper: SER/1.6 at only -1% IPC)."""

from repro.harness.experiments import fig10_wr_ratio, fig11_wr2_ratio


def test_fig11_wr2_ratio(cache, run_once):
    result = run_once(fig11_wr2_ratio, cache=cache)
    result.print()
    assert result.summary["mean_ser_ratio"] < 0.8
    assert result.summary["mean_ipc_ratio"] > 0.85
    # Wr^2 trades a little SER for IPC relative to plain Wr ratio.
    wr = fig10_wr_ratio(cache=cache)
    assert result.summary["mean_ipc_ratio"] >= wr.summary["mean_ipc_ratio"] - 0.02
