"""Ablation: swapping the ECC schemes across the HMA.

What if the fast memory had ChipKill and the slow memory SEC-DED?  The
per-page uncorrected-FIT gap — the source of the paper's 287x SER blow-
up — inverts, showing that the *pairing* of weak ECC with the
performance-critical memory is what creates the reliability problem.
"""

from dataclasses import replace

from repro.config import ddr3_config, hbm_config
from repro.faults.faultsim import uncorrected_fit_per_page
from repro.harness.reporting import print_table


def run_sweep():
    combos = [
        ("paper (HBM secded / DDR chipkill)", "secded", "chipkill"),
        ("swapped (HBM chipkill / DDR secded)", "chipkill", "secded"),
        ("both secded", "secded", "secded"),
        ("both chipkill", "chipkill", "chipkill"),
    ]
    rows = []
    for label, fast_ecc, slow_ecc in combos:
        fast = replace(hbm_config(), ecc=fast_ecc)
        slow = replace(ddr3_config(), ecc=slow_ecc)
        fit_fast = uncorrected_fit_per_page(fast, analytic=True)
        fit_slow = uncorrected_fit_per_page(slow, analytic=True)
        rows.append([label, fit_fast, fit_slow, fit_fast / fit_slow])
    return rows


def test_ablation_ecc(run_once):
    rows = run_once(run_sweep)
    print_table(
        ["configuration", "fast FIT/page", "slow FIT/page", "ratio"],
        rows, title="Ablation: ECC pairing",
    )
    ratios = {row[0]: row[3] for row in rows}
    # The paper's pairing creates a huge reliability gap...
    assert ratios["paper (HBM secded / DDR chipkill)"] > 100
    # ...which shrinks by orders of magnitude when ECC is swapped.
    assert (ratios["swapped (HBM chipkill / DDR secded)"]
            < ratios["paper (HBM secded / DDR chipkill)"] / 10)
    # With equal ECC the residual gap is only the raw-FIT multiplier
    # times the per-rank density difference — far below the ECC gap.
    assert ratios["both chipkill"] < 100
    assert ratios["both secded"] < 100
