"""Figure 14: reliability-aware FC migration (paper: SER/1.8 at -6%)."""

from repro.harness.experiments import fig14_fc_migration


def test_fig14_fc_migration(cache, run_once):
    result = run_once(fig14_fc_migration, cache=cache)
    result.print()
    assert result.summary["mean_ser_ratio"] < 0.7
    assert result.summary["mean_ipc_ratio"] > 0.8
