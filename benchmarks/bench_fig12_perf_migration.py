"""Figure 12: performance-focused migration (paper: 1.52x IPC, 268x SER
vs DDR-only; within ~6% of the static oracle)."""

from repro.harness.experiments import fig12_perf_migration


def test_fig12_perf_migration(cache, run_once):
    result = run_once(fig12_perf_migration, cache=cache)
    result.print()
    assert result.summary["mean_ipc_vs_ddr"] > 1.15
    assert result.summary["mean_ser_vs_ddr"] > 50
    assert result.summary["ipc_vs_static_oracle"] > 0.85
