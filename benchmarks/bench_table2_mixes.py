"""Table 2: mixed workload composition."""

from repro.harness.experiments import table2_mixes
from repro.trace.mixes import MIX_TABLE


def test_table2_mixes(run_once):
    result = run_once(table2_mixes)
    result.print()
    assert sum(MIX_TABLE["mix1"].values()) == 16
    assert len(result.rows) == 15
