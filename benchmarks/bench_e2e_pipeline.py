"""End-to-end pipeline throughput: sparse reference vs fused kernels.

Drives the full pipeline — trace synthesis, cache filtering (the Moola
role), worker handoff of the prepared arrays, and the routed/serviced
replay with cc-migration planning — twice:

* **sparse** — per-access reference implementations everywhere: the
  ``sparse`` cache filter, pickle transport to each worker, the
  ``scalar`` replay kernel, and the ``sparse`` dict-based policy layer.
* **fused**  — the batched path this change builds: the ``array``
  cache-filter kernel, one shared-memory segment resolved per worker,
  the ``batched`` replay kernel, and the ``array`` policy layer with
  the fused MEA+counter C kernel.

Stage outputs are asserted bit-identical between the modes (residual
trace, replay digest, handoff round-trip), wall time is recorded per
stage, and the totals land in ``BENCH_e2e.json`` (override the
location with ``REPRO_BENCH_E2E_JSON``) where the ``compare
--bench-root`` floor check picks them up.
"""

import json
import os
import pickle
import time

import numpy as np

from repro.cache.hierarchy import CacheHierarchy, filter_trace
from repro.config import PAGE_SIZE, knob_overrides, scaled_config
from repro.core.migration import CrossCountersMigration
from repro.dram.hma import HeterogeneousMemory
from repro.harness.shm import (
    SharedPayload,
    release_payload,
    resolve_payload,
    share_payload,
    shm_available,
)
from repro.sim.engine import replay
from repro.trace.workloads import Workload

#: Default scale, default trace volume — the acceptance configuration.
ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
SCALE = 1 / 1024
INTERVALS = 16
REPEATS = 3
#: Simulated fan-out width for the handoff stage: how many workers the
#: prepared arrays must reach (each is one pickle in sparse mode, one
#: handle resolution in fused mode).
N_WORKERS = 4

#: Conservative CI floor for the end-to-end ratio (the acceptance
#: criterion is 5x at default volume; smoke volumes leave less fixed
#: cost to amortise, so below the acceptance volume the floor halves).
_SMOKE = 0.5 if ACCESSES < 20_000 else 1.0
E2E_FLOOR = 5.0 * _SMOKE


def _digest(result) -> tuple:
    return (
        int(result.instructions), int(result.requests),
        float(result.total_seconds), float(result.ipc),
        (result.migrations.migrations_to_fast,
         result.migrations.migrations_to_slow),
        tuple(tuple(sorted(int(p) for p in resident))
              for resident in result.fast_residency),
    )


def _trace_digest(trace) -> tuple:
    return (trace.core.tobytes(), trace.lines.tobytes(),
            trace.is_write.tobytes(), trace.gap.tobytes())


def _pipeline(mode: str):
    """One full pass; returns ``(digests, per-stage seconds)``."""
    fused = mode == "fused"
    config = scaled_config(SCALE)
    stages = {}
    t0 = time.perf_counter()

    # Stage 1 — trace synthesis (shared code; part of the e2e clock).
    wt = Workload.spec("mcf").generate(
        scale=SCALE, accesses_per_core=ACCESSES, seed=0)
    stages["synthesis"] = time.perf_counter() - t0

    # Stage 2 — cache filtering (the Moola role).
    t0 = time.perf_counter()
    hierarchy = CacheHierarchy(config.caches, num_cores=config.num_cores)
    filtered = filter_trace(wt.trace, hierarchy, flush_at_end=True,
                            cache_kernel="array" if fused else "sparse")
    stages["cache_filter"] = time.perf_counter() - t0

    # Stage 3 — handoff of the prepared arrays to N_WORKERS workers.
    payload = {"core": wt.trace.core, "address": wt.trace.address,
               "is_write": wt.trace.is_write, "gap": wt.trace.gap,
               "times": wt.times}
    t0 = time.perf_counter()
    if fused and shm_available():
        with knob_overrides(shm_handoff=True):
            item = share_payload(payload)
        assert isinstance(item, SharedPayload)
        wire = pickle.dumps(item)
        for _ in range(N_WORKERS):
            received = resolve_payload(pickle.loads(wire))
        release_payload(item)
    else:
        for _ in range(N_WORKERS):
            received = pickle.loads(pickle.dumps(payload))
    stages["handoff"] = time.perf_counter() - t0
    for key, sent in payload.items():
        assert np.array_equal(received[key], sent), key

    # Stage 4 — routed/serviced replay with cc-migration planning.
    t0 = time.perf_counter()
    pages = np.unique(wt.trace.address // PAGE_SIZE).astype(int).tolist()
    fast_cap = config.fast_memory.capacity_bytes // PAGE_SIZE
    hma = HeterogeneousMemory(config)
    hma.install_placement(pages[:fast_cap], pages)
    mech = CrossCountersMigration(
        policy_kernel="array" if fused else "sparse")
    result = replay(config, hma, wt.trace, wt.times, mechanism=mech,
                    num_intervals=INTERVALS,
                    kernel="batched" if fused else "scalar")
    stages["replay_policy"] = time.perf_counter() - t0

    digests = {"filtered": _trace_digest(filtered),
               "replay": _digest(result)}
    return digests, stages


def _best_run(mode: str):
    best = None
    digests = None
    for _ in range(REPEATS):
        digests, stages = _pipeline(mode)
        total = sum(stages.values())
        if best is None or total < best[0]:
            best = (total, stages)
    return digests, best[1], best[0]


def test_e2e_pipeline_speedup():
    sparse_digests, sparse_stages, sparse_total = _best_run("sparse")
    fused_digests, fused_stages, fused_total = _best_run("fused")

    # Parity gates: every stage's output must be bit-identical.
    assert fused_digests["filtered"] == sparse_digests["filtered"]
    assert fused_digests["replay"] == sparse_digests["replay"]

    requests = ACCESSES * scaled_config(SCALE).num_cores
    report = {
        "workload": "mcf", "accesses_per_core": ACCESSES,
        "requests": requests, "intervals": INTERVALS,
        "workers": N_WORKERS, "shm": shm_available(),
        "sparse_seconds": sparse_total,
        "fused_seconds": fused_total,
        "speedup_fused_vs_sparse": sparse_total / fused_total,
        "requests_per_second_fused": requests / fused_total,
        "stages": {
            name: {
                "sparse_seconds": sparse_stages[name],
                "fused_seconds": fused_stages[name],
                "speedup": sparse_stages[name] / fused_stages[name],
            }
            for name in sparse_stages
        },
    }

    out = os.environ.get("REPRO_BENCH_E2E_JSON", "BENCH_e2e.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)

    per_stage = "; ".join(
        f"{name} {row['speedup']:.1f}x" for name, row in
        report["stages"].items())
    print(f"\ne2e pipeline ({requests} requests): "
          f"{report['speedup_fused_vs_sparse']:.1f}x fused vs sparse "
          f"({per_stage}) -> {out}")

    got = report["speedup_fused_vs_sparse"]
    assert got >= E2E_FLOOR, (
        f"fused pipeline only {got:.2f}x the sparse reference "
        f"(floor {E2E_FLOOR}x)")
