"""Ablation: MEA map size for the Cross-Counters performance unit.

The paper uses a 32-entry MEA map (from MemPod).  Larger maps track
more of the hot set per interval; this sweep shows the diminishing
returns that justify the small map.
"""

from repro.core.migration import CrossCountersMigration
from repro.core.placement import BalancedPlacement
from repro.harness.experiments import DEFAULT_INTERVALS
from repro.harness.reporting import gmean, print_table
from repro.sim.system import evaluate_migration

WORKLOADS = ("mcf", "libquantum", "mix1")


def run_sweep(cache):
    rows = []
    for capacity in (4, 16, 32, 64):
        ipcs, sers, migs = [], [], []
        for wl in WORKLOADS:
            prep = cache.get(wl)
            res = evaluate_migration(
                prep, CrossCountersMigration(mea_capacity=capacity),
                num_intervals=DEFAULT_INTERVALS,
                initial_policy=BalancedPlacement(),
            )
            ipcs.append(res.ipc_vs_ddr)
            sers.append(res.ser_vs_ddr)
            migs.append(res.migrations)
        rows.append([capacity, gmean(ipcs), gmean(sers),
                     int(sum(migs) / len(migs))])
    return rows


def test_ablation_mea_capacity(cache, run_once):
    rows = run_once(run_sweep, cache)
    print_table(["MEA entries", "IPC vs DDR", "SER vs DDR", "migrations"],
                rows, title="Ablation: MEA map size")
    ipc_by_cap = {row[0]: row[1] for row in rows}
    # A tiny map underperforms; 32 entries captures most of the win.
    assert ipc_by_cap[32] >= ipc_by_cap[4] * 0.98
    # Going to 64 entries buys little over 32 (diminishing returns).
    assert ipc_by_cap[64] <= ipc_by_cap[32] * 1.1
