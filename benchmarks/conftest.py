"""Shared fixtures for the per-figure benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index), prints the reproduced rows, and
asserts the qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs (for deeper, slower runs):

* ``REPRO_BENCH_ACCESSES`` — memory accesses per core (default 8000)
* ``REPRO_BENCH_SCALE``    — capacity scale (default 1/1024)
"""

import os

import pytest

from repro.harness.experiments import WorkloadCache

BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "8000"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", str(1 / 1024)))


@pytest.fixture(scope="session")
def cache():
    """Prepared workloads shared by every figure benchmark."""
    return WorkloadCache(accesses_per_core=BENCH_ACCESSES,
                         scale=BENCH_SCALE, seed=0)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner
