"""Shared fixtures for the per-figure benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index), prints the reproduced rows, and
asserts the qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only

Environment knobs (for deeper, slower runs):

* ``REPRO_BENCH_ACCESSES`` — memory accesses per core (default 8000)
* ``REPRO_BENCH_SCALE``    — capacity scale (default 1/1024)
* ``REPRO_BENCH_JOBS``     — worker processes for workload preparation
  and seed replication (default 1 = serial; 0 = one per CPU)
* ``REPRO_BENCH_CACHE_DIR`` — persist prepared workloads on disk so
  repeated benchmark runs skip trace synthesis
"""

import os

import pytest

from repro.harness.experiments import WorkloadCache

BENCH_ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "8000"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", str(1 / 1024)))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1")) or None
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None


@pytest.fixture(scope="session")
def cache():
    """Prepared workloads shared by every figure benchmark."""
    cache = WorkloadCache(accesses_per_core=BENCH_ACCESSES,
                          scale=BENCH_SCALE, seed=0,
                          cache_dir=BENCH_CACHE_DIR, jobs=BENCH_JOBS)
    if BENCH_JOBS != 1:
        cache.prefetch()
    return cache


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  iterations=1, rounds=1)

    return runner
