"""Figure 16: program-annotation placement (paper: SER/1.3 at -1.1%)."""

from repro.harness.experiments import fig16_annotations


def test_fig16_annotations(cache, run_once):
    result = run_once(fig16_annotations, cache=cache)
    result.print()
    assert result.summary["mean_ser_ratio"] < 0.9
    assert result.summary["mean_ipc_ratio"] > 0.8
