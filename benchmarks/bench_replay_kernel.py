"""Replay-kernel throughput: scalar oracle vs batched kernels.

Times the same default-scale workload replay through every available
kernel (``scalar``, ``batched-python``, ``batched-native``), asserts
the batched path is bit-identical AND at least 5x the scalar
requests/second, and writes the numbers to ``BENCH_replay.json``
(override the location with ``REPRO_BENCH_REPLAY_JSON``).
"""

import json
import os
import time

from repro.core.placement import PerformanceFocusedPlacement
from repro.dram.hma import HeterogeneousMemory
from repro.sim import _ckernel
from repro.sim.engine import replay
from repro.sim.system import prepare_workload

#: Default scale, default trace volume — the acceptance configuration.
ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
REPEATS = 3
SPEEDUP_FLOOR = 5.0


def _best_of(func, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _make_run(prep, kernel):
    wt = prep.workload_trace
    fast_pages = PerformanceFocusedPlacement().select_fast_pages(
        prep.stats, prep.capacity_pages)

    def run():
        hma = HeterogeneousMemory(prep.config)
        hma.install_placement(fast_pages, prep.stats.pages)
        return replay(prep.config, hma, wt.trace, times=wt.times,
                      core_windows=wt.core_mlp, kernel=kernel)

    return run


def test_replay_kernel_speedup():
    prep = prepare_workload("mcf", accesses_per_core=ACCESSES, seed=0)
    kernels = ["scalar", "batched-python"]
    if _ckernel.available():
        kernels.append("batched-native")

    report = {"workload": "mcf", "accesses_per_core": ACCESSES,
              "requests": 0, "kernels": {}}
    results = {}
    for kernel in kernels:
        result, seconds = _best_of(_make_run(prep, kernel))
        results[kernel] = result
        report["requests"] = result.requests
        report["kernels"][kernel] = {
            "seconds": seconds,
            "requests_per_second": result.requests / seconds,
        }

    scalar = results["scalar"]
    for kernel in kernels[1:]:
        batched = results[kernel]
        assert batched.total_seconds == scalar.total_seconds, kernel
        assert batched.mean_read_latency == scalar.mean_read_latency, kernel
        assert batched.per_core_ipc == scalar.per_core_ipc, kernel

    best = max(kernels[1:],
               key=lambda k: report["kernels"][k]["requests_per_second"])
    speedup = (report["kernels"][best]["requests_per_second"]
               / report["kernels"]["scalar"]["requests_per_second"])
    report["best_batched"] = best
    report["speedup_vs_scalar"] = speedup

    out = os.environ.get("REPRO_BENCH_REPLAY_JSON", "BENCH_replay.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)

    rps = {k: f"{v['requests_per_second']:,.0f} req/s"
           for k, v in report["kernels"].items()}
    print(f"\nreplay kernel throughput ({report['requests']} requests): "
          f"{rps}; best batched = {best} at {speedup:.1f}x scalar "
          f"-> {out}")
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched replay only {speedup:.2f}x scalar "
        f"(floor {SPEEDUP_FLOOR}x)")
