"""Table 1: system configuration (validated and printed)."""

from repro.config import default_config
from repro.harness.experiments import table1_config


def test_table1_config(run_once):
    result = run_once(table1_config)
    result.print()
    cfg = default_config()
    assert cfg.num_cores == 16
    assert cfg.fast_memory.capacity_bytes == 1 << 30
    assert cfg.slow_memory.capacity_bytes == 16 << 30
    assert cfg.fast_memory.ecc == "secded"
    assert cfg.slow_memory.ecc == "chipkill"
    # HBM: 8 ch x 128 bit @ 1 GT/s = 128 GiB/s-class bandwidth;
    # DDR3: 2 ch x 64 bit @ 1.6 GT/s ~ 25.6 GB/s.
    assert (cfg.fast_memory.peak_bandwidth_bytes_per_sec
            > 4 * cfg.slow_memory.peak_bandwidth_bytes_per_sec)
