"""Ablation: global migration vs MemPod's pod-clustered migration.

MemPod (the source of the paper's MEA tracking) restricts migrations to
independent pods, trading a little flexibility for much smaller
bookkeeping.  This ablation compares the global perf-focused mechanism,
pod-clustered MemPod, and the paper's Cross Counters.
"""

from repro.core.mempod import MemPodMigration
from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
)
from repro.core.placement import BalancedPlacement
from repro.harness.reporting import gmean, print_table
from repro.sim.system import evaluate_migration

WORKLOADS = ("mcf", "libquantum", "mix1")


def run(cache):
    rows = []
    ipcs = {}
    for label, mech_factory, initial in (
        ("global perf (HMA)", PerformanceFocusedMigration, None),
        ("MemPod (4 pods)", lambda: MemPodMigration(num_pods=4), None),
        ("Cross Counters", CrossCountersMigration, BalancedPlacement()),
    ):
        vals, migs = [], []
        for wl in WORKLOADS:
            prep = cache.get(wl)
            res = evaluate_migration(prep, mech_factory(), num_intervals=16,
                                     initial_policy=initial)
            vals.append(res.ipc_vs_ddr)
            migs.append(res.migrations)
        ipcs[label] = gmean(vals)
        hw = mech_factory().hardware_cost_bytes((17 << 30) // 4096,
                                                (1 << 30) // 4096)
        rows.append([label, ipcs[label], int(sum(migs) / len(migs)),
                     f"{hw / 1024:.0f} KB"])
    return rows, ipcs


def test_ablation_mempod(cache, run_once):
    rows, ipcs = run_once(run, cache)
    print_table(["mechanism", "IPC vs DDR (gmean)", "migrations",
                 "tracking HW (full scale)"], rows,
                title="Ablation: global vs pod-clustered migration")
    # MemPod stays within a reasonable band of the global mechanism at
    # a fraction of the tracking cost.
    assert ipcs["MemPod (4 pods)"] > 0.75 * ipcs["global perf (HMA)"]
