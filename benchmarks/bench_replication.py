"""Replication: the headline results are stable across generator seeds.

Re-draws the synthetic workloads with five different seeds and checks
that the Fig. 5 headline (perf-focused placement's IPC gain and SER
blow-up) holds for every draw with a modest coefficient of variation.
"""

import os

from repro.core.placement import PerformanceFocusedPlacement
from repro.harness.replication import replicate
from repro.harness.reporting import print_table
from repro.sim.system import evaluate_static


def ipc_gain(prep):
    return evaluate_static(prep, PerformanceFocusedPlacement()).ipc_vs_ddr


def ser_blowup(prep):
    return evaluate_static(prep, PerformanceFocusedPlacement()).ser_vs_ddr


#: Same knobs as conftest.py: 0 = one worker per CPU, 1 = serial.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1")) or None
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR") or None


def run():
    rows = []
    reps = {}
    for metric_name, metric in (("IPC gain", ipc_gain),
                                ("SER blow-up", ser_blowup)):
        rep = replicate("mix1", metric, metric_name=metric_name,
                        seeds=(0, 1, 2, 3, 4), accesses_per_core=8000,
                        jobs=BENCH_JOBS, cache_dir=BENCH_CACHE_DIR)
        reps[metric_name] = rep
        lo, hi = rep.confidence_interval()
        rows.append([metric_name, f"{rep.mean:.3g}", f"{rep.std:.3g}",
                     f"[{lo:.3g}, {hi:.3g}]", f"{rep.cv * 100:.1f}%"])
    return rows, reps


def test_replication(run_once):
    rows, reps = run_once(run)
    print_table(["metric", "mean", "std", "95% CI", "CV"], rows,
                title="Seed replication of the Fig. 5 headline (mix1)")
    ipc = reps["IPC gain"]
    ser = reps["SER blow-up"]
    assert all(v > 1.1 for v in ipc.values)     # every seed shows the gain
    assert all(v > 50 for v in ser.values)      # every seed shows the blow-up
    assert ipc.cv < 0.15                        # and the gain is stable
