"""Figure 5: performance-focused placement (paper: 1.6x IPC, 287x SER)."""

from repro.harness.experiments import fig05_perf_focused


def test_fig05_perf_focused(cache, run_once):
    result = run_once(fig05_perf_focused, cache=cache)
    result.print()
    assert result.summary["mean_ipc_ratio"] > 1.2
    assert result.summary["mean_ser_ratio"] > 50
