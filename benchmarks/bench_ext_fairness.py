"""Extension: which cores pay for reliability-aware placement?

The paper reports aggregate IPC; per-core metrics show the
distributional story.  On a mixed workload, reliability-focused
placement taxes the cores whose hot data is risky (mcf/milc copies)
while leaving the others untouched — weighted speedup drops but the
fairness index stays high, because the placement removes a shared-
bandwidth benefit rather than starving any single core.
"""

from repro.core.placement import (
    PerformanceFocusedPlacement,
    ReliabilityFocusedPlacement,
    Wr2RatioPlacement,
)
from repro.dram.hma import HeterogeneousMemory
from repro.harness.reporting import print_table
from repro.sim.engine import replay


def run(cache):
    prep = cache.get("mix1")
    wt = prep.workload_trace

    def execute(pages):
        hma = HeterogeneousMemory(prep.config)
        hma.install_placement(pages, prep.stats.pages)
        return replay(prep.config, hma, wt.trace, wt.times,
                      core_windows=wt.core_mlp)

    base = execute([])
    rows = []
    metrics = {}
    for label, policy in (("perf-focused", PerformanceFocusedPlacement()),
                          ("wr2-ratio", Wr2RatioPlacement()),
                          ("rel-focused", ReliabilityFocusedPlacement())):
        res = execute(policy.select_fast_pages(prep.stats,
                                               prep.capacity_pages))
        metrics[label] = (res.weighted_speedup(base),
                          res.harmonic_speedup(base),
                          res.fairness(base))
        ws, hs, fair = metrics[label]
        rows.append([label, f"{ws:.1f}", f"{hs:.2f}", f"{fair:.2f}"])
    return rows, metrics


def test_ext_fairness(cache, run_once):
    rows, metrics = run_once(run, cache)
    print_table(
        ["placement", "weighted speedup (16 cores)", "harmonic speedup",
         "fairness (min/max)"],
        rows, title="Extension: per-core fairness of the placements (mix1)",
    )
    # The throughput ordering matches the aggregate-IPC story...
    assert metrics["perf-focused"][0] > metrics["rel-focused"][0]
    # ...and no placement is grossly unfair to any core.
    for ws, hs, fair in metrics.values():
        assert fair > 0.5
