"""Figure 17: annotated structures per workload (paper: 1-6 typical,
tens for cactusADM/mixes, average ~8)."""

from repro.harness.experiments import fig17_annotation_counts


def test_fig17_annotation_counts(cache, run_once):
    result = run_once(fig17_annotation_counts, cache=cache)
    result.print()
    counts = {row[0]: row[1] for row in result.rows}
    assert 2 <= result.summary["mean_annotations"] <= 20
    # Homogeneous workloads need only a handful of annotations...
    assert counts["astar"] <= 6
    assert counts["lbm"] <= 4
    # ...while cactusADM and the mixes are the outliers.
    assert result.summary["max_annotations"] >= 2 * counts["astar"]
