"""Ablation: dynamic mean hotness threshold vs hardwired thresholds.

Section 6.1 argues that "choosing a hardwired value as a threshold
cannot serve every application fairly" and uses the dynamic per-
interval mean instead.  This ablation compares the dynamic mean against
fixed thresholds across workloads with very different hotness spans.
"""

from repro.core.migration import PerformanceFocusedMigration
from repro.harness.experiments import DEFAULT_INTERVALS
from repro.harness.reporting import gmean, print_table
from repro.sim.system import evaluate_migration

WORKLOADS = ("astar", "mcf", "libquantum", "mix1")


def run_sweep(cache):
    rows = []
    means = {}
    for label, threshold in (("dynamic-mean", None), ("fixed-2", 2),
                             ("fixed-16", 16), ("fixed-64", 64)):
        ipcs = []
        for wl in WORKLOADS:
            prep = cache.get(wl)
            res = evaluate_migration(
                prep,
                PerformanceFocusedMigration(fixed_threshold=threshold),
                num_intervals=DEFAULT_INTERVALS,
            )
            ipcs.append(res.ipc_vs_ddr)
        means[label] = gmean(ipcs)
        rows.append([label, means[label]])
    return rows, means


def test_ablation_threshold(cache, run_once):
    rows, means = run_once(run_sweep, cache)
    print_table(["threshold", "IPC vs DDR (mean)"], rows,
                title="Ablation: hotness threshold policy")
    # The dynamic mean is never far from the best fixed setting and
    # beats at least one of the hardwired extremes.
    best_fixed = max(v for k, v in means.items() if k != "dynamic-mean")
    worst_fixed = min(v for k, v in means.items() if k != "dynamic-mean")
    assert means["dynamic-mean"] >= worst_fixed
    assert means["dynamic-mean"] >= 0.9 * best_fixed
