"""Sections 6.3/6.4: hardware cost (paper: FC 8.5 MB total / 4.25 MB
additional; Cross Counters 676 KB)."""

import pytest

from repro.harness.experiments import hw_cost


def test_hw_cost(run_once):
    result = run_once(hw_cost)
    result.print()
    assert result.summary["fc_total_mb"] == pytest.approx(8.5, rel=0.02)
    assert result.summary["fc_additional_mb"] == pytest.approx(4.25, rel=0.02)
    assert result.summary["cc_total_kb"] <= 700
