"""Config-batched multi-run engine: oracle vs batched sweep throughput.

Drives the two replay-heaviest sweeps — ``capacity_sweep`` (3
workloads x 5 fractions x 2 policies of static placements) and
``fig13_interval_sweep`` (3 workloads x 5 interval counts of
perf-focused migration) — twice over the *same* pre-prepared
workloads:

* **oracle**   — the ``multirun`` knob off: every (config, policy)
  point replays the trace on its own, the per-point reference path.
* **multirun** — the knob on (the default): each workload's points
  ride one :func:`repro.sim.engine.replay_multi` config batch, so the
  trace-side precompute, the interval profiler, and the fault
  campaigns are shared across the batch.

Workload preparation (synthesis, profiling, DDR baseline) happens
outside the timed region — the benchmark isolates the evaluation
engine, which is what the batching changes.  Every figure's rows are
asserted bit-identical between the modes before any timing is
trusted, wall time is best-of-``REPEATS``, and the report lands in
``BENCH_multirun.json`` (override with ``REPRO_BENCH_MULTIRUN_JSON``)
where ``repro-hma compare --bench-root`` enforces the floor.
"""

import json
import os
import time

from repro.config import knob_overrides
from repro.harness.experiments import (
    SWEEP_WORKLOADS,
    WorkloadCache,
    fig13_interval_sweep,
)
from repro.harness.runner import prefetch_workloads
from repro.harness.sweeps import capacity_sweep

#: Default scale, default trace volume — the acceptance configuration.
ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
SCALE = 1 / 1024
SEED = 0
REPEATS = 3
CAPACITY_WORKLOADS = ("mcf", "milc", "mix1")
FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.8)
INTERVALS = (4, 8, 16, 32, 64)

#: Conservative CI floor for the combined ratio (the acceptance
#: criterion is 5x at default volume; smoke volumes leave less
#: per-replay fixed cost to amortise, so below it the floor halves).
_SMOKE = 0.5 if ACCESSES < 20_000 else 1.0
MULTIRUN_FLOOR = 5.0 * _SMOKE


def _figure_digest(fig) -> tuple:
    return (fig.figure, fig.headers, fig.rows,
            sorted(fig.summary.items()))


def _run_once(preps, cache):
    """One pass over both sweeps; returns (digests, per-sweep secs)."""
    t0 = time.perf_counter()
    cap = capacity_sweep(CAPACITY_WORKLOADS, FRACTIONS, scale=SCALE,
                         accesses_per_core=ACCESSES, seed=SEED,
                         jobs=1, preps=preps)
    t1 = time.perf_counter()
    f13 = fig13_interval_sweep(SWEEP_WORKLOADS, INTERVALS, cache=cache,
                               accesses_per_core=ACCESSES, scale=SCALE,
                               seed=SEED)
    t2 = time.perf_counter()
    digests = {"capacity": _figure_digest(cap), "fig13": _figure_digest(f13)}
    return digests, {"capacity_sweep": t1 - t0,
                     "fig13_interval_sweep": t2 - t1}


def _best_run(multirun: bool, preps, cache):
    best = None
    digests = None
    with knob_overrides(multirun=multirun):
        for _ in range(REPEATS):
            digests, stages = _run_once(preps, cache)
            total = sum(stages.values())
            if best is None or total < best[0]:
                best = (total, stages)
    return digests, best[1], best[0]


def test_multirun_speedup():
    # Preparation is shared and untimed: both modes evaluate exactly
    # the same PreparedWorkload objects.
    preps = prefetch_workloads(
        CAPACITY_WORKLOADS, scale=SCALE, accesses_per_core=ACCESSES,
        seed=SEED, jobs=1)
    cache = WorkloadCache(accesses_per_core=ACCESSES, scale=SCALE,
                          seed=SEED).prefetch(SWEEP_WORKLOADS, jobs=1)

    oracle_digests, oracle_stages, oracle_total = _best_run(
        False, preps, cache)
    multi_digests, multi_stages, multi_total = _best_run(
        True, preps, cache)

    # Parity gate: every figure must be bit-identical before timing
    # means anything.
    for name in ("capacity", "fig13"):
        assert multi_digests[name] == oracle_digests[name], (
            f"{name} rows diverge between oracle and multirun modes")

    points = (len(CAPACITY_WORKLOADS) * len(FRACTIONS) * 2
              + len(SWEEP_WORKLOADS) * len(INTERVALS))
    report = {
        "accesses_per_core": ACCESSES,
        "config_points": points,
        "oracle_seconds": oracle_total,
        "multirun_seconds": multi_total,
        "speedup_multirun_vs_oracle": oracle_total / multi_total,
        "stages": {
            name: {
                "oracle_seconds": oracle_stages[name],
                "multirun_seconds": multi_stages[name],
                "speedup": oracle_stages[name] / multi_stages[name],
            }
            for name in oracle_stages
        },
    }

    out = os.environ.get("REPRO_BENCH_MULTIRUN_JSON", "BENCH_multirun.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)

    per_stage = "; ".join(
        f"{name} {row['speedup']:.1f}x" for name, row in
        report["stages"].items())
    print(f"\nmulti-run engine ({points} config points): "
          f"{report['speedup_multirun_vs_oracle']:.1f}x batched vs "
          f"per-point ({per_stage}) -> {out}")

    got = report["speedup_multirun_vs_oracle"]
    assert got >= MULTIRUN_FLOOR, (
        f"config-batched engine only {got:.2f}x the per-point oracle "
        f"(floor {MULTIRUN_FLOOR}x)")
