"""Extension sweep: HBM capacity vs the performance/reliability trade.

Not a paper figure — explores the capacity axis the paper holds fixed
at 1 GB.  More capacity converges the placements' IPC while the SER
gap persists: reliability-awareness matters at every capacity point.
"""

import os

from repro.harness.sweeps import capacity_sweep


def test_sweep_capacity(run_once):
    result = run_once(
        capacity_sweep,
        workloads=("mcf", "milc", "mix1"),
        fractions=(0.05, 0.1, 0.2, 0.4),
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")) or None,
        cache_dir=os.environ.get("REPRO_BENCH_CACHE_DIR") or None,
    )
    result.print()
    perf_ipcs = [row[1] for row in result.rows]
    assert perf_ipcs == sorted(perf_ipcs)  # IPC grows with capacity
    # wr2 stays more reliable than perf at every capacity point that
    # doesn't trivially swallow the whole footprint.
    assert result.rows[0][4] < result.rows[0][2]
