"""Policy-layer throughput: sparse oracle vs vectorised array kernels.

Drives each migration mechanism's policy layer in isolation — counter
updates (``observe_chunk``) plus interval planning (``plan`` /
``plan_sub``) over an mcf trace, with the replay model factored out —
asserts the ``array`` kernel's :data:`MigrationPlan` outputs are
bit-identical to the ``sparse`` reference, and times the batched
:class:`FaultSimulator` against the retained per-trial loop in the
event-dense regime.  Numbers land in ``BENCH_policies.json``
(override the location with ``REPRO_BENCH_POLICY_JSON``).

The cc-migration row is additionally compared against the *pre-PR*
baseline: the sparse kernel driving a literal textbook decrement-all
MEA, since the shared :class:`MeaTracker` was itself vectorised in
this change and would otherwise flatter the sparse reference.
"""

import json
import os
import time

import numpy as np

from repro.config import PAGE_SIZE, ddr3_config, hbm_config
from repro.core.migration import (
    CrossCountersMigration,
    OracleRiskMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.dram.hma import HeterogeneousMemory
from repro.faults.faultsim import FaultSimulator
from repro.faults.fit import rates_for_memory
from repro.sim.system import prepare_workload

#: Default scale, default trace volume — the acceptance configuration.
ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
INTERVALS = 16
REPEATS = 3
FAULT_TRIALS = int(os.environ.get("REPRO_BENCH_FAULT_TRIALS", "40000"))

#: Conservative CI floors (the measured numbers at default volume are
#: higher; smoke volumes leave less fixed cost to amortise, so below
#: the acceptance volume the policy floors halve).
_SMOKE = 0.5 if ACCESSES < 20_000 else 1.0
POLICY_FLOORS = {"perf-migration": 2.0 * _SMOKE,
                 "fc-migration": 3.0 * _SMOKE,
                 "cc-migration": 4.0 * _SMOKE,
                 "oracle-risk-migration": 2.0 * _SMOKE}
CC_BASELINE_FLOOR = 3.0 * _SMOKE
FAULTSIM_FLOOR = 10.0


def _best_of(func, repeats=REPEATS):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _best_of_timed(func, repeats=REPEATS):
    """Like :func:`_best_of` for callables that time themselves and
    return ``(result, seconds)``."""
    best = None
    result = None
    for _ in range(repeats):
        result, elapsed = func()
        best = elapsed if best is None else min(best, elapsed)
    return result, best


class _TextbookMea:
    """Literal Misra-Gries (decrement-all): the pre-PR MEA semantics."""

    def __init__(self, capacity=32):
        self.capacity = capacity
        self._counters = {}
        self.stream_length = 0

    def record(self, page):
        self.stream_length += 1
        counters = self._counters
        if page in counters:
            counters[page] += 1
        elif len(counters) < self.capacity:
            counters[page] = 1
        else:
            dead = []
            for p in counters:
                counters[p] -= 1
                if counters[p] == 0:
                    dead.append(p)
            for p in dead:
                del counters[p]

    def record_many(self, pages):
        # Per-access dispatch over the numpy array, exactly the
        # streaming call structure of the pre-vectorisation tracker.
        for page in pages:
            self.record(int(page))

    def hot_pages(self, limit=None, min_count=1):
        ranked = sorted(
            ((p, v) for p, v in self._counters.items() if v >= min_count),
            key=lambda kv: -kv[1],
        )
        pages = [page for page, _count in ranked]
        return pages[:limit] if limit is not None else pages

    def reset(self):
        self._counters.clear()
        self.stream_length = 0


def _mechanisms(kernel):
    return {
        "perf-migration": PerformanceFocusedMigration(policy_kernel=kernel),
        "fc-migration": ReliabilityAwareFCMigration(policy_kernel=kernel),
        "cc-migration": CrossCountersMigration(policy_kernel=kernel),
        "oracle-risk-migration": OracleRiskMigration(policy_kernel=kernel),
    }


def _make_run(prep, mech_factory):
    """Isolated policy-layer driver: observe + plan + apply, no replay.

    Returns ``(plans, seconds)`` with the clock around the policy loop
    only — building the HMA and installing the initial placement is
    identical setup for every kernel and would dilute the comparison.
    """
    trace = prep.workload_trace.trace
    times = prep.workload_trace.times
    pages_arr = (trace.address // PAGE_SIZE).astype(np.int64)
    writes_arr = np.asarray(trace.is_write, dtype=bool)
    fast_cap = prep.capacity_pages
    all_pages = sorted({int(p) for p in prep.stats.pages})

    def run():
        mech = mech_factory()
        hma = HeterogeneousMemory(prep.config)
        hma.install_placement(all_pages[:fast_cap], all_pages)
        sub = mech.subintervals_per_interval
        cuts = np.linspace(0, len(pages_arr), INTERVALS * sub + 1)
        cuts = cuts.astype(int)
        plans = []
        t0 = time.perf_counter()
        for c in range(INTERVALS * sub):
            start, stop = cuts[c], cuts[c + 1]
            if stop > start:
                mech.observe_chunk(pages_arr[start:stop],
                                   writes_arr[start:stop],
                                   times=times[start:stop])
            if (c + 1) % sub == 0:
                to_fast, to_slow = mech.plan(hma)
                if sub > 1:
                    f2, s2 = mech.plan_sub(hma)
                    to_fast = list(to_fast) + list(f2)
                    to_slow = list(to_slow) + list(s2)
            else:
                to_fast, to_slow = mech.plan_sub(hma)
            to_fast, to_slow = list(to_fast), list(to_slow)
            plans.append((to_fast, to_slow))
            if to_fast or to_slow:
                hma.migrate_pairs(to_fast, to_slow, float(c))
        return plans, time.perf_counter() - t0

    return run


def test_policy_kernel_speedup():
    prep = prepare_workload("mcf", accesses_per_core=ACCESSES, seed=0)
    requests = len(prep.workload_trace.times)
    report = {"workload": "mcf", "accesses_per_core": ACCESSES,
              "requests": requests, "intervals": INTERVALS,
              "mechanisms": {}, "faultsim": {}}

    for name in ("perf-migration", "fc-migration", "cc-migration",
                 "oracle-risk-migration"):
        sparse_run = _make_run(
            prep, lambda n=name: _mechanisms("sparse")[n])
        array_run = _make_run(
            prep, lambda n=name: _mechanisms("array")[n])
        sparse_plans, sparse_s = _best_of_timed(sparse_run)
        array_plans, array_s = _best_of_timed(array_run)
        # Parity gate: the vectorised planner must be bit-identical.
        assert array_plans == sparse_plans, name
        speedup = sparse_s / array_s
        report["mechanisms"][name] = {
            "sparse_seconds": sparse_s,
            "array_seconds": array_s,
            "intervals_per_second": INTERVALS / array_s,
            "speedup_array_vs_sparse": speedup,
        }

    # cc-migration against the true pre-PR baseline (textbook MEA).
    def cc_textbook():
        mech = CrossCountersMigration(policy_kernel="sparse")
        mech.mea = _TextbookMea(capacity=mech.mea.capacity)
        return mech

    baseline_plans, baseline_s = _best_of_timed(_make_run(prep, cc_textbook))
    cc = report["mechanisms"]["cc-migration"]
    assert baseline_plans is not None
    cc["textbook_mea_seconds"] = baseline_s
    cc["speedup_array_vs_textbook"] = baseline_s / cc["array_seconds"]

    # Batched FaultSimulator vs the per-trial reference loop, in the
    # event-dense regime where the Poisson draw is not the whole cost.
    for label, factory in (("hbm", hbm_config), ("ddr3", ddr3_config)):
        memory = factory()
        rates = rates_for_memory(memory).scaled(2000)
        ref_result, ref_s = _best_of(
            lambda m=memory, r=rates: FaultSimulator(m, rates=r, seed=4)
            .run(trials=FAULT_TRIALS, method="reference"))
        bat_result, bat_s = _best_of(
            lambda m=memory, r=rates: FaultSimulator(m, rates=r, seed=4)
            .run(trials=FAULT_TRIALS, method="batched"))
        # Same seed, same Poisson draw: exact count parity.
        assert bat_result.corrected == ref_result.corrected, label
        assert bat_result.detected == ref_result.detected, label
        analytic = FaultSimulator(
            memory, rates=rates, seed=4).analytic_uncorrected_per_mission()
        err = abs(bat_result.expected_uncorrected_per_mission
                  - analytic) / analytic
        report["faultsim"][label] = {
            "trials": FAULT_TRIALS,
            "reference_seconds": ref_s,
            "batched_seconds": bat_s,
            "batched_trials_per_second": FAULT_TRIALS / bat_s,
            "speedup_batched_vs_reference": ref_s / bat_s,
            "analytic_relative_error": err,
        }
        assert err < 0.15, (label, err)

    out = os.environ.get("REPRO_BENCH_POLICY_JSON", "BENCH_policies.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)

    lines = [f"{name}: {row['speedup_array_vs_sparse']:.1f}x"
             for name, row in report["mechanisms"].items()]
    cc_base = report["mechanisms"]["cc-migration"]
    print(f"\npolicy layer ({requests} requests, {INTERVALS} intervals): "
          f"{'; '.join(lines)}; cc vs textbook baseline "
          f"{cc_base['speedup_array_vs_textbook']:.1f}x")
    for label, row in report["faultsim"].items():
        print(f"faultsim {label}: "
              f"{row['speedup_batched_vs_reference']:.1f}x batched "
              f"({row['batched_trials_per_second']:,.0f} trials/s, "
              f"analytic err {row['analytic_relative_error']:.1%}) "
              f"-> {out}")

    for name, floor in POLICY_FLOORS.items():
        got = report["mechanisms"][name]["speedup_array_vs_sparse"]
        assert got >= floor, (
            f"{name} array kernel only {got:.2f}x sparse (floor {floor}x)")
    got = cc_base["speedup_array_vs_textbook"]
    assert got >= CC_BASELINE_FLOOR, (
        f"cc-migration only {got:.2f}x the textbook baseline "
        f"(floor {CC_BASELINE_FLOOR}x)")
    for label, row in report["faultsim"].items():
        got = row["speedup_batched_vs_reference"]
        assert got >= FAULTSIM_FLOOR, (
            f"batched faultsim ({label}) only {got:.2f}x reference "
            f"(floor {FAULTSIM_FLOOR}x)")
