"""Frontier server-workload generators: throughput + experiment time.

Two timed regions per run:

* **generation** — each generator family (kvstore, webserver,
  compiler) synthesises its full multi-core trace from scratch; the
  metric is requests/second of trace emitted (higher is better).
  Before timing, generation is asserted seeded-deterministic
  (byte-identical regeneration) — a cheap-but-wrong generator that
  drops the phase machinery would not survive the gate.
* **experiment** — the end-to-end ``workload-frontier`` figure (all
  three families x the four-mechanism ladder, preparation included)
  on a fresh cache; the metric is wall seconds (lower is better).
  The figure must report a reliability win (tolerance-tiered beating
  CC on SER somewhere) for the timing to count.

Wall time is best-of-``REPEATS`` and the report lands in
``BENCH_workloads.json`` (override with ``REPRO_BENCH_WORKLOADS_JSON``)
where ``repro-hma compare --bench-root`` enforces the floor.
"""

import json
import os
import time

from repro.harness.experiments import workload_frontier
from repro.workloads import FRONTIER_WORKLOADS, generate_frontier

#: Default scale, default trace volume — the acceptance configuration.
ACCESSES = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
SCALE = 1 / 1024
SEED = 0
REPEATS = 3
INTERVALS = 8

#: Conservative CI floors.  Generation is pure numpy and comfortably
#: clears 200k req/s at default volume; smoke volumes pay relatively
#: more fixed cost per pass, so the floor halves below it.
_SMOKE = 0.5 if ACCESSES < 20_000 else 1.0
GENERATION_FLOOR_RPS = 100_000.0 * _SMOKE


def _trace_bytes(wt) -> bytes:
    return b"".join(
        getattr(wt.trace, f).tobytes()
        for f in ("core", "address", "is_write", "gap")
    ) + wt.times.tobytes()


def test_workload_benchmarks():
    generation = {}
    for name in FRONTIER_WORKLOADS:
        # Determinism gate before any timing is trusted.
        wt = generate_frontier(name, scale=SCALE,
                               accesses_per_core=ACCESSES, seed=SEED)
        twin = generate_frontier(name, scale=SCALE,
                                 accesses_per_core=ACCESSES, seed=SEED)
        assert _trace_bytes(wt) == _trace_bytes(twin), (
            f"{name}: generation is not seeded-deterministic")

        best = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            out = generate_frontier(name, scale=SCALE,
                                    accesses_per_core=ACCESSES,
                                    seed=SEED)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        requests = len(out.trace)
        generation[name] = {
            "requests": requests,
            "seconds": best,
            "requests_per_second": requests / best,
        }

    best_fig = None
    fig = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        fig = workload_frontier(accesses_per_core=ACCESSES, scale=SCALE,
                                seed=SEED, num_intervals=INTERVALS)
        elapsed = time.perf_counter() - t0
        if best_fig is None or elapsed < best_fig:
            best_fig = elapsed
    assert fig.summary["frontier_wins"] >= 1.0, (
        "tolerance-tiered never beat CC on SER; experiment timing "
        "would be measuring a broken policy")

    slowest_rps = min(row["requests_per_second"]
                      for row in generation.values())
    report = {
        "accesses_per_core": ACCESSES,
        "generation": generation,
        "generation_slowest_requests_per_second": slowest_rps,
        "experiment": {
            "families": len(FRONTIER_WORKLOADS),
            "rows": len(fig.rows),
            "seconds": best_fig,
            "frontier_wins": fig.summary["frontier_wins"],
            "best_ser_tt_vs_cc": fig.summary["best_ser_tt_vs_cc"],
        },
    }

    out_path = os.environ.get("REPRO_BENCH_WORKLOADS_JSON",
                              "BENCH_workloads.json")
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2)

    per_family = "; ".join(
        f"{name} {row['requests_per_second'] / 1e6:.2f}M req/s"
        for name, row in generation.items())
    print(f"\n[bench_workloads] {per_family}; "
          f"experiment {best_fig:.2f}s "
          f"(wins {fig.summary['frontier_wins']:.0f}/3) -> {out_path}")

    assert slowest_rps >= GENERATION_FLOOR_RPS, (
        f"generation throughput {slowest_rps:.0f} req/s below the "
        f"{GENERATION_FLOOR_RPS:.0f} floor")
