"""Ablation: fast busy-until engine vs the event-driven FR-FCFS engine.

The experiment harness runs on the fast engine; this ablation replays
the same workload/placement pairs through the closed-loop discrete-
event reference and reports where the two agree — validating the
model choice documented in DESIGN.md.
"""

from repro.core.placement import DdrOnlyPlacement, PerformanceFocusedPlacement
from repro.dram.hma import HeterogeneousMemory
from repro.harness.reporting import print_table
from repro.sim.engine import replay
from repro.sim.event_engine import replay_event_driven

WORKLOADS = ("astar", "libquantum")


def run(cache):
    rows = []
    agreements = []
    for wl in WORKLOADS:
        prep = cache.get(wl)
        wt = prep.workload_trace
        trace = wt.trace.slice(0, 30_000)
        gains = {}
        for engine_name, engine in (("fast", replay),
                                    ("event", replay_event_driven)):
            ipcs = {}
            for label, policy in (("ddr", DdrOnlyPlacement()),
                                  ("hma", PerformanceFocusedPlacement())):
                fast_pages = policy.select_fast_pages(prep.stats,
                                                      prep.capacity_pages)
                hma = HeterogeneousMemory(prep.config)
                hma.install_placement(fast_pages, prep.stats.pages)
                if engine is replay:
                    res = engine(prep.config, hma, trace,
                                 core_windows=wt.core_mlp)
                else:
                    res = engine(prep.config, hma, trace,
                                 core_windows=wt.core_mlp)
                ipcs[label] = res.ipc
            gains[engine_name] = ipcs["hma"] / ipcs["ddr"]
        rows.append([wl, f"{gains['fast']:.2f}x", f"{gains['event']:.2f}x"])
        agreements.append((gains["fast"], gains["event"]))
    return rows, agreements


def test_ablation_engine(cache, run_once):
    rows, agreements = run_once(run, cache)
    print_table(["workload", "HMA speedup (fast engine)",
                 "HMA speedup (event engine)"], rows,
                title="Ablation: fast busy-until vs event-driven FR-FCFS")
    for fast_gain, event_gain in agreements:
        # Both engines agree the HMA placement wins, within a band.
        assert fast_gain > 1.0 and event_gain > 1.0
        assert 0.5 < fast_gain / event_gain < 2.0
