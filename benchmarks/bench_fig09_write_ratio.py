"""Figure 9: write ratio vs AVF (paper: rho = -0.32, read-heavy bulk)."""

from repro.harness.experiments import fig09_write_ratio


def test_fig09_write_ratio(cache, run_once):
    result = run_once(fig09_write_ratio, workload="mix1", cache=cache)
    result.print()
    assert -0.7 < result.summary["rho_write_ratio_avf"] < -0.1
    # Most pages are read-heavy: the first bin dominates.
    counts = [row[1] for row in result.rows]
    assert counts[0] == max(counts)
    # ...but a write-heavy tail exists (paper Fig. 9b's last bins).
    assert sum(counts[-2:]) > 0
