"""Figure 2: average memory AVF per workload (paper: 1.7% - 22.5%)."""

from repro.harness.experiments import fig02_avf


def test_fig02_avf(cache, run_once):
    result = run_once(fig02_avf, cache=cache)
    result.print()
    # Wide spread, astar lowest, milc near the top (paper ordering).
    assert result.rows[0][0] == "astar"
    assert result.summary["min_avf_pct"] < 3.0
    assert result.summary["max_avf_pct"] > 10.0
    top3 = [row[0] for row in result.rows[-4:]]
    assert "milc" in top3
