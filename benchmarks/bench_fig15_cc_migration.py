"""Figure 15: Cross-Counters migration (paper: SER/1.5 at -4.9%,
weaker SER cut but cheaper and faster than FC)."""

from repro.harness.experiments import fig14_fc_migration, fig15_cc_migration


def test_fig15_cc_migration(cache, run_once):
    result = run_once(fig15_cc_migration, cache=cache)
    result.print()
    assert result.summary["mean_ser_ratio"] < 0.9
    assert result.summary["mean_ipc_ratio"] > 0.85
    fc = fig14_fc_migration(cache=cache)
    # CC trades SER reduction for IPC relative to FC.
    assert result.summary["mean_ipc_ratio"] >= fc.summary["mean_ipc_ratio"] - 0.02
    assert result.summary["mean_ser_ratio"] >= fc.summary["mean_ser_ratio"] - 0.05
