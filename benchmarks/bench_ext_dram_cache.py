"""Extension: DRAM cache vs Part-of-Memory organizations.

The paper's Section 8 contrasts its PoM approach with managing the
stacked DRAM as a hardware cache (Alloy-style) and notes that caches
"only marginally improve capacity-limited applications" while PoM
benefits them too.  This experiment reproduces that argument: on our
capacity-limited workloads (footprint ~7-17x the stacked capacity) the
direct-mapped line cache thrashes — it pays probe + fill + write-back
on most accesses and loses to every PoM placement — while still
exposing all the hot data it does capture to the weakly-protected
memory.  PoM with the Wr^2 placement wins on *both* axes, which is the
paper's case for software-visible placement.
"""

from repro.core.placement import PerformanceFocusedPlacement, Wr2RatioPlacement
from repro.dram.dram_cache import DramCacheSystem
from repro.dram.hma import HeterogeneousMemory
from repro.harness.reporting import gmean, print_table
from repro.sim.engine import replay
from repro.sim.system import evaluate_static

WORKLOADS = ("milc", "libquantum", "mix1")


def run(cache):
    rows = []
    summary = {}
    for label in ("dram-cache", "pom-perf", "pom-wr2"):
        ipcs, sers = [], []
        for wl in WORKLOADS:
            prep = cache.get(wl)
            wt = prep.workload_trace
            if label == "dram-cache":
                system = DramCacheSystem(prep.config)
                result = replay(prep.config, system, wt.trace, wt.times,
                                core_windows=wt.core_mlp)
                ser = system.ser(prep.stats, prep.ser_model)
                ipcs.append(result.ipc / prep.ddr_baseline.ipc)
                sers.append(ser / prep.ddr_baseline.ser)
            else:
                policy = (PerformanceFocusedPlacement() if label == "pom-perf"
                          else Wr2RatioPlacement())
                res = evaluate_static(prep, policy)
                ipcs.append(res.ipc_vs_ddr)
                sers.append(res.ser_vs_ddr)
        summary[label] = (gmean(ipcs), gmean(sers))
        rows.append([label, f"{summary[label][0]:.2f}x",
                     f"{summary[label][1]:.0f}x"])
    return rows, summary


def test_ext_dram_cache(cache, run_once):
    rows, summary = run_once(run, cache)
    print_table(["organization", "IPC vs DDR-only", "SER vs DDR-only"],
                rows, title="Extension: DRAM cache vs PoM placements")
    # Capacity-limited workloads: the cache thrashes and loses to PoM
    # on performance (the paper's Sec. 8 argument for PoM)...
    assert summary["pom-perf"][0] > summary["dram-cache"][0]
    assert summary["pom-wr2"][0] > summary["dram-cache"][0]
    # ...while still exposing far more vulnerable data than the
    # reliability-aware PoM placement.
    assert summary["dram-cache"][1] > 2 * summary["pom-wr2"][1]
