"""Ablation: FR-FCFS vs strict-FCFS memory scheduling.

The replay engine's fast busy-until model serves requests in arrival
order; Ramulator reorders with FR-FCFS.  This ablation quantifies what
that reordering buys on real generated memory traffic, bounding the
fidelity gap of the fast model.
"""

from repro.config import DramTiming
from repro.dram.scheduler import (
    ChannelScheduler,
    Request,
    SchedulerConfig,
    fcfs_reference,
)
from repro.dram.device import LINES_PER_ROW
from repro.harness.reporting import print_table


def channel_requests(cache, workload="mix1", channel=0, channels=2,
                     limit=4000):
    """Extract one DDR channel's request stream from a workload trace."""
    prep = cache.get(workload)
    trace = prep.workload_trace.trace
    lines = trace.lines
    sel = (lines % channels) == channel
    lines_ch = (lines[sel] // channels)[:limit]
    writes = trace.is_write[sel][:limit]
    # Nominal arrival pacing: one request per 4 ns of channel time.
    requests = []
    for i, (line, is_write) in enumerate(zip(lines_ch, writes)):
        row_global = int(line) // LINES_PER_ROW
        requests.append(Request(
            arrival=i * 4e-9,
            bank=row_global % 8,
            row=row_global // 8,
            is_write=bool(is_write),
        ))
    return requests


def run(cache):
    cfg = SchedulerConfig(
        num_banks=8,
        timing=DramTiming(tCL=11, tRCD=11, tRP=11, burst_cycles=4),
        clock_period=1 / 800e6,
        burst_seconds=4 / 800e6 / 2,
    )
    rows = []
    results = {}
    for label, scheduler in (
        ("strict FCFS", lambda rs: fcfs_reference(rs, cfg)),
        ("FR-FCFS", lambda rs: ChannelScheduler(cfg).simulate(rs)),
    ):
        requests = channel_requests(cache)
        done = scheduler(requests)
        makespan = max(r.finish for r in done)
        mean_latency = sum(r.finish - r.arrival for r in done) / len(done)
        results[label] = (makespan, mean_latency)
        rows.append([label, f"{makespan * 1e6:.1f} us",
                     f"{mean_latency * 1e9:.0f} ns"])
    return rows, results


def test_ablation_scheduler(cache, run_once):
    rows, results = run_once(run, cache)
    print_table(["scheduler", "makespan", "mean latency"], rows,
                title="Ablation: DRAM scheduling policy (one DDR channel "
                      "of mix1 traffic)")
    # FR-FCFS never loses to strict FCFS on makespan.
    assert results["FR-FCFS"][0] <= results["strict FCFS"][0] * 1.001
