"""ECC codec kernels: batched syndrome-LUT decode vs the scalar oracle.

Times the two ECC hot paths the design-space sweep leans on:

* **LUT compilation** — :func:`repro.faults.ecc.build_ecc_luts` across
  the full scheme ladder (what every FaultSimulator construction and
  ``SerModel.for_systems`` campaign pays once per scheme).
* **Batched decode** — ``decode_batch`` over a block of noisy
  codewords for each real codec (SEC-DED, SEC-DAEC, BCH, ChipKill RS)
  against the per-word scalar ``decode`` loop.

Outcome vectors and corrected payloads are asserted bit-identical
between the two paths before any timing is trusted, wall time is
best-of-``REPEATS``, and the report lands in ``BENCH_ecc.json``
(override with ``REPRO_BENCH_ECC_JSON``) where ``repro-hma compare
--bench-root`` enforces the floor.
"""

import json
import os
import time

import numpy as np

from repro.faults import bch, hamming, secdaec
from repro.faults.ecc import (
    SCHEME_LADDER,
    ChipGeometry,
    Outcome,
    build_ecc_luts,
    make_scheme,
)
from repro.faults.reed_solomon import ChipKillCode

#: Number of codewords per decode block; rides the shared bench knob.
WORDS = int(os.environ.get("REPRO_BENCH_ACCESSES", "20000"))
SEED = 0
REPEATS = 3

#: Conservative CI floor: at default volume the vectorised decode is
#: >40x the scalar loop; smoke volumes amortise less setup.
_SMOKE = 0.5 if WORDS < 20_000 else 1.0
DECODE_FLOOR = 5.0 * _SMOKE


def _best(fn, *args):
    best = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        out = fn(*args)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, out)
    return best


def _bit_block(mod, rng, max_errors=2):
    words = np.array([
        mod.encode(rng.integers(0, 2, mod.DATA_BITS))
        for _ in range(min(WORDS, 512))
    ])
    words = np.tile(words, (max(1, WORDS // len(words)), 1))[:WORDS]
    # Mostly clean words with occasional 1-2 bit errors — the mix the
    # fault campaigns produce (multi-bit patterns are rare events, and
    # BCH's quadratic-locator fallback is deliberately scalar).
    k = np.minimum(rng.integers(0, 3, len(words)), max_errors)
    for i in np.flatnonzero(k):
        pos = rng.choice(mod.CODE_BITS, size=k[i], replace=False)
        words[i, pos] ^= 1
    return words


def _scalar_bit_decode(mod, words):
    out = np.empty(len(words), dtype=np.int8)
    data = np.zeros((len(words), mod.DATA_BITS), dtype=np.uint8)
    for i, cw in enumerate(words):
        r = mod.decode(cw)
        out[i] = 1 if r.outcome is Outcome.DETECTED else 0
        if r.data is not None:
            data[i] = r.data
    return out, data


def _symbol_block(code, rng):
    words = np.array([
        code.encode(rng.integers(0, 256, code.data_symbols))
        for _ in range(min(WORDS, 512))
    ], dtype=np.uint8)
    words = np.tile(words, (max(1, WORDS // len(words)), 1))[:WORDS]
    k = rng.integers(0, 2, len(words))
    for i in np.flatnonzero(k):
        pos = int(rng.integers(0, code.code_symbols))
        words[i, pos] ^= int(rng.integers(1, 256))
    return words


def _scalar_symbol_decode(code, words):
    out = np.empty(len(words), dtype=np.int8)
    data = np.zeros((len(words), code.data_symbols), dtype=np.uint8)
    for i, cw in enumerate(words):
        r = code.decode(cw)
        out[i] = 1 if r.outcome is Outcome.DETECTED else 0
        if r.data is not None:
            data[i] = r.data
    return out, data


def test_ecc_codec_throughput():
    rng = np.random.default_rng(SEED)

    lut_dt, _ = _best(
        lambda: [build_ecc_luts(make_scheme(n), ChipGeometry())
                 for n in SCHEME_LADDER])
    report = {
        "words": WORDS,
        "lut_compile_seconds_all_schemes": lut_dt,
        "codecs": {},
    }

    codecs = [("secded", hamming, _bit_block, _scalar_bit_decode, {}),
              ("secdaec", secdaec, _bit_block, _scalar_bit_decode, {}),
              ("bch", bch, _bit_block, _scalar_bit_decode,
               {"max_errors": 1}),
              ("chipkill", ChipKillCode(), _symbol_block,
               _scalar_symbol_decode, {})]
    for name, mod, make_block, scalar, block_kwargs in codecs:
        words = make_block(mod, rng, **block_kwargs)
        # Parity gate before timing: batch must equal the oracle.
        s_out, s_data = scalar(mod, words)
        b_out, b_data = mod.decode_batch(words)
        assert np.array_equal(s_out, b_out), f"{name}: outcome mismatch"
        assert np.array_equal(s_data, b_data), f"{name}: payload mismatch"

        scalar_dt, _ = _best(scalar, mod, words)
        batch_dt, _ = _best(mod.decode_batch, words)
        speedup = scalar_dt / batch_dt
        report["codecs"][name] = {
            "scalar_seconds": scalar_dt,
            "batch_seconds": batch_dt,
            "speedup_batch_vs_scalar": speedup,
            "batch_words_per_second": len(words) / batch_dt,
        }

    out = os.environ.get("REPRO_BENCH_ECC_JSON", "BENCH_ecc.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)

    per_codec = "; ".join(
        f"{name} {row['speedup_batch_vs_scalar']:.0f}x"
        for name, row in report["codecs"].items())
    print(f"\necc codecs ({WORDS} words): batched decode vs scalar "
          f"({per_codec}), lut ladder compile "
          f"{report['lut_compile_seconds_all_schemes'] * 1e3:.1f} ms "
          f"-> {out}")

    for name, row in report["codecs"].items():
        got = row["speedup_batch_vs_scalar"]
        assert got >= DECODE_FLOOR, (
            f"{name}: batched decode only {got:.2f}x the scalar oracle "
            f"(floor {DECODE_FLOOR}x)")
