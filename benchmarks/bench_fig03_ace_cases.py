"""Figure 3: the didactic ACE-interval cases (masking, early/late reads)."""

from repro.harness.experiments import fig03_ace_cases


def test_fig03_ace_cases(run_once):
    result = run_once(fig03_ace_cases)
    result.print()
    avfs = {row[0].split()[0]: float(row[2].rstrip("%")) for row in result.rows}
    # (b): a strike between two writes is masked entirely.
    assert avfs["(b)"] == 0.0
    # (c) vs (d): same access counts, very different AVF.
    assert avfs["(c)"] > 10 * max(avfs["(d)"], 1.0)
    # (a): ACE spans write -> last read.
    assert 40 <= avfs["(a)"] <= 80
