"""Extension: annotations + reliability-aware migration combined.

The paper's Section 7 closes with: "Supplementing such an annotation-
driven static data placement scheme with a reliability-aware migration
mechanism could potentially further improve the overall reliability."
This benchmark implements and confirms the hypothesis: pinning the
annotated hot & low-risk structures into half the HBM and letting the
FC mechanism manage the rest beats annotations alone on SER.
"""

from repro.core.migration import ReliabilityAwareFCMigration
from repro.core.placement import PerformanceFocusedPlacement
from repro.harness.reporting import gmean, print_table
from repro.sim.system import (
    evaluate_annotation_migration,
    evaluate_annotations,
    evaluate_static,
)

WORKLOADS = ("mcf", "milc", "cactusADM", "mix1")


def run(cache):
    rows = []
    ann_red, comb_red, ann_ipc, comb_ipc = [], [], [], []
    for wl in WORKLOADS:
        prep = cache.get(wl)
        perf = evaluate_static(prep, PerformanceFocusedPlacement())
        ann, _plan = evaluate_annotations(prep)
        comb, _plan = evaluate_annotation_migration(
            prep, ReliabilityAwareFCMigration(), num_intervals=16,
        )
        ann_red.append(perf.ser / ann.ser)
        comb_red.append(perf.ser / comb.ser)
        ann_ipc.append(ann.ipc / perf.ipc)
        comb_ipc.append(comb.ipc / perf.ipc)
        rows.append([wl, f"{ann_red[-1]:.2f}x", f"{comb_red[-1]:.2f}x",
                     f"{ann_ipc[-1]:.2f}", f"{comb_ipc[-1]:.2f}",
                     comb.migrations])
    return rows, (gmean(ann_red), gmean(comb_red),
                  gmean(ann_ipc), gmean(comb_ipc))


def test_ext_annotations_plus_migration(cache, run_once):
    rows, (ann_red, comb_red, ann_ipc, comb_ipc) = run_once(run, cache)
    print_table(
        ["workload", "annotations SER cut", "combined SER cut",
         "annotations IPC", "combined IPC", "migrations"],
        rows,
        title="Extension: annotations + FC migration (Sec. 7 hypothesis)",
    )
    # The combination strictly improves reliability over annotations
    # alone, at a bounded extra performance cost.
    assert comb_red > ann_red
    assert comb_ipc > 0.65
