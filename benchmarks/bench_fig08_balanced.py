"""Figure 8: balanced placement (paper: SER/3 at -14% IPC)."""

from repro.harness.experiments import fig08_balanced


def test_fig08_balanced(cache, run_once):
    result = run_once(fig08_balanced, cache=cache)
    result.print()
    assert result.summary["mean_ser_ratio"] < 0.6
    assert result.summary["mean_ipc_ratio"] > 0.8
