"""Extension sweep: memory-level parallelism vs the HMA speedup.

Bandwidth-bound workloads need outstanding misses to exploit HBM's
channel parallelism; with a one-deep miss window the speedup collapses
toward the bare latency ratio.
"""

from repro.harness.sweeps import mlp_sensitivity


def test_sweep_mlp(run_once):
    result = run_once(mlp_sensitivity, workload="libquantum",
                      windows=(1, 2, 4, 8, 16))
    result.print()
    speedups = [row[3] for row in result.rows]
    assert speedups[-1] > speedups[0]
