"""Datacenter mix study: quadrant analysis and the full policy ladder.

Reproduces the paper's motivation on a realistic mixed workload
(Table 2's mix1: mcf, lbm, milc, omnetpp, astar, sphinx, soplex,
libquantum, gcc sharing 16 cores): splits the footprint into hotness-
risk quadrants, then walks the whole ladder of static placements from
DDR-only to performance-focused.

    python examples/datacenter_mix.py [mix1|mix2|...|mix5]
"""

import sys

from repro.avf.heuristics import (
    hotness_avf_correlation,
    write_ratio_avf_correlation,
)
from repro.harness.plots import ascii_scatter
from repro.core.placement import STATIC_POLICIES
from repro.core.quadrant import quadrant_split
from repro.harness.reporting import print_table
from repro.sim.system import evaluate_static, prepare_workload


def main(mix: str = "mix1") -> None:
    prep = prepare_workload(mix, accesses_per_core=20_000)

    # -- Figure 4-style quadrant analysis --
    quad = quadrant_split(prep.stats, mix)
    fractions = quad.fractions()
    print_table(
        ["quadrant", "footprint share"],
        [[name.replace("_", " "), f"{frac * 100:.1f}%"]
         for name, frac in fractions.items()],
        title=f"{mix}: hotness-risk quadrants "
              f"(mean hotness {quad.mean_hotness:.0f}, "
              f"mean AVF {quad.mean_avf * 100:.1f}%)",
    )
    print(f"rho(hotness, AVF)     = {hotness_avf_correlation(prep.stats):+.2f} "
          "(weak: hot pages are not automatically risky)")
    print(f"rho(write ratio, AVF) = "
          f"{write_ratio_avf_correlation(prep.stats):+.2f} "
          "(write-heavy pages die quickly -> low risk)")
    print()

    # -- the Figure 4 scatter, rendered as text --
    hotness = prep.stats.hotness.astype(float)
    print(ascii_scatter(
        prep.stats.avf, hotness, width=64, height=18,
        xlabel="page AVF", ylabel="page hotness",
        split_x=float(prep.stats.avf.mean()),
        split_y=float(hotness.mean()),
    ))
    print("(upper-left quadrant = hot & low-risk: the HBM candidates)")
    print()

    # -- The placement ladder --
    rows = []
    for name in ("ddr-only", "perf-focused", "rel-focused", "balanced",
                 "wr-ratio", "wr2-ratio"):
        res = evaluate_static(prep, STATIC_POLICIES[name])
        rows.append([name, f"{res.ipc_vs_ddr:.2f}x", f"{res.ser_vs_ddr:.0f}x"])
    print_table(
        ["placement", "IPC vs DDR-only", "SER vs DDR-only"],
        rows,
        title=f"{mix}: the static placement ladder",
    )
    print("Reading the ladder: perf-focused maximises IPC but pays a")
    print("huge soft-error-rate penalty; the reliability-aware schemes")
    print("walk the frontier back toward DDR-only reliability while")
    print("keeping most of the bandwidth benefit.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mix1")
