"""Quickstart: profile a workload and compare two placements.

Runs the 16-copy milc workload through the full pipeline — synthetic
trace, AVF profiling, fault simulation, and trace replay — and compares
a performance-focused placement against the paper's Wr^2-ratio
reliability-aware placement.

    python examples/quickstart.py
"""

from repro.core.placement import (
    PerformanceFocusedPlacement,
    Wr2RatioPlacement,
)
from repro.harness.reporting import print_table
from repro.sim.system import evaluate_static, prepare_workload


def main() -> None:
    # Prepare: generate the trace, profile per-page hotness/AVF, run
    # the fault simulator, and replay the DDR-only baseline.  The
    # default scale is 1/1024 (1 MB "HBM" vs 16 MB "DDR3") so this
    # finishes in seconds; pass scale=1.0 for the paper's full sizes.
    prep = prepare_workload("milc", accesses_per_core=20_000)

    print(f"workload: {prep.name}")
    print(f"footprint: {prep.workload_trace.footprint_pages} pages, "
          f"HBM capacity: {prep.capacity_pages} pages")
    print(f"mean memory AVF: {prep.stats.mean_avf() * 100:.1f}%")
    print(f"HBM/DDR uncorrected-FIT ratio: {prep.ser_model.fit_ratio:.0f}x")
    print()

    rows = []
    for policy in (PerformanceFocusedPlacement(), Wr2RatioPlacement()):
        res = evaluate_static(prep, policy)
        rows.append([
            policy.name,
            f"{res.ipc:.2f}",
            f"{res.ipc_vs_ddr:.2f}x",
            f"{res.ser_vs_ddr:.0f}x",
        ])
    print_table(
        ["placement", "IPC", "IPC vs DDR-only", "SER vs DDR-only"],
        rows,
        title="Static placement comparison (milc, 16 cores)",
    )
    print("The Wr^2-ratio placement keeps nearly all of the performance")
    print("win while exposing far less vulnerable data to the weakly-")
    print("protected fast memory.")


if __name__ == "__main__":
    main()
