"""Lifetime study: seed variability and permanent-fault aging.

Combines two extension substrates:

1. seed replication — how stable the headline IPC/SER numbers are
   across independent workload draws, with confidence intervals, and
2. the aging model — how permanent-fault page retirement erodes the
   HMA's usable capacity (and with it the speedup) over a deployment.

    python examples/lifetime_study.py
"""

from dataclasses import replace

from repro.core.placement import PerformanceFocusedPlacement
from repro.faults.aging import AgingModel, lifetime_capacity_schedule
from repro.harness.replication import replicate
from repro.harness.reporting import print_table
from repro.sim.system import evaluate_static, prepare_workload


def main() -> None:
    # -- 1. replication --
    print("Replicating the Fig. 5 headline over five workload draws...")
    for name, metric in (
        ("IPC gain vs DDR-only",
         lambda prep: evaluate_static(
             prep, PerformanceFocusedPlacement()).ipc_vs_ddr),
        ("SER blow-up vs DDR-only",
         lambda prep: evaluate_static(
             prep, PerformanceFocusedPlacement()).ser_vs_ddr),
    ):
        rep = replicate("mix1", metric, metric_name=name,
                        seeds=(0, 1, 2, 3, 4), accesses_per_core=8_000)
        print(f"  {rep}")
    print()

    # -- 2. aging --
    prep = prepare_workload("milc", accesses_per_core=8_000)
    model = AgingModel(prep.config.fast_memory)
    schedule = lifetime_capacity_schedule(prep.config.fast_memory,
                                          years=(0, 1, 2, 5, 8, 10))
    rows = []
    for years, fraction in schedule:
        usable = max(1, int(prep.capacity_pages * fraction))
        aged_fast = replace(prep.config.fast_memory,
                            capacity_bytes=usable * 4096)
        aged = replace(prep, config=replace(prep.config,
                                            fast_memory=aged_fast))
        res = evaluate_static(aged, PerformanceFocusedPlacement())
        rows.append([f"{years:.0f}y", f"{fraction * 100:.1f}%",
                     f"{res.ipc_vs_ddr:.2f}x", f"{res.ser_vs_ddr:.0f}x"])
    print_table(
        ["system age", "usable HBM", "IPC vs DDR-only", "SER vs DDR-only"],
        rows,
        title="milc: HMA benefit over a deployment lifetime "
              "(permanent-fault page retirement)",
    )
    print("Permanent faults retire stacked-DRAM pages over the years;")
    print("capacity planning for an HMA deployment has to budget for")
    print("the shrinking fast tier (the related-work [16] problem, on")
    print("top of this paper's transient-fault placement problem).")


if __name__ == "__main__":
    main()
