"""Modelling your own application and annotating its structures.

Shows the full user-facing workflow on a custom application instead of
a bundled benchmark:

1. describe the program's data structures as regions (size, hotness,
   write ratio, data lifetime),
2. generate a multi-core trace and profile hotness + AVF,
3. see which structures the annotation planner would pin into HBM, and
4. compare the annotation placement against the performance oracle.

    python examples/custom_workload.py
"""

import numpy as np

from repro.avf.page import profile_trace
from repro.config import scaled_config
from repro.core.annotations import plan_annotations, profile_structures
from repro.core.placement import PerformanceFocusedPlacement
from repro.dram.hma import HeterogeneousMemory
from repro.faults.ser import SerModel
from repro.harness.reporting import print_table
from repro.sim.engine import replay
from repro.trace.synthetic import (
    GeneratorParams,
    RegionSpec,
    TraceGenerator,
    interleave_cores,
)
from repro.trace.workloads import WorkloadTrace

# -- 1. Describe the application's structures -------------------------------
# A toy in-memory key-value store: a hash index that is read-heavy and
# long-lived (risky!), a log that is written then rarely read (safe),
# hot per-request scratch buffers (safe), and a cold value heap.
REGIONS = [
    RegionSpec(name="hash_index", footprint_share=0.25, hotness=4.0,
               write_frac=0.05, read_spread=0.7, lines_touched=32),
    RegionSpec(name="append_log", footprint_share=0.20, hotness=2.5,
               write_frac=0.85, read_spread=0.05, lines_touched=48),
    RegionSpec(name="request_scratch", footprint_share=0.05, hotness=9.0,
               write_frac=0.55, read_spread=0.08, lines_touched=64,
               churn=0.3),
    RegionSpec(name="value_heap", footprint_share=0.50, hotness=0.3,
               write_frac=0.10, read_spread=0.4, zipf_alpha=0.9,
               lines_touched=8),
]

NUM_CORES = 16
PAGES_PER_CORE = 120


def generate_workload() -> WorkloadTrace:
    cores = []
    next_page = 0
    for core in range(NUM_CORES):
        gen = TraceGenerator(
            REGIONS, PAGES_PER_CORE,
            GeneratorParams(target_accesses=15_000, mpki=12.0,
                            seed=42 + core),
            first_page=next_page,
        )
        cores.append(gen.generate())
        next_page += PAGES_PER_CORE
    trace, times = interleave_cores(cores)
    return WorkloadTrace(
        workload_name="kvstore",
        trace=trace,
        times=times,
        core_layouts=[c.layouts for c in cores],
        core_benchmarks=["kvstore"] * NUM_CORES,
        footprint_pages=next_page,
    )


def main() -> None:
    config = scaled_config(1 / 1024)
    wt = generate_workload()

    # -- 2. Profile --
    stats = profile_trace(wt.trace, wt.times,
                          footprint_pages=wt.footprint_pages)
    profiles = profile_structures(wt, stats)
    print_table(
        ["structure", "pages", "mean hotness", "mean AVF %"],
        [[p.name, p.pages, f"{p.mean_hotness:.0f}",
          f"{p.mean_avf * 100:.1f}"] for p in profiles],
        title="kvstore: structure profile (pooled over 16 processes)",
    )

    # -- 3. Plan annotations --
    capacity = config.fast_memory.num_pages
    plan = plan_annotations(wt, stats, capacity)
    print(f"annotations chosen ({plan.num_annotations}): "
          f"{', '.join(plan.structure_names)}")
    print(f"pinned pages: {len(plan.pinned_pages)} / {capacity} HBM frames")
    print()

    # -- 4. Compare against the performance oracle --
    ser_model = SerModel.for_system(config)
    rows = []
    for label, fast_pages, pinned in (
        ("perf-focused oracle",
         PerformanceFocusedPlacement().select_fast_pages(stats, capacity),
         False),
        ("annotation-pinned", plan.pinned_pages, True),
    ):
        hma = HeterogeneousMemory(config)
        hma.install_placement(fast_pages, stats.pages)
        if pinned:
            hma.pin(fast_pages)
        result = replay(config, hma, wt.trace, wt.times,
                        core_windows=[6] * NUM_CORES)
        ser = ser_model.ser_static(stats, fast_pages)
        rows.append([label, f"{result.ipc:.2f}",
                     f"{ser / ser_model.ser_ddr_only(stats):.0f}x"])
    print_table(["placement", "IPC", "SER vs DDR-only"], rows,
                title="kvstore: annotation placement vs performance oracle")
    print("Pinning the log and scratch buffers (hot, short-lived data)")
    print("captures the bandwidth win while the risky hash index stays")
    print("in the strongly-protected memory.")


if __name__ == "__main__":
    main()
