"""Dynamic migration study: HMA vs FC vs Cross Counters.

Runs the three migration mechanisms of paper Section 6 on a workload
whose hot set churns across intervals, reporting performance,
reliability, migration volume, and the tracking-hardware budget of
each mechanism.

    python examples/dynamic_migration.py [workload]
"""

import sys

from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.core.placement import BalancedPlacement
from repro.harness.reporting import print_table
from repro.sim.system import evaluate_migration, prepare_workload


def main(workload: str = "mix1") -> None:
    prep = prepare_workload(workload, accesses_per_core=20_000)
    total_pages = prep.workload_trace.footprint_pages
    fast_pages = prep.capacity_pages

    runs = [
        ("perf-focused (Meswani HMA)", PerformanceFocusedMigration(), None),
        ("reliability-aware FC", ReliabilityAwareFCMigration(),
         BalancedPlacement()),
        ("Cross Counters (MEA + FC)", CrossCountersMigration(),
         BalancedPlacement()),
    ]

    rows = []
    baseline_ser = None
    for label, mechanism, initial in runs:
        res = evaluate_migration(prep, mechanism, num_intervals=16,
                                 initial_policy=initial)
        if baseline_ser is None:
            baseline_ser = res.ser
        hw = mechanism.hardware_cost_bytes(total_pages, fast_pages)
        rows.append([
            label,
            f"{res.ipc_vs_ddr:.2f}x",
            f"{baseline_ser / res.ser:.2f}x" if res.ser else "-",
            res.migrations,
            f"{hw / 1024:.0f} KB",
        ])

    print_table(
        ["mechanism", "IPC vs DDR", "SER cut vs perf-migration",
         "migrations", "tracking HW"],
        rows,
        title=f"{workload}: dynamic migration mechanisms (16 intervals)",
    )
    print("FC buys the largest reliability improvement but needs two")
    print("full counters per page; Cross Counters keeps most of the")
    print("benefit with an order of magnitude less tracking hardware,")
    print("exactly the trade the paper's Section 6.4 argues for.")
    print()
    print("At the paper's full 17 GB scale the same mechanisms cost:")
    full_total = (17 << 30) // 4096
    full_fast = (1 << 30) // 4096
    for label, mechanism, _ in runs:
        hw = mechanism.hardware_cost_bytes(full_total, full_fast)
        print(f"  {label:28s} {hw / (1 << 20):6.2f} MB")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mix1")
