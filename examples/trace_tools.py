"""Trace tooling: persistence, SimPoint selection, cache filtering.

Demonstrates the trace-side substrates on their own:

1. generate a workload trace and save/load it (npz + text),
2. pick SimPoint-style representative intervals and show how well the
   weighted representatives estimate full-trace statistics, and
3. filter a trace through the cache hierarchy (the Moola role) and
   compare CPU-side vs memory-side request streams.

    python examples/trace_tools.py
"""

import os
import tempfile

from repro.cache.hierarchy import CacheHierarchy, filter_trace
from repro.config import CacheConfig, HierarchyConfig
from repro.harness.reporting import print_table
from repro.trace.io import load_npz, save_npz, save_text
from repro.trace.simpoints import estimate_with_simpoints, pick_simpoints
from repro.trace.workloads import Workload


def main() -> None:
    workload = Workload.spec("gcc")
    wt = workload.generate(scale=1 / 1024, accesses_per_core=10_000, seed=1)
    trace = wt.trace
    print(f"generated {len(trace)} memory requests over "
          f"{wt.footprint_pages} pages (gcc x16)")

    # -- 1. persistence --
    with tempfile.TemporaryDirectory() as tmp:
        npz_path = os.path.join(tmp, "gcc.npz")
        txt_path = os.path.join(tmp, "gcc.trace")
        save_npz(npz_path, trace, wt.times)
        save_text(txt_path, trace.slice(0, 1000))
        loaded, times = load_npz(npz_path)
        print(f"round-tripped {len(loaded)} requests via npz "
              f"({os.path.getsize(npz_path) // 1024} KB); text sample: "
              f"{os.path.getsize(txt_path) // 1024} KB for 1000 requests")
    print()

    # -- 2. SimPoints --
    simpoints, features = pick_simpoints(trace, interval_length=8_000, k=4)
    rows = [[sp.interval, sp.cluster, f"{sp.weight * 100:.0f}%"]
            for sp in simpoints]
    print_table(["interval", "cluster", "weight"], rows,
                title="SimPoint-style representative intervals")
    for label, stat in (
        ("write fraction", lambda t: float(t.is_write.mean())),
        ("MPKI", lambda t: t.mpki()),
    ):
        estimate = estimate_with_simpoints(trace, simpoints, features, stat)
        true_value = stat(trace)
        print(f"{label}: full trace {true_value:.4f}, "
              f"simpoint estimate {estimate:.4f}")
    print()

    # -- 3. cache filtering --
    hierarchy = CacheHierarchy(
        HierarchyConfig(
            l1i=CacheConfig(size_bytes=8 * 1024, associativity=2),
            l1d=CacheConfig(size_bytes=8 * 1024, associativity=4),
            l2=CacheConfig(size_bytes=512 * 1024, associativity=16),
        ),
        num_cores=16,
    )
    cpu_side = trace.slice(0, 40_000)
    memory_side = filter_trace(cpu_side, hierarchy)
    print_table(
        ["stream", "requests", "MPKI", "write fraction"],
        [
            ["CPU-side", len(cpu_side), f"{cpu_side.mpki():.1f}",
             f"{cpu_side.is_write.mean():.2f}"],
            ["memory-side", len(memory_side), f"{memory_side.mpki():.1f}",
             f"{memory_side.is_write.mean():.2f}"],
        ],
        title="Cache filtering (the Moola role)",
    )
    l2 = hierarchy.l2.stats
    print(f"L2: {l2.accesses} accesses, hit rate {l2.hit_rate * 100:.0f}%, "
          f"{l2.writebacks} write-backs became memory writes")
    print()
    print("Note: the generator emits *post-filter* main-memory traffic")
    print("(as the paper's Moola-filtered traces are), so this second")
    print("pass removes only residual short-term reuse while write-backs")
    print("convert some read-side fills into memory writes.")


if __name__ == "__main__":
    main()
