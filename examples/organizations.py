"""Memory-organization study: PoM placements vs a DRAM cache, and the
fast engine vs the event-driven reference.

Two questions the paper's Section 8 raises, answered on the same
workload:

1. *Cache or Part-of-Memory?*  A direct-mapped Alloy-style DRAM cache
   needs no profiling, but offers no placement control — and on
   capacity-limited workloads it thrashes.
2. *How much does controller reordering matter?*  The same
   placement replayed through the fast busy-until engine and through
   the closed-loop event-driven FR-FCFS engine.

    python examples/organizations.py [workload]
"""

import sys

from repro.core.placement import PerformanceFocusedPlacement, Wr2RatioPlacement
from repro.dram.dram_cache import DramCacheSystem
from repro.dram.hma import HeterogeneousMemory
from repro.harness.reporting import print_table
from repro.sim.engine import replay
from repro.sim.event_engine import replay_event_driven
from repro.sim.system import prepare_workload


def main(workload: str = "milc") -> None:
    prep = prepare_workload(workload, accesses_per_core=10_000)
    wt = prep.workload_trace

    # -- 1. organizations --
    rows = []
    for label, policy in (("PoM perf-focused", PerformanceFocusedPlacement()),
                          ("PoM Wr^2-ratio", Wr2RatioPlacement())):
        fast_pages = policy.select_fast_pages(prep.stats, prep.capacity_pages)
        hma = HeterogeneousMemory(prep.config)
        hma.install_placement(fast_pages, prep.stats.pages)
        result = replay(prep.config, hma, wt.trace, wt.times,
                        core_windows=wt.core_mlp)
        ser = prep.ser_model.ser_static(prep.stats, fast_pages)
        rows.append([label, f"{result.ipc / prep.ddr_baseline.ipc:.2f}x",
                     f"{ser / prep.ddr_baseline.ser:.0f}x", "-"])

    cache = DramCacheSystem(prep.config)
    result = replay(prep.config, cache, wt.trace, wt.times,
                    core_windows=wt.core_mlp)
    ser = cache.ser(prep.stats, prep.ser_model)
    rows.append(["DRAM cache (Alloy-style)",
                 f"{result.ipc / prep.ddr_baseline.ipc:.2f}x",
                 f"{ser / prep.ddr_baseline.ser:.0f}x",
                 f"{cache.stats.hit_rate * 100:.0f}% hits"])
    print_table(
        ["organization", "IPC vs DDR-only", "SER vs DDR-only", "note"],
        rows, title=f"{workload}: stacked-memory organizations",
    )
    print("A cache cannot be told to avoid vulnerable data — and at a")
    print("capacity-limited footprint it thrashes too (Sec. 8's case")
    print("for software-visible Part-of-Memory management).")
    print()

    # -- 2. engines --
    sample = wt.trace.slice(0, 30_000)
    rows = []
    for label, policy_pages in (
        ("DDR-only", []),
        ("PoM perf-focused",
         PerformanceFocusedPlacement().select_fast_pages(
             prep.stats, prep.capacity_pages)),
    ):
        line = [label]
        for engine in (replay, replay_event_driven):
            hma = HeterogeneousMemory(prep.config)
            hma.install_placement(policy_pages, prep.stats.pages)
            if engine is replay:
                res = engine(prep.config, hma, sample,
                             core_windows=wt.core_mlp)
            else:
                res = engine(prep.config, hma, sample,
                             core_windows=wt.core_mlp)
            line.append(f"{res.ipc:.2f}")
        rows.append(line)
    print_table(
        ["placement", "fast engine IPC", "event-driven IPC"],
        rows, title="Engine cross-check (30K-request sample)",
    )
    print("The fast busy-until model tracks the FR-FCFS reference's")
    print("ordering; the harness uses the fast engine and the event")
    print("engine bounds its error (see bench_ablation_engine).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "milc")
