"""Standalone reliability analysis with the FaultSim substrate.

Uses the Monte-Carlo fault simulator directly — no traces, no CPU
model — to study how ECC choice and raw FIT scaling set the
uncorrected-error rates that drive every SER number in the paper.

    python examples/fault_analysis.py
"""

from dataclasses import replace

from repro.config import ddr3_config, hbm_config
from repro.faults.faultsim import FaultSimulator, uncorrected_fit_per_page
from repro.faults.fit import JAGUAR_TRANSIENT, FaultComponent
from repro.harness.reporting import print_table


def main() -> None:
    # -- The field-study inputs --
    print_table(
        ["component", "transient FIT / device"],
        [[c.value, JAGUAR_TRANSIENT.rate(c)] for c in FaultComponent],
        title="Transient FIT rates (Jaguar-field-study shaped)",
    )

    # -- Monte-Carlo vs analytic for each memory --
    rows = []
    for memory in (hbm_config(), ddr3_config()):
        sim = FaultSimulator(memory, seed=7)
        mc = sim.run(trials=200_000)
        analytic = sim.analytic_uncorrected_per_mission()
        rows.append([
            f"{memory.name} ({memory.ecc})",
            f"{mc.corrected}",
            f"{mc.detected}",
            f"{mc.expected_uncorrected_per_mission:.2e}",
            f"{analytic:.2e}",
        ])
    print_table(
        ["memory", "corrected", "detected (DUE)",
         "uncorrected / rank-mission (MC)", "analytic"],
        rows,
        title="FaultSim: 200K rank-mission simulations per memory",
    )

    # -- The reliability gap that motivates the whole paper --
    fit_hbm = uncorrected_fit_per_page(hbm_config(), analytic=True)
    fit_ddr = uncorrected_fit_per_page(ddr3_config(), analytic=True)
    print(f"uncorrected FIT per 4 KB page:  HBM {fit_hbm:.2e}   "
          f"DDR {fit_ddr:.2e}   ratio {fit_hbm / fit_ddr:.0f}x")
    print()

    # -- Sensitivity: how the gap scales with die-stacked raw FIT --
    rows = []
    for multiplier in (1, 2, 4, 7, 10):
        hbm = replace(hbm_config(), fit_multiplier=float(multiplier))
        ratio = (uncorrected_fit_per_page(hbm, analytic=True) / fit_ddr)
        rows.append([multiplier, f"{ratio:.0f}x"])
    print_table(
        ["HBM raw-FIT multiplier", "per-page uncorrected-FIT ratio"],
        rows,
        title="Sensitivity: die-stacked raw FIT vs the reliability gap",
    )
    print("Even at equal raw FIT (multiplier 1) the SEC-DED vs ChipKill")
    print("asymmetry leaves a large uncorrected-error gap; density and")
    print("TSV failure modes widen it further — the paper's premise.")


if __name__ == "__main__":
    main()
