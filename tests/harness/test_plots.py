"""Unit tests for the ASCII plot helpers."""

import numpy as np
import pytest

from repro.harness.plots import ascii_bars, ascii_scatter, ascii_series


class TestScatter:
    def test_dimensions(self):
        out = ascii_scatter([0, 1], [0, 1], width=20, height=8)
        lines = out.splitlines()
        assert len(lines) == 10  # grid + rule + caption
        assert all(len(line) == 20 for line in lines[:8])

    def test_points_plotted(self):
        out = ascii_scatter([0, 1], [0, 1], width=20, height=8)
        assert out.count("*") == 2

    def test_corners(self):
        out = ascii_scatter([0, 1], [0, 1], width=10, height=5)
        lines = out.splitlines()
        assert lines[4][0] == "*"   # (0, 0): bottom-left
        assert lines[0][9] == "*"   # (1, 1): top-right

    def test_quadrant_lines(self):
        out = ascii_scatter([0, 1, 2], [0, 1, 2], width=21, height=9,
                            split_x=1.0, split_y=1.0)
        assert "|" in out
        assert "-" in out.splitlines()[4]

    def test_caption_has_ranges(self):
        out = ascii_scatter([1, 5], [2, 8], xlabel="hot", ylabel="avf")
        assert "hot" in out and "avf" in out
        assert "1" in out and "8" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_scatter([1], [1, 2])

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter([], [])

    def test_too_small(self):
        with pytest.raises(ValueError):
            ascii_scatter([0], [0], width=2, height=2)

    def test_constant_values_ok(self):
        out = ascii_scatter([3, 3, 3], [7, 7, 7])
        assert "*" in out


class TestBars:
    def test_longest_bar_is_peak(self):
        out = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_labels_aligned(self):
        out = ascii_bars(["x", "long"], [1, 1])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_suffix(self):
        out = ascii_bars(["a"], [2.5], unit="%")
        assert "2.5%" in out

    def test_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1, 2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [-1])

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_bars([], [])


class TestSeries:
    def test_plots_values(self):
        out = ascii_series([1, 2, 3, 2, 1], width=20, height=6)
        assert out.count("o") >= 3

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_series([])

    def test_label_in_caption(self):
        out = ascii_series([1, 2], label="IPC")
        assert "IPC" in out


class TestOnRealData:
    def test_fig4_scatter_renders(self, mix1_prep):
        stats = mix1_prep.stats
        hot = stats.hotness.astype(float)
        out = ascii_scatter(
            stats.avf, hot, width=60, height=20,
            xlabel="AVF", ylabel="hotness",
            split_x=float(stats.avf.mean()), split_y=float(hot.mean()),
        )
        assert out.count("*") > 50
        assert "|" in out
