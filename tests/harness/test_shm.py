"""Zero-copy shared-memory workload handoff (repro.harness.shm)."""

import pickle

import numpy as np
import pytest

from repro.config import knob_overrides
from repro.harness import shm as shm_module
from repro.harness.runner import parallel_map
from repro.harness.shm import (
    SharedPayload,
    release_payload,
    resolve_payload,
    share_payload,
    shared_handoff,
    shm_available,
)

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no multiprocessing.shared_memory")


def _payload_obj():
    """A nested graph shaped like a {name: PreparedWorkload} dict."""
    rng = np.random.default_rng(7)
    return {
        "mcf": {
            "address": rng.integers(0, 1 << 40, size=5000, dtype=np.int64),
            "is_write": rng.random(5000) < 0.3,
            "times": rng.random(5000),
            "tiny": np.arange(4, dtype=np.int64),  # stays in the pickle
            "label": "mcf",
            "scale": 1 / 1024,
        },
        "milc": {
            "hotness": rng.integers(0, 100, size=(64, 64), dtype=np.int64),
            "label": "milc",
        },
    }


def _assert_graph_equal(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert a[name].keys() == b[name].keys()
        for key, value in a[name].items():
            if isinstance(value, np.ndarray):
                got = b[name][key]
                assert got.dtype == value.dtype and got.shape == value.shape
                np.testing.assert_array_equal(got, value)
            else:
                assert b[name][key] == value


class TestRoundTrip:
    def test_handle_reconstructs_graph(self):
        obj = _payload_obj()
        item = share_payload(obj)
        try:
            assert isinstance(item, SharedPayload)
            _assert_graph_equal(obj, resolve_payload(item))
        finally:
            release_payload(item)

    def test_handle_survives_pickling(self):
        obj = _payload_obj()
        item = share_payload(obj)
        try:
            clone = pickle.loads(pickle.dumps(item))
            _assert_graph_equal(obj, clone.load())
        finally:
            release_payload(item)

    def test_handle_pickles_small(self):
        obj = _payload_obj()
        item = share_payload(obj)
        try:
            # The whole point: handle size is independent of array bytes.
            assert len(pickle.dumps(item)) < len(pickle.dumps(obj)) / 10
        finally:
            release_payload(item)

    def test_views_are_read_only(self):
        item = share_payload(_payload_obj())
        try:
            out = resolve_payload(item)
            with pytest.raises(ValueError):
                out["mcf"]["address"][0] = 1
        finally:
            release_payload(item)

    def test_non_contiguous_and_mixed_dtypes(self):
        base = np.arange(10000, dtype=np.float32).reshape(100, 100)
        obj = {"strided": base[:, ::2], "f64": np.linspace(0, 1, 1000)}
        item = share_payload(obj)
        try:
            out = resolve_payload(item)
            np.testing.assert_array_equal(out["strided"], base[:, ::2])
            np.testing.assert_array_equal(out["f64"], obj["f64"])
            assert out["strided"].dtype == np.float32
        finally:
            release_payload(item)

    def test_attach_path_without_inherited_registry(self):
        # Workers spawned before the segment existed (pool respawns)
        # take the attach-by-name path rather than the fork-inherited
        # mapping; simulate by hiding the ownership entry.
        obj = _payload_obj()
        item = share_payload(obj)
        entry = shm_module._owned.pop(item.segment)
        try:
            _assert_graph_equal(obj, item.load())
        finally:
            shm_module._owned[item.segment] = entry
            release_payload(item)


class TestFallbacks:
    def test_small_graph_passes_through(self):
        obj = {"tiny": np.arange(8, dtype=np.int64), "n": 3}
        assert share_payload(obj) is obj

    def test_knob_off_passes_through(self):
        obj = _payload_obj()
        with knob_overrides(shm_handoff=False):
            assert share_payload(obj) is obj

    def test_resolve_and_release_are_noops_on_plain_objects(self):
        obj = _payload_obj()
        assert resolve_payload(obj) is obj
        release_payload(obj)  # must not raise


class TestLifecycle:
    def test_release_unlinks_segment(self):
        item = share_payload(_payload_obj())
        name = item.segment
        release_payload(item)
        with pytest.raises(FileNotFoundError):
            shm_module._attach(name)

    def test_release_is_idempotent(self):
        item = share_payload(_payload_obj())
        release_payload(item)
        release_payload(item)  # second release: silent no-op

    def test_context_manager_releases_on_exit(self):
        with shared_handoff(_payload_obj()) as item:
            assert isinstance(item, SharedPayload)
            name = item.segment
        with pytest.raises(FileNotFoundError):
            shm_module._attach(name)

    def test_atexit_sweep_releases_owned_segments(self):
        item = share_payload(_payload_obj())
        shm_module._release_all_owned()
        with pytest.raises(FileNotFoundError):
            shm_module._attach(item.segment)


def _sum_job(item):
    key, payload = item
    data = resolve_payload(payload)
    return key, float(data["mcf"]["address"].sum())


class TestWorkerHandoff:
    def test_pool_workers_resolve_the_same_handle(self):
        obj = _payload_obj()
        expect = float(obj["mcf"]["address"].sum())
        with shared_handoff(obj) as payload:
            results = parallel_map(
                _sum_job, [(k, payload) for k in range(4)], jobs=2)
        assert results == [(k, expect) for k in range(4)]

    def test_segment_survives_worker_crash_and_respawn(self):
        from repro.harness.resilience import FaultPlan

        obj = _payload_obj()
        expect = float(obj["mcf"]["address"].sum())
        with shared_handoff(obj) as payload:
            name = payload.segment
            # SIGKILL one worker mid-job: the pool is respawned and the
            # re-dispatched job must re-attach the still-live segment.
            results = parallel_map(
                _sum_job, [(k, payload) for k in range(3)],
                jobs=2, retries=1, keys=["j0", "j1", "j2"],
                fault_plan=FaultPlan({"j1": ("kill",)}))
            assert results == [(k, expect) for k in range(3)]
        # ... and the parent still owns cleanup once the map is done.
        with pytest.raises(FileNotFoundError):
            shm_module._attach(name)

    def test_capacity_sweep_fans_out_through_shm(self):
        from repro.harness.sweeps import capacity_sweep

        res = capacity_sweep(workloads=("mcf",), fractions=(0.05, 0.5),
                             scale=1 / 2048, accesses_per_core=1500,
                             seed=4, jobs=2)
        assert len(res.rows) == 2
        assert res.rows[1][1] > res.rows[0][1]
        assert not shm_module._owned  # nothing leaked past the sweep
