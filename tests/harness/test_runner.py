"""Parallel runner and on-disk workload cache."""

import os
import pickle

import numpy as np
import pytest

from repro.config import scaled_config
from repro.harness.runner import (
    parallel_map,
    prefetch_workloads,
    prepare_workload_cached,
    resolve_cache_dir,
    resolve_jobs,
    run_experiments,
    workload_cache_key,
)
from repro.sim.system import prepare_workload

ACCESSES = 1_500


def _square(x):
    return x * x


def _boom(_x):
    raise RuntimeError("worker failure")


class TestCacheKey:
    def test_stable(self):
        a = workload_cache_key("mcf", 1 / 1024, 8000, 0)
        b = workload_cache_key("mcf", 1 / 1024, 8000, 0)
        assert a == b

    def test_sensitive_to_every_input(self):
        base = workload_cache_key("mcf", 1 / 1024, 8000, 0)
        assert workload_cache_key("milc", 1 / 1024, 8000, 0) != base
        assert workload_cache_key("mcf", 1 / 512, 8000, 0) != base
        assert workload_cache_key("mcf", 1 / 1024, 4000, 0) != base
        assert workload_cache_key("mcf", 1 / 1024, 8000, 1) != base

    def test_sensitive_to_config(self):
        base = workload_cache_key("mcf", 1 / 1024, 8000, 0)
        keyed = workload_cache_key("mcf", 1 / 1024, 8000, 0,
                                   config=scaled_config(1 / 1024))
        assert keyed != base


class TestDiskCache:
    def test_round_trip(self, tmp_path):
        cache_dir = str(tmp_path)
        miss = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                       seed=1, cache_dir=cache_dir)
        entries = os.listdir(cache_dir)
        assert len(entries) == 1 and entries[0].startswith("prep-")
        hit = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                      seed=1, cache_dir=cache_dir)
        fresh = prepare_workload("mcf", accesses_per_core=ACCESSES, seed=1)
        for prep in (miss, hit):
            assert np.array_equal(prep.workload_trace.trace.address,
                                  fresh.workload_trace.trace.address)
            assert prep.ddr_baseline.ipc == fresh.ddr_baseline.ipc
            assert prep.name == fresh.name

    def test_corrupt_entry_quarantined_and_regenerated(self, tmp_path):
        from repro.harness.resilience import load_entry

        cache_dir = str(tmp_path)
        prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                seed=2, cache_dir=cache_dir)
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        prep = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                       seed=2, cache_dir=cache_dir)
        assert prep.ddr_baseline.ipc > 0
        # Damaged entry quarantined, fresh checksummed entry written.
        quarantined = os.listdir(os.path.join(cache_dir, "corrupt"))
        assert quarantined == [os.path.basename(path)]
        assert isinstance(load_entry(path), type(prep))

    def test_stale_payload_type_quarantined(self, tmp_path):
        from repro.harness.resilience import store_entry

        cache_dir = str(tmp_path)
        prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                seed=5, cache_dir=cache_dir)
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        store_entry(path, {"not": "a PreparedWorkload"})  # valid container
        prep = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                       seed=5, cache_dir=cache_dir)
        assert prep.ddr_baseline.ipc > 0
        assert os.listdir(os.path.join(cache_dir, "corrupt"))

    def test_no_cache_dir_is_passthrough(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        prep = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                       seed=3)
        assert prep.ddr_baseline.ipc > 0
        assert not os.listdir(tmp_path)

    def test_env_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert resolve_cache_dir(None) == str(tmp_path)
        prepare_workload_cached("mcf", accesses_per_core=ACCESSES, seed=4)
        assert os.listdir(tmp_path)

    def test_load_pickle_deletes_malformed_file(self, tmp_path):
        from repro.harness.runner import _load_pickle

        path = str(tmp_path / "bad.pkl")
        # A pickle stream with a bogus huge length prefix raises
        # ValueError/MemoryError territory rather than UnpicklingError.
        with open(path, "wb") as fh:
            fh.write(pickle.dumps([1, 2, 3])[:-1] + b"\xff\xff")
        assert _load_pickle(path) is None
        assert not os.path.exists(path)  # deleted, not left to re-fail
        assert _load_pickle(path) is None  # missing file stays a miss

    def test_load_pickle_roundtrip(self, tmp_path):
        from repro.harness.runner import _load_pickle

        path = str(tmp_path / "ok.pkl")
        with open(path, "wb") as fh:
            pickle.dump({"x": 1}, fh)
        assert _load_pickle(path) == {"x": 1}
        assert os.path.exists(path)


def _race_one(cache_dir, barrier, queue):
    barrier.wait(timeout=30)  # maximise overlap between the two writers
    prep = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                   seed=9, cache_dir=cache_dir)
    queue.put(prep.ddr_baseline.ipc)


class TestConcurrentWriters:
    def test_two_processes_racing_one_key(self, tmp_path):
        """os.replace atomicity: both racers succeed, one valid entry."""
        import multiprocessing as mp

        from repro.harness.resilience import load_entry
        from repro.sim.system import PreparedWorkload

        context = mp.get_context("fork")
        barrier = context.Barrier(2)
        queue = context.Queue()
        procs = [context.Process(target=_race_one,
                                 args=(str(tmp_path), barrier, queue))
                 for _ in range(2)]
        for proc in procs:
            proc.start()
        ipcs = [queue.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        assert ipcs[0] == ipcs[1] > 0
        entries = [f for f in os.listdir(tmp_path)
                   if f.startswith("prep-") and f.endswith(".pkl")]
        assert len(entries) == 1
        assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        entry = load_entry(os.path.join(str(tmp_path), entries[0]))
        assert isinstance(entry, PreparedWorkload)
        assert entry.ddr_baseline.ipc == ipcs[0]


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, range(10), jobs=1) == [
            x * x for x in range(10)]

    def test_parallel_preserves_order(self):
        assert parallel_map(_square, range(20), jobs=4) == [
            x * x for x in range(20)]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError):
            parallel_map(_boom, range(4), jobs=2)
        with pytest.raises(RuntimeError):
            parallel_map(_boom, range(4), jobs=1)

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(None) == 7
        assert resolve_jobs(2) == 2  # explicit argument wins


class TestPrefetch:
    def test_matches_serial_preparation(self, tmp_path):
        names = ("mcf", "mix1")
        preps = prefetch_workloads(names, accesses_per_core=ACCESSES,
                                   seed=0, cache_dir=str(tmp_path), jobs=2)
        assert list(preps) == list(names)
        for name in names:
            fresh = prepare_workload(name, accesses_per_core=ACCESSES, seed=0)
            assert preps[name].ddr_baseline.ipc == fresh.ddr_baseline.ipc
        assert len(os.listdir(tmp_path)) == len(names)


class TestWorkloadCacheIntegration:
    def test_workload_cache_uses_disk(self, tmp_path):
        from repro.harness.experiments import WorkloadCache

        cache = WorkloadCache(accesses_per_core=ACCESSES,
                              cache_dir=str(tmp_path))
        prep = cache.get("mcf")
        assert os.listdir(tmp_path)
        assert cache.get("mcf") is prep  # in-memory layer still first
        warmed = WorkloadCache(accesses_per_core=ACCESSES,
                               cache_dir=str(tmp_path))
        assert warmed.get("mcf").ddr_baseline.ipc == prep.ddr_baseline.ipc

    def test_prefetch_method(self, tmp_path):
        from repro.harness.experiments import WorkloadCache

        cache = WorkloadCache(accesses_per_core=ACCESSES,
                              cache_dir=str(tmp_path), jobs=2)
        assert cache.prefetch(("mcf", "milc")) is cache
        assert cache.get("mcf").ddr_baseline.ipc > 0


class TestReplicateJobs:
    def test_parallel_matches_serial(self):
        from repro.harness.replication import replicate

        serial = replicate("mcf", _metric, seeds=(0, 1, 2),
                           accesses_per_core=ACCESSES, jobs=1)
        fanned = replicate("mcf", _metric, seeds=(0, 1, 2),
                           accesses_per_core=ACCESSES, jobs=3)
        assert serial.values == fanned.values


def _metric(prep):
    return prep.ddr_baseline.ipc


def test_run_experiments_fan_out(tmp_path):
    results = run_experiments(["table1", "table2"],
                              accesses_per_core=ACCESSES,
                              cache_dir=str(tmp_path), jobs=2)
    assert [name for name, _ in results] == ["table1", "table2"]
    for _name, figure in results:
        assert figure.rows
