"""Unit tests for the seed-replication helper."""

import pytest

from repro.harness.replication import Replication, replicate


class TestReplication:
    def test_statistics(self):
        rep = Replication(metric="x", values=(1.0, 2.0, 3.0))
        assert rep.mean == 2.0
        assert rep.std == pytest.approx(1.0)
        assert rep.n == 3
        lo, hi = rep.confidence_interval()
        assert lo < 2.0 < hi

    def test_single_value(self):
        rep = Replication(metric="x", values=(5.0,))
        assert rep.std == 0.0
        assert rep.confidence_interval() == (5.0, 5.0)

    def test_cv(self):
        rep = Replication(metric="x", values=(2.0, 2.0))
        assert rep.cv == 0.0

    def test_str(self):
        rep = Replication(metric="ipc", values=(1.0, 1.2))
        assert "ipc" in str(rep)
        assert "n=2" in str(rep)


class TestReplicate:
    def test_runs_over_seeds(self):
        rep = replicate(
            "astar",
            metric=lambda prep: prep.stats.mean_avf(),
            metric_name="mean AVF",
            seeds=(0, 1),
            scale=1 / 2048,
            accesses_per_core=1000,
        )
        assert rep.n == 2
        assert all(v > 0 for v in rep.values)

    def test_seeds_give_different_draws(self):
        rep = replicate(
            "mcf",
            metric=lambda prep: float(prep.stats.hotness.max()),
            seeds=(0, 1, 2),
            scale=1 / 2048,
            accesses_per_core=1000,
        )
        assert len(set(rep.values)) > 1

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate("astar", metric=lambda p: 0.0, seeds=())
