"""Error paths of the export pipeline and the bench-floor loader."""

import json
import os

import pytest

from repro.harness.cli import main
from repro.harness.experiments import FigureResult
from repro.harness.export import export_all, to_csv, to_json
from repro.obs.report import load_bench_floors


def _figure() -> FigureResult:
    return FigureResult(
        figure="figX", description="test figure",
        headers=["workload", "ipc"], rows=[["astar", 1.25]],
        summary={"gmean": 1.25}, paper={"gmean": 1.3})


class TestExportAll:
    def test_unknown_format_is_rejected_before_any_work(self, tmp_path):
        target = tmp_path / "out"
        with pytest.raises(ValueError, match="json.*csv|csv.*json"):
            export_all(target, fmt="xml")
        assert not target.exists()

    def test_unknown_experiment_is_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="no-such-figure"):
            export_all(tmp_path, experiments=["no-such-figure"])
        assert os.listdir(tmp_path) == []


class TestWriters:
    def test_json_round_trips_every_field(self, tmp_path):
        path = tmp_path / "fig.json"
        doc = to_json(_figure(), path)
        assert json.loads(path.read_text()) == doc
        assert doc["summary"] == {"gmean": 1.25}
        assert doc["paper"] == {"gmean": 1.3}

    def test_csv_has_header_and_rows(self, tmp_path):
        path = tmp_path / "fig.csv"
        to_csv(_figure(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "workload,ipc"
        assert lines[1] == "astar,1.25"

    def test_writers_propagate_unwritable_paths(self, tmp_path):
        missing = tmp_path / "no-such-dir" / "fig.json"
        with pytest.raises(OSError):
            to_json(_figure(), missing)
        with pytest.raises(OSError):
            to_csv(_figure(), tmp_path / "no-such-dir" / "fig.csv")


class TestCliErrorExits:
    def test_export_unknown_experiment_exits_2(self, tmp_path, capsys):
        rc = main(["export", str(tmp_path / "out"),
                   "--experiments", "no-such-figure",
                   "--run-dir", str(tmp_path / "run")])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err
        assert not (tmp_path / "out").exists()

    def test_report_missing_run_exits_2(self, tmp_path, capsys):
        rc = main(["report", "fig12-1", "--obs-dir", str(tmp_path)])
        assert rc == 2
        assert "no run" in capsys.readouterr().err


class TestBenchFloors:
    def test_missing_root_is_empty_not_an_error(self, tmp_path):
        assert load_bench_floors(str(tmp_path / "absent")) == {}

    def test_malformed_bench_json_is_skipped(self, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        (tmp_path / "BENCH_ok.json").write_text(
            json.dumps({"replay": {"throughput": 123.0}}))
        floors = load_bench_floors(str(tmp_path))
        assert floors == {"bench.ok.replay.throughput": 123.0}

    def test_non_bench_files_are_ignored(self, tmp_path):
        (tmp_path / "notes.json").write_text(json.dumps({"x": 1}))
        assert load_bench_floors(str(tmp_path)) == {}
