"""Unit tests for the sensitivity-sweep extensions."""

import pytest

from repro.harness.sweeps import (
    capacity_sweep,
    fit_multiplier_sweep,
    mlp_sensitivity,
)

SMALL = dict(scale=1 / 2048, accesses_per_core=1500, seed=4)


class TestCapacitySweep:
    def test_ipc_grows_with_capacity(self):
        res = capacity_sweep(workloads=("mcf",), fractions=(0.05, 0.5),
                             **SMALL)
        assert res.rows[1][1] > res.rows[0][1]

    def test_row_per_fraction(self):
        res = capacity_sweep(workloads=("mcf",), fractions=(0.1, 0.2, 0.3),
                             **SMALL)
        assert len(res.rows) == 3


class TestFitMultiplierSweep:
    def test_ser_scales_linearly_with_multiplier(self):
        res = fit_multiplier_sweep(workload="mcf",
                                   multipliers=(1.0, 4.0), **SMALL)
        ser_1 = res.rows[0][2]
        ser_4 = res.rows[1][2]
        assert ser_4 == pytest.approx(4 * ser_1, rel=0.1)

    def test_wr2_always_below_perf(self):
        res = fit_multiplier_sweep(workload="mcf",
                                   multipliers=(1.0, 7.0), **SMALL)
        for row in res.rows:
            assert row[3] < row[2]


class TestMlpSensitivity:
    def test_speedup_grows_with_window(self):
        res = mlp_sensitivity(workload="libquantum", windows=(1, 8),
                              **SMALL)
        assert res.rows[1][3] >= res.rows[0][3]

    def test_ipc_monotone_in_window(self):
        res = mlp_sensitivity(workload="libquantum", windows=(1, 4, 16),
                              **SMALL)
        ipcs = [row[2] for row in res.rows]
        assert ipcs == sorted(ipcs)
