"""Unit tests for figure export (CSV / JSON)."""

import csv
import json

import pytest

from repro.harness.experiments import FigureResult, WorkloadCache
from repro.harness.export import export_all, to_csv, to_json


@pytest.fixture
def result():
    return FigureResult(
        figure="Figure X", description="demo",
        headers=["workload", "ipc"],
        rows=[["astar", 1.5], ["mcf", 2.0]],
        summary={"mean": 1.75}, paper={"mean": 1.6},
    )


class TestCsv:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "fig.csv"
        to_csv(result, path)
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["workload", "ipc"]
        assert rows[1] == ["astar", "1.5"]
        assert len(rows) == 3


class TestJson:
    def test_document(self, result):
        doc = to_json(result)
        assert doc["figure"] == "Figure X"
        assert doc["summary"]["mean"] == 1.75
        assert doc["paper"]["mean"] == 1.6

    def test_file(self, result, tmp_path):
        path = tmp_path / "fig.json"
        to_json(result, path)
        loaded = json.loads(path.read_text())
        assert loaded["rows"][1][0] == "mcf"


class TestExportAll:
    def test_writes_selected_experiments(self, tmp_path):
        cache = WorkloadCache(accesses_per_core=800, scale=1 / 4096, seed=1)
        written = export_all(tmp_path, cache=cache,
                             experiments=["table1", "fig03"])
        assert len(written) == 2
        names = {p.split("/")[-1] for p in written}
        assert names == {"table1.json", "fig03.json"}
        doc = json.loads((tmp_path / "fig03.json").read_text())
        assert doc["figure"] == "Figure 3"

    def test_csv_format(self, tmp_path):
        written = export_all(tmp_path, experiments=["table2"], fmt="csv")
        assert written[0].endswith("table2.csv")

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(KeyError):
            export_all(tmp_path, experiments=["fig99"])

    def test_bad_format(self, tmp_path):
        with pytest.raises(ValueError):
            export_all(tmp_path, experiments=["table1"], fmt="xml")
