"""Unit tests for reporting helpers."""

import pytest

from repro.harness.reporting import format_cell, format_table, gmean


class TestGmean:
    def test_basic(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert gmean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert gmean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])


class TestFormatCell:
    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_float_trimmed(self):
        assert format_cell(1.5) == "1.5"
        assert format_cell(0.125) == "0.125"

    def test_large_float_compact(self):
        assert format_cell(123456.0) == "1.23e+05"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows padded to same width per column.
        assert lines[0].index("bb") == lines[2].index("2")

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out
