"""Unit tests for reporting helpers."""

import math

import pytest

from repro.harness.reporting import (
    display_width,
    format_cell,
    format_table,
    gmean,
)


class TestGmean:
    def test_basic(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert gmean([3.0]) == pytest.approx(3.0)

    def test_empty(self):
        assert gmean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])


class TestFormatCell:
    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_float_trimmed(self):
        assert format_cell(1.5) == "1.5"
        assert format_cell(0.125) == "0.125"

    def test_large_float_compact(self):
        assert format_cell(123456.0) == "1.23e+05"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        # All rows padded to same width per column.
        assert lines[0].index("bb") == lines[2].index("2")

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["x", "y"], [])
        assert "x" in out

    def test_short_rows_padded(self):
        out = format_table(["a", "b", "c"], [[1], [2, 3, 4]])
        lines = out.splitlines()
        assert lines[2].rstrip() == "1"
        assert lines[3].split() == ["2", "3", "4"]

    def test_extra_cells_beyond_headers_kept(self):
        out = format_table(["a"], [[1, 2, 3]])
        assert "3" in out.splitlines()[-1]

    def test_nan_and_inf_render(self):
        out = format_table(["v"], [[math.nan], [math.inf], [-math.inf]])
        lines = out.splitlines()
        assert lines[2].strip() == "nan"
        assert lines[3].strip() == "inf"
        assert lines[4].strip() == "-inf"

    def test_wide_unicode_alignment(self):
        # CJK names occupy two terminal cells per char; the next
        # column must still start at the same display offset.
        out = format_table(["name", "v"], [["漢字", 1], ["ascii", 22]])
        lines = out.splitlines()
        values = []
        for line in lines[2:]:
            cells = line.split()
            values.append(
                display_width(line[: line.rindex(cells[-1])]))
        assert values[0] == values[1]


class TestDisplayWidth:
    def test_ascii(self):
        assert display_width("abc") == 3

    def test_cjk_counts_double(self):
        assert display_width("漢字") == 4
        assert display_width("x漢") == 3

    def test_empty(self):
        assert display_width("") == 0
