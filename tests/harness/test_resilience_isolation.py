"""Single-job isolation and seeded retry-backoff jitter.

These two resilient_map behaviours back the placement service: each
committed session is one job dispatched with ``isolate=True`` (so a
crash or hang hits only that session), and the backoff jitter is drawn
from a stream seeded by the unified ``seed`` knob so a chaos run
replays with identical timing.
"""

import os

from repro.config import knob_overrides
from repro.harness.resilience import (
    FaultPlan,
    _backoff_delay,
    _jitter_rng,
    resilient_map,
)


def _double(x):
    return 2 * x


def _my_pid(_x):
    return os.getpid()


class TestIsolate:
    def test_single_job_runs_out_of_process(self):
        report = resilient_map(_my_pid, [0], jobs=1, isolate=True)
        assert report.outcomes[0].succeeded
        assert report.outcomes[0].result != os.getpid()

    def test_single_job_default_stays_in_process(self):
        report = resilient_map(_my_pid, [0], jobs=1)
        assert report.outcomes[0].result == os.getpid()

    def test_isolated_job_survives_a_kill(self):
        plan = FaultPlan({"0": ["kill"]})
        report = resilient_map(_double, [21], jobs=1, retries=1,
                               backoff=0, fault_plan=plan, isolate=True)
        outcome = report.outcomes[0]
        assert outcome.succeeded and outcome.result == 42
        assert outcome.attempts == 2
        assert report.pool_respawns >= 1


class TestSeededJitter:
    def test_stream_follows_the_seed_knob(self):
        with knob_overrides(seed=7):
            a = [_jitter_rng().random() for _ in range(3)]
            b = [_jitter_rng().random() for _ in range(3)]
        with knob_overrides(seed=8):
            c = [_jitter_rng().random() for _ in range(3)]
        assert a == b      # same seed -> identical jitter stream
        assert a != c      # different seed -> different stream

    def test_backoff_is_jittered_and_bounded(self):
        with knob_overrides(seed=3):
            rng = _jitter_rng()
        delays = [_backoff_delay(0.1, attempts, rng)
                  for attempts in (1, 2, 3)]
        # Exponential base with up to +25% jitter, never negative.
        assert 0.1 <= delays[0] <= 0.125
        assert 0.2 <= delays[1] <= 0.25
        assert 0.4 <= delays[2] <= 0.5
        assert _backoff_delay(0, 5, rng) == 0.0

    def test_replayed_delays_are_identical(self):
        with knob_overrides(seed=11):
            first = [_backoff_delay(0.5, n, _jitter_rng())
                     for n in (1, 2, 3)]
            again = [_backoff_delay(0.5, n, _jitter_rng())
                     for n in (1, 2, 3)]
        assert first == again
