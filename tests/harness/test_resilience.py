"""Chaos suite: every injected fault ends in correct results or a
clean, structured partial-result report — never an unhandled traceback.

Faults exercised (via the :class:`FaultPlan` hook and direct file
surgery): worker SIGKILL mid-job, jobs hung past their timeout,
in-job exceptions, truncated and bit-flipped cache pickles, damaged
resume journals, and kill/resume of checkpointed runs.  C-kernel
compile failure lives in ``tests/sim/test_ckernel_fallback.py``.
"""

import json
import os

import pytest

from repro.harness import replication, sweeps
from repro.harness.resilience import (
    CACHED,
    CacheIntegrityError,
    FaultPlan,
    PartialResultError,
    RunManifest,
    checkpointed_map,
    dumps_entry,
    load_entry,
    loads_entry,
    resilient_map,
    resolve_job_timeout,
    resolve_retries,
    run_key,
    store_entry,
)
from repro.harness.runner import parallel_map, prepare_workload_cached
from repro.sim.system import prepare_workload

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

ACCESSES = 600


def _double(x):
    return 2 * x


def _metric(prep):
    return prep.ddr_baseline.ipc


# ---------------------------------------------------------------------------
# Knob resolution
# ---------------------------------------------------------------------------

class TestKnobs:
    def test_job_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOB_TIMEOUT", raising=False)
        assert resolve_job_timeout(None) is None
        assert resolve_job_timeout(2.5) == 2.5
        assert resolve_job_timeout(0) is None  # non-positive disables
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "7.5")
        assert resolve_job_timeout(None) == 7.5
        assert resolve_job_timeout(1.0) == 1.0  # explicit wins

    def test_retries(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert resolve_retries(None) == 0
        assert resolve_retries(3) == 3
        monkeypatch.setenv("REPRO_RETRIES", "4")
        assert resolve_retries(None) == 4
        assert resolve_retries(1) == 1


# ---------------------------------------------------------------------------
# Worker crashes (SIGKILL) and in-job failures
# ---------------------------------------------------------------------------

class TestWorkerCrash:
    def test_kill_once_recovers_bit_exact(self):
        plan = FaultPlan({"2": ["kill"]})
        report = resilient_map(_double, range(5), jobs=2, retries=2,
                               backoff=0, fault_plan=plan)
        assert report.results == [0, 2, 4, 6, 8]
        assert report.outcome("2").status == "retried"
        assert report.pool_respawns >= 1
        assert report.ok

    def test_kill_every_attempt_is_structured_partial(self):
        plan = FaultPlan({"1": ["kill"] * 8})
        report = resilient_map(_double, range(3), jobs=2, retries=1,
                               backoff=0, fault_plan=plan)
        poisoned = report.outcome("1")
        assert poisoned.status == "failed"
        assert poisoned.result is None
        assert "died" in poisoned.error
        # Completed siblings survive the crash storm.
        assert report.results[0] == 0 and report.results[2] == 4
        assert not report.ok

    def test_parallel_map_raises_partial_result_error(self):
        plan = FaultPlan({"1": ["kill"] * 8})
        with pytest.raises(PartialResultError) as err:
            parallel_map(_double, range(3), jobs=2, retries=1, backoff=0,
                         fault_plan=plan)
        assert isinstance(err.value, RuntimeError)  # legacy contract
        assert "1 of 3 jobs failed" in str(err.value)
        assert err.value.report.results[2] == 4  # salvaged result

    def test_innocents_survive_repeated_poison_crashes(self):
        # Jobs in flight with a crashing sibling are charged once for
        # the mixed generation, then quarantined reruns settle them —
        # so even retries=1 innocents must all survive, every time.
        plan = FaultPlan({"3": ["kill"] * 8})
        report = resilient_map(_double, range(8), jobs=4, retries=1,
                               backoff=0, fault_plan=plan)
        assert [o.key for o in report.failed] == ["3"]
        assert [r for i, r in enumerate(report.results) if i != 3] == [
            2 * i for i in range(8) if i != 3]

    def test_injected_exception_retries(self):
        plan = FaultPlan({"0": ["fail", "fail"]})
        report = resilient_map(_double, range(2), jobs=2, retries=2,
                               backoff=0, fault_plan=plan)
        assert report.results == [0, 2]
        outcome = report.outcome("0")
        assert outcome.status == "retried" and outcome.attempts == 3

    def test_serial_mode_converts_kill_to_failure(self):
        plan = FaultPlan({"0": ["kill"], "1": ["hang:30"]})
        report = resilient_map(_double, range(2), jobs=1, retries=0,
                               backoff=0, fault_plan=plan)
        assert [o.status for o in report.outcomes] == ["failed", "failed"]
        assert all("injected" in o.error for o in report.outcomes)


# ---------------------------------------------------------------------------
# Hangs and timeouts
# ---------------------------------------------------------------------------

class TestTimeout:
    def test_hung_job_times_out_then_retries(self):
        plan = FaultPlan({"0": ["hang:60"]})
        report = resilient_map(_double, range(3), jobs=2, timeout=0.8,
                               retries=1, backoff=0, fault_plan=plan)
        assert report.results == [0, 2, 4]
        assert report.outcome("0").status == "retried"

    def test_hang_exhausting_retries_reports_timeout(self):
        plan = FaultPlan({"0": ["hang:60", "hang:60"]})
        report = resilient_map(_double, range(2), jobs=2, timeout=0.5,
                               retries=1, backoff=0, fault_plan=plan)
        outcome = report.outcome("0")
        assert outcome.status == "timeout"
        assert "timed out" in outcome.error
        assert report.outcome("1").result == 2  # innocent sibling intact


# ---------------------------------------------------------------------------
# Checksummed entries: truncation, bit flips, quarantine
# ---------------------------------------------------------------------------

class TestEntryIntegrity:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "entry.pkl")
        store_entry(path, {"rows": [1, 2.5, "x"]})
        assert load_entry(path) == {"rows": [1, 2.5, "x"]}

    def test_truncation_detected(self):
        blob = dumps_entry(list(range(100)))
        with pytest.raises(CacheIntegrityError, match="truncated"):
            loads_entry(blob[:len(blob) // 2])

    @pytest.mark.parametrize("offset", [5, -7])
    def test_bit_flip_detected(self, offset):
        blob = bytearray(dumps_entry(list(range(100))))
        blob[offset] ^= 0x10
        with pytest.raises(CacheIntegrityError):
            loads_entry(bytes(blob))

    def test_load_quarantines_damage(self, tmp_path):
        path = str(tmp_path / "entry.pkl")
        store_entry(path, [1, 2, 3])
        blob = bytearray(open(path, "rb").read())
        blob[-2] ^= 0x40
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        with pytest.raises(CacheIntegrityError):
            load_entry(path)
        assert not os.path.exists(path)
        assert os.listdir(tmp_path / "corrupt") == ["entry.pkl"]


class TestWorkloadCacheChaos:
    """Truncated / bit-flipped prep pickles recompute transparently."""

    def _poisoned_reload(self, tmp_path, damage):
        cache_dir = str(tmp_path)
        prepare_workload_cached("mcf", accesses_per_core=ACCESSES, seed=7,
                                cache_dir=cache_dir)
        (path,) = [os.path.join(cache_dir, f) for f in os.listdir(cache_dir)]
        blob = bytearray(open(path, "rb").read())
        with open(path, "wb") as fh:
            fh.write(damage(blob))
        prep = prepare_workload_cached("mcf", accesses_per_core=ACCESSES,
                                       seed=7, cache_dir=cache_dir)
        fresh = prepare_workload("mcf", accesses_per_core=ACCESSES, seed=7)
        assert prep.ddr_baseline.ipc == fresh.ddr_baseline.ipc
        import numpy as np

        assert np.array_equal(prep.workload_trace.trace.address,
                              fresh.workload_trace.trace.address)
        assert os.listdir(os.path.join(cache_dir, "corrupt"))

    def test_truncated_entry(self, tmp_path):
        self._poisoned_reload(tmp_path, lambda b: bytes(b[:len(b) // 3]))

    def test_bit_flipped_entry(self, tmp_path):
        def flip(blob):
            blob[len(blob) // 2] ^= 0x01
            return bytes(blob)

        self._poisoned_reload(tmp_path, flip)


# ---------------------------------------------------------------------------
# Run manifest: journal robustness
# ---------------------------------------------------------------------------

class TestRunManifest:
    def test_truncated_tail_line_is_skipped(self, tmp_path):
        d = str(tmp_path)
        manifest = RunManifest(d, run_key="k")
        manifest.record_value("a", 1.0)
        manifest.record_value("b", 2.0)
        with open(manifest.path, "a") as fh:
            fh.write('{"type": "done", "key": "c", "val')  # mid-write kill
        resumed = RunManifest(d, run_key="k", resume=True)
        assert resumed.completed_keys() == {"a", "b"}
        assert resumed.result("b") == 2.0

    def test_parameter_change_invalidates(self, tmp_path):
        d = str(tmp_path)
        RunManifest(d, run_key="k1").record_value("a", 1.0)
        resumed = RunManifest(d, run_key="k2", resume=True)
        assert not resumed.completed_keys()
        assert os.path.exists(os.path.join(d, "manifest.jsonl.old"))

    def test_resume_without_journal_starts_clean(self, tmp_path):
        resumed = RunManifest(str(tmp_path / "new"), run_key="k",
                              resume=True)
        assert not resumed.completed_keys()
        resumed.record_value("a", 1.0)
        again = RunManifest(str(tmp_path / "new"), run_key="k", resume=True)
        assert again.completed_keys() == {"a"}

    def test_run_key_stable_and_sensitive(self):
        assert run_key(a=1, b="x") == run_key(b="x", a=1)
        assert run_key(a=1) != run_key(a=2)

    def test_corrupt_result_file_reruns_job(self, tmp_path):
        d = str(tmp_path)
        manifest = RunManifest(d, run_key="k")
        report = checkpointed_map(_double, [5], keys=["j"],
                                  manifest=manifest, store="pickle", jobs=1)
        assert report.results == [10]
        (result_file,) = os.listdir(os.path.join(d, "results"))
        path = os.path.join(d, "results", result_file)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        resumed = RunManifest(d, run_key="k", resume=True)
        report = checkpointed_map(_double, [5], keys=["j"],
                                  manifest=resumed, store="pickle", jobs=1)
        assert report.results == [10]
        assert report.outcome("j").status == "ok"  # re-executed, not cached


# ---------------------------------------------------------------------------
# Checkpoint / resume through the public harness entry points
# ---------------------------------------------------------------------------

class TestCheckpointedMap:
    def test_resume_skips_finished_work(self, tmp_path):
        d = str(tmp_path)
        calls = []

        def traced(x):
            calls.append(x)
            return 2 * x

        manifest = RunManifest(d, run_key="k")
        checkpointed_map(traced, [1, 2], keys=["a", "b"], manifest=manifest,
                         store="json", jobs=1)
        assert calls == [1, 2]
        resumed = RunManifest(d, run_key="k", resume=True)
        report = checkpointed_map(traced, [1, 2, 3], keys=["a", "b", "c"],
                                  manifest=resumed, store="json", jobs=1)
        assert calls == [1, 2, 3]  # only the new key executed
        assert report.results == [2, 4, 6]
        assert [o.status for o in report.outcomes] == ["cached", "cached",
                                                       "ok"]

    def test_failed_jobs_are_not_journaled(self, tmp_path):
        d = str(tmp_path)
        manifest = RunManifest(d, run_key="k")
        report = checkpointed_map(
            _double, [1, 2], keys=["a", "b"], manifest=manifest,
            store="json", jobs=1, retries=0,
            fault_plan=FaultPlan({"b": ["fail"]}))
        assert report.outcome("b").status == "failed"
        assert manifest.completed_keys() == {"a"}
        # The journal audit trail names the failure.
        outcomes = [json.loads(line)
                    for line in open(manifest.path)
                    if '"outcome"' in line]
        assert {o["key"]: o["status"] for o in outcomes} == {
            "a": "ok", "b": "failed"}


class TestReplicateResume:
    def test_interrupted_replication_resumes_identically(self, tmp_path,
                                                         monkeypatch):
        d = str(tmp_path / "run")
        baseline = replication.replicate(
            "mcf", _metric, seeds=(0, 1, 2), accesses_per_core=ACCESSES)
        partial = replication.replicate(
            "mcf", _metric, seeds=(0, 1), accesses_per_core=ACCESSES,
            checkpoint_dir=d)
        assert partial.values == baseline.values[:2]
        executed = []
        original = replication._replicate_seed

        def spy(item):
            executed.append(item[4])  # the seed position
            return original(item)

        monkeypatch.setattr(replication, "_replicate_seed", spy)
        resumed = replication.replicate(
            "mcf", _metric, seeds=(0, 1, 2), accesses_per_core=ACCESSES,
            checkpoint_dir=d, resume=True)
        assert executed == [2]  # finished seeds were skipped
        assert resumed.values == baseline.values

    def test_failing_seed_is_partial_not_traceback(self, tmp_path):
        def sometimes(prep):
            raise ValueError("metric blew up")

        with pytest.raises(PartialResultError) as err:
            replication.replicate("mcf", sometimes, seeds=(0,),
                                  accesses_per_core=ACCESSES,
                                  checkpoint_dir=str(tmp_path / "r"))
        assert "seed-0" in str(err.value)


class TestCapacitySweepResume:
    # The journal surgery below assumes the per-fraction fan-out; under
    # the multirun knob (the default) each workload is one job, so pin
    # the oracle path.  tests/sim/test_multirun_parity.py covers the
    # knob-on rows being bit-identical.
    @pytest.fixture(autouse=True)
    def _fraction_fanout(self):
        from repro.config import knob_overrides

        with knob_overrides(multirun=False):
            yield

    def test_resume_serves_finished_fractions_from_journal(self, tmp_path,
                                                           monkeypatch):
        d = str(tmp_path / "run")
        kwargs = dict(workloads=("mcf",), fractions=(0.1, 0.4),
                      scale=1 / 2048, accesses_per_core=ACCESSES, seed=4)
        uninterrupted = sweeps.capacity_sweep(**kwargs)
        checkpointed = sweeps.capacity_sweep(checkpoint_dir=d, **kwargs)
        assert checkpointed.rows == uninterrupted.rows

        def boom(item):
            raise AssertionError("resume must not recompute finished rows")

        monkeypatch.setattr(sweeps, "_capacity_row", boom)
        resumed = sweeps.capacity_sweep(checkpoint_dir=d, resume=True,
                                        **kwargs)
        assert resumed.rows == uninterrupted.rows

    def test_partial_journal_reruns_only_missing_fractions(self, tmp_path,
                                                           monkeypatch):
        d = str(tmp_path / "run")
        kwargs = dict(workloads=("mcf",), fractions=(0.1, 0.4),
                      scale=1 / 2048, accesses_per_core=ACCESSES, seed=4)
        full = sweeps.capacity_sweep(checkpoint_dir=d, **kwargs)
        # Rewind the journal to "killed after the first fraction".
        lines = open(os.path.join(d, "manifest.jsonl")).readlines()
        done = [line for line in lines if '"done"' in line]
        with open(os.path.join(d, "manifest.jsonl"), "w") as fh:
            fh.writelines([lines[0], done[0]])
        executed = []
        original = sweeps._capacity_row

        def spy(item):
            executed.append(item[0])
            return original(item)

        monkeypatch.setattr(sweeps, "_capacity_row", spy)
        resumed = sweeps.capacity_sweep(checkpoint_dir=d, resume=True,
                                        **kwargs)
        assert executed == [0.4]
        assert resumed.rows == full.rows


class TestRunExperimentsResume:
    def test_resume_skips_completed_experiments(self, tmp_path, monkeypatch):
        from repro.harness import runner

        d = str(tmp_path / "run")
        first = runner.run_experiments(["fig03"], accesses_per_core=ACCESSES,
                                       checkpoint_dir=d)
        assert first[0][0] == "fig03"

        def boom(item):
            raise AssertionError("resume must not rerun fig03")

        monkeypatch.setattr(runner, "_run_experiment_worker", boom)
        report = runner.run_experiments(
            ["fig03"], accesses_per_core=ACCESSES, checkpoint_dir=d,
            resume=True, return_report=True)
        assert report.outcome("fig03").status == CACHED
        name, figure = report.results[0]
        assert name == "fig03" and figure.rows == first[0][1].rows
