"""Error paths of the ascii plotting helpers and snapshot annotation."""

import numpy as np
import pytest

from repro.harness.plots import ascii_bars, ascii_scatter, ascii_series
from repro.obs.snapshots import SnapshotSeries


class TestAsciiScatter:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            ascii_scatter([1, 2, 3], [1, 2])

    def test_empty_input(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            ascii_scatter([], [])

    def test_degenerate_dimensions(self):
        with pytest.raises(ValueError, match="too small"):
            ascii_scatter([1, 2], [1, 2], width=4)
        with pytest.raises(ValueError, match="too small"):
            ascii_scatter([1, 2], [1, 2], height=2)

    def test_constant_data_still_plots(self):
        # All-equal values must not divide by zero.
        out = ascii_scatter([1.0, 1.0], [2.0, 2.0])
        assert "*" in out

    def test_split_lines_outside_range_are_dropped(self):
        out = ascii_scatter([0.0, 1.0], [0.0, 1.0],
                            split_x=5.0, split_y=-3.0)
        assert "|" not in out.splitlines()[0]


class TestAsciiBars:
    def test_label_value_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            ascii_bars(["a", "b"], [1.0])

    def test_empty_input(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            ascii_bars([], [])

    def test_negative_bars_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ascii_bars(["a"], [-1.0])

    def test_all_zero_bars_do_not_divide_by_zero(self):
        out = ascii_bars(["a", "b"], [0.0, 0.0])
        assert out.count("\n") == 1


class TestAsciiSeries:
    def test_empty_series(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            ascii_series([])

    def test_single_point_series_plots(self):
        assert "o" in ascii_series([1.0])


class TestSnapshotAnnotation:
    def test_annotation_length_mismatch(self):
        series = SnapshotSeries()
        with pytest.raises(ValueError, match="0 epochs"):
            series.annotate("ser", [1.0, 2.0])

    def test_empty_series_renders_no_rows(self):
        series = SnapshotSeries()
        assert series.rows == []
        assert list(series.columns())  # header columns always exist
