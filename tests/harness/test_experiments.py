"""Smoke tests for the per-figure experiment harness.

The full-scale shape assertions live in ``tests/integration``; these
tests run each experiment at a very small scale and check structure.
"""

import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    WorkloadCache,
    fig01_frontier,
    fig02_avf,
    fig04_quadrants,
    fig06_correlation,
    fig09_write_ratio,
    fig13_interval_sweep,
    fig17_annotation_counts,
    hw_cost,
    table1_config,
    table2_mixes,
)
from repro.harness.cli import main as cli_main

SMALL = dict(accesses_per_core=1500, scale=1 / 2048, seed=1)


@pytest.fixture(scope="module")
def cache():
    return WorkloadCache(**SMALL)


class TestStaticTables:
    def test_table1_lists_paper_parameters(self):
        res = table1_config()
        text = res.format()
        assert "16" in text
        assert "secded" in text
        assert "chipkill" in text

    def test_table2_has_five_mix_columns(self):
        res = table2_mixes()
        assert res.headers == ["Bench", "mix1", "mix2", "mix3", "mix4",
                               "mix5"]
        assert len(res.rows) == 15


class TestFigureSmoke:
    def test_fig01_rows_per_fraction(self, cache):
        res = fig01_frontier(workloads=("astar",), fractions=(0.0, 1.0),
                             cache=cache)
        assert len(res.rows) == 2
        # Full-hot placement is the fastest and least reliable point.
        assert res.rows[1][1] >= res.rows[0][1]
        assert res.rows[1][2] >= res.rows[0][2]

    def test_fig02_sorted_ascending(self, cache):
        res = fig02_avf(workloads=("astar", "milc"), cache=cache)
        avfs = [row[1] for row in res.rows]
        assert avfs == sorted(avfs)

    def test_fig04_fractions(self, cache):
        res = fig04_quadrants(workloads=("astar",), cache=cache)
        assert res.summary["hot_low_max_pct"] <= 100

    def test_fig06_has_rho(self, cache):
        res = fig06_correlation(workload="astar", top_n=50, cache=cache)
        assert "rho_hotness_avf" in res.summary

    def test_fig09_histogram(self, cache):
        res = fig09_write_ratio(workload="astar", cache=cache)
        assert res.summary["rho_write_ratio_avf"] < 0.2

    def test_fig13_reports_best(self, cache):
        res = fig13_interval_sweep(workloads=("astar",), intervals=(2, 8),
                                   cache=cache)
        assert res.summary["best_intervals"] in (2.0, 8.0)

    def test_fig17_counts(self, cache):
        res = fig17_annotation_counts(workloads=("astar",), cache=cache)
        assert res.rows[0][1] >= 1

    def test_hw_cost_paper_numbers(self):
        res = hw_cost()
        assert res.summary["fc_total_mb"] == pytest.approx(8.5, rel=0.02)
        assert res.summary["fc_additional_mb"] == pytest.approx(4.25,
                                                                rel=0.02)
        assert res.summary["cc_total_kb"] <= 700


class TestRegistry:
    def test_expected_experiments_present(self):
        expected = {"table1", "table2", "table3", "hwcost",
                    "workload-frontier", "ecc-pareto",
                    "sweep-capacity", "sweep-fit", "sweep-mlp"} | {
            f"fig{n:02d}" for n in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                    12, 13, 14, 15, 16, 17)
        }
        assert expected == set(EXPERIMENTS)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["run", "fig99"]) == 2

    def test_run_table1(self, capsys):
        assert cli_main(["run", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_run_small_figure(self, capsys):
        rc = cli_main(["run", "fig02", "--accesses", "300",
                       "--scale", str(1 / 4096), "--seed", "2"])
        assert rc == 0
        assert "Figure 2" in capsys.readouterr().out


class TestCliTools:
    def test_workloads_listing(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "astar" in out
        assert "mix1" in out

    def test_trace_generation_npz(self, tmp_path, capsys):
        out_file = tmp_path / "t.npz"
        rc = cli_main(["trace", "astar", str(out_file),
                       "--accesses", "200", "--scale", str(1 / 4096)])
        assert rc == 0
        from repro.trace.io import load_npz

        trace, times = load_npz(out_file)
        assert len(trace) > 0
        assert times is not None

    def test_trace_generation_text(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        rc = cli_main(["trace", "mix1", str(out_file),
                       "--accesses", "100", "--scale", str(1 / 4096)])
        assert rc == 0
        from repro.trace.io import load_text

        assert len(load_text(out_file)) > 0


class TestFigureResult:
    def test_format_includes_paper_targets(self):
        from repro.harness.experiments import FigureResult

        res = FigureResult(
            figure="Figure X", description="demo",
            headers=["a"], rows=[[1.0]],
            summary={"metric": 2.0}, paper={"metric": 3.0},
        )
        text = res.format()
        assert "Figure X" in text
        assert "metric = 2" in text
        assert "(paper: 3.0)" in text

    def test_format_without_summary(self):
        from repro.harness.experiments import FigureResult

        res = FigureResult(figure="F", description="d",
                           headers=["a"], rows=[[1]])
        assert "paper" not in res.format()


class TestSingleWorkloadFigures:
    """Micro-scale smoke runs of the heavier figure functions."""

    def test_fig05_single_workload(self, cache):
        from repro.harness.experiments import fig05_perf_focused

        res = fig05_perf_focused(workloads=("astar",), cache=cache)
        assert len(res.rows) == 1
        assert res.rows[0][2] > 1.0   # IPC vs DDR
        assert res.rows[0][3] > 1.0   # SER vs DDR

    def test_fig07_single_workload(self, cache):
        from repro.harness.experiments import fig07_rel_focused

        res = fig07_rel_focused(workloads=("mcf",), cache=cache)
        assert res.summary["mean_ser_ratio"] < 1.0

    def test_fig12_single_workload(self, cache):
        from repro.harness.experiments import fig12_perf_migration

        res = fig12_perf_migration(workloads=("astar",), cache=cache,
                                   num_intervals=4)
        assert res.rows[0][1] > 0

    def test_fig16_single_workload(self, cache):
        from repro.harness.experiments import fig16_annotations

        res = fig16_annotations(workloads=("astar",), cache=cache)
        assert res.rows[0][3] >= 1  # at least one annotation

    def test_table3_single_workload(self, cache):
        from repro.harness.experiments import table3_summary

        res = table3_summary(workloads=("mcf",), cache=cache,
                             num_intervals=4)
        assert len(res.rows) == 7


class TestCliScatter:
    def test_scatter(self, capsys):
        rc = cli_main(["scatter", "astar", "--accesses", "400",
                       "--scale", str(1 / 4096), "--width", "30",
                       "--height", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "*" in out
        assert "hot & low-risk" in out
