"""Orphaned shared-memory segments: name scheme and the reaper.

The atexit backstop cannot run when a segment's owner is SIGKILL'd, so
``reap_orphaned_segments`` (called by every creation site and by the
placement service at startup) must clean up after dead owners — and
must never touch segments whose owner is still alive.
"""

import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.config import knob_overrides
from repro.harness.shm import (
    SEGMENT_PREFIX,
    _owner_pid,
    reap_orphaned_segments,
    release_payload,
    share_payload,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not (shm_available() and os.path.isdir("/dev/shm")),
    reason="no POSIX shared memory filesystem")


#: Run in a subprocess: create a segment, print its name, die by
#: SIGKILL (or sleep, for the alive-owner case) — no cleanup runs.
_OWNER_SCRIPT = """
import os, signal, sys, time
import numpy as np
from repro.config import knob_overrides
from repro.harness.shm import share_payload

with knob_overrides(shm_handoff=True):
    handle = share_payload({"big": np.arange(4096, dtype=np.int64)})
print(handle.segment, flush=True)
if sys.argv[1] == "kill":
    os.kill(os.getpid(), signal.SIGKILL)
time.sleep(60)
"""


def _spawn_owner(mode: str) -> "tuple[subprocess.Popen, str]":
    proc = subprocess.Popen(
        [sys.executable, "-c", _OWNER_SCRIPT, mode],
        stdout=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)})
    segment = proc.stdout.readline().strip()
    assert segment.startswith(SEGMENT_PREFIX), segment
    return proc, segment


class TestOwnerPid:
    def test_parses_own_scheme(self):
        assert _owner_pid(f"{SEGMENT_PREFIX}1234-abcd") == 1234

    @pytest.mark.parametrize("name", [
        "psm_something", f"{SEGMENT_PREFIX}notapid-ff", SEGMENT_PREFIX,
    ])
    def test_foreign_names_are_ignored(self, name):
        assert _owner_pid(name) is None


class TestReaper:
    def test_sigkilled_owner_is_reaped(self):
        proc, segment = _spawn_owner("kill")
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL
        assert os.path.exists(os.path.join("/dev/shm", segment)), \
            "owner died but its segment should have leaked"
        reaped = reap_orphaned_segments()
        assert segment in reaped
        assert not os.path.exists(os.path.join("/dev/shm", segment))

    def test_live_owner_is_left_alone(self):
        proc, segment = _spawn_owner("sleep")
        try:
            assert segment not in reap_orphaned_segments()
            assert os.path.exists(os.path.join("/dev/shm", segment))
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert segment in reap_orphaned_segments()

    def test_own_segments_survive_the_reaper(self):
        with knob_overrides(shm_handoff=True):
            handle = share_payload(
                {"big": np.arange(4096, dtype=np.int64)})
        try:
            assert handle.segment.startswith(
                f"{SEGMENT_PREFIX}{os.getpid()}-")
            assert handle.segment not in reap_orphaned_segments()
            assert os.path.exists(
                os.path.join("/dev/shm", handle.segment))
        finally:
            release_payload(handle)
        assert not os.path.exists(
            os.path.join("/dev/shm", handle.segment))
