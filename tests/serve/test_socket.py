"""Unix-socket transport: framing, teardown, and stop semantics."""

import os
import socket as _socket
import threading

import pytest

from repro.serve.client import SocketClient
from repro.serve.engine import run_session
from repro.serve.protocol import ERR_PROTOCOL
from repro.serve.service import PlacementService
from repro.serve.socket import ServeDaemon
from tests.serve.conftest import inline_config, tiny_spec, tiny_traffic


@pytest.fixture
def daemon(tmp_path):
    path = str(tmp_path / "serve.sock")
    svc = PlacementService(inline_config(tmp_path))
    daemon = ServeDaemon(svc, path)
    thread = threading.Thread(
        target=lambda: setattr(daemon, "drained",
                               daemon.run(handle_signals=False)),
        daemon=True)
    thread.start()
    assert daemon.ready.wait(10), "daemon never came up"
    daemon.thread = thread
    yield daemon
    daemon.request_stop()
    thread.join(timeout=15)


class TestSocketTransport:
    def test_session_over_socket_is_bit_identical(self, daemon):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(seed=7, spec=spec)
        with SocketClient(daemon.path) as client:
            result = client.run(spec, trace, times, chunk_size=128)
        assert result.sha == run_session(spec, trace, times).sha

    def test_concurrent_connections(self, daemon):
        errors = []

        def one(tenant, seed):
            try:
                spec = tiny_spec(tenant)
                trace, times = tiny_traffic(seed=seed, spec=spec)
                with SocketClient(daemon.path) as client:
                    result = client.run(spec, trace, times)
                batch = run_session(spec, trace, times)
                assert result.sha == batch.sha
            except Exception as exc:  # noqa: BLE001 — collected below
                errors.append((tenant, repr(exc)))

        threads = [threading.Thread(target=one, args=(t, i))
                   for i, t in enumerate(["a", "b", "c"])]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []

    def test_garbage_line_answers_then_drops(self, daemon):
        sock = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        sock.settimeout(10)
        sock.connect(daemon.path)
        reader = sock.makefile("rb")
        sock.sendall(b"this is not json\n")
        from repro.serve.protocol import decode_line

        resp = decode_line(reader.readline())
        assert resp["error"] == ERR_PROTOCOL
        assert reader.readline() == b""  # connection dropped
        sock.close()
        # The daemon survives and serves the next connection.
        with SocketClient(daemon.path) as client:
            assert client.stats()["counts"] == {}

    def test_stop_unlinks_socket_and_reports_states(self, tmp_path):
        path = str(tmp_path / "stop.sock")
        svc = PlacementService(inline_config(tmp_path))
        daemon = ServeDaemon(svc, path)
        out = {}
        thread = threading.Thread(
            target=lambda: out.update(
                states=daemon.run(handle_signals=False)),
            daemon=True)
        thread.start()
        assert daemon.ready.wait(10)
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        with SocketClient(path) as client:
            client.run(spec, trace, times)
        daemon.request_stop()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert out["states"] == {"done": 1}
        assert not os.path.exists(path)

    def test_stale_socket_file_is_replaced(self, tmp_path):
        path = str(tmp_path / "stale.sock")
        stale = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
        stale.bind(path)
        stale.close()  # leaves the filesystem entry behind
        svc = PlacementService(inline_config(tmp_path))
        daemon = ServeDaemon(svc, path)
        thread = threading.Thread(
            target=daemon.run, kwargs={"handle_signals": False},
            daemon=True)
        thread.start()
        assert daemon.ready.wait(10), "stale socket blocked the daemon"
        with SocketClient(path) as client:
            assert client.stats()["states"] == {}
        daemon.request_stop()
        thread.join(timeout=15)
