"""Wire protocol: spec validation, chunk codec, line framing."""

import json

import numpy as np
import pytest

from repro.serve.chaos import CORRUPT_MODES, corrupt_chunk, synth_traffic
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    SessionSpec,
    chunk_from_payload,
    chunk_to_payload,
    decode_line,
    encode_message,
    error_response,
)


class TestSessionSpec:
    def test_round_trip(self):
        spec = SessionSpec(tenant="alice", num_cores=2, fast_pages=4,
                           slow_pages=64, mechanism="cc-migration",
                           num_intervals=3)
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_validate(self):
        SessionSpec(tenant="t").validate()

    @pytest.mark.parametrize("bad", ["", "x" * 65, 7, None])
    def test_bad_tenant(self, bad):
        with pytest.raises(ProtocolError):
            SessionSpec(tenant=bad).validate()

    @pytest.mark.parametrize("field,value", [
        ("num_cores", 0), ("num_cores", 65), ("num_cores", True),
        ("fast_pages", 0), ("slow_pages", -1), ("num_intervals", 0),
        ("num_cores", 2.0), ("slow_pages", "256"),
    ])
    def test_bad_geometry(self, field, value):
        with pytest.raises(ProtocolError):
            SessionSpec(tenant="t", **{field: value}).validate()

    def test_bad_mechanism(self):
        with pytest.raises(ProtocolError, match="mechanism"):
            SessionSpec(tenant="t", mechanism="lru").validate()

    def test_none_mechanism_is_static(self):
        SessionSpec(tenant="t", mechanism=None).validate()

    def test_tolerance_tiered_mechanism_accepted(self):
        SessionSpec(tenant="t", mechanism="tolerance-tiered").validate()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown spec fields"):
            SessionSpec.from_dict({"tenant": "t", "colour": "red"})

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            SessionSpec.from_dict(["tenant"])


class TestChunkCodec:
    def _chunk(self, seed=0, n=64, cores=2, footprint=32):
        return synth_traffic(seed, n, cores, footprint)

    def test_json_round_trip_is_bit_exact(self):
        trace, times = self._chunk()
        payload = json.loads(json.dumps(chunk_to_payload(trace, times)))
        got, got_times = chunk_from_payload(payload, 2)
        np.testing.assert_array_equal(got.core, trace.core)
        np.testing.assert_array_equal(got.address, trace.address)
        np.testing.assert_array_equal(got.is_write, trace.is_write)
        np.testing.assert_array_equal(got.gap, trace.gap)
        np.testing.assert_array_equal(got_times, times)
        assert got_times.dtype == np.float64

    def test_empty_chunk_rejected(self):
        trace, times = self._chunk()
        payload = chunk_to_payload(trace, times)
        payload = {k: [] for k in payload}
        with pytest.raises(ProtocolError, match="empty"):
            chunk_from_payload(payload, 2)

    def test_missing_field_rejected(self):
        trace, times = self._chunk()
        payload = chunk_to_payload(trace, times)
        del payload["gap"]
        with pytest.raises(ProtocolError, match="gap"):
            chunk_from_payload(payload, 2)

    def test_core_out_of_spec_rejected(self):
        trace, times = self._chunk(cores=2)
        payload = chunk_to_payload(trace, times)
        payload["core"][0] = 2  # spec says num_cores=2 -> cores 0..1
        with pytest.raises(ProtocolError, match="core"):
            chunk_from_payload(payload, 2)

    def test_bool_is_not_an_int(self):
        trace, times = self._chunk()
        payload = chunk_to_payload(trace, times)
        payload["address"][0] = True
        with pytest.raises(ProtocolError, match="address"):
            chunk_from_payload(payload, 2)

    @pytest.mark.parametrize("mode",
                             [m for m in CORRUPT_MODES if m != "bad-seq"])
    def test_corrupt_modes_fail_validation(self, mode):
        # "bad-seq" corrupts the envelope, not the chunk arrays; the
        # service layer catches it (tests/serve/test_service.py).
        trace, times = self._chunk()
        msg = {"op": "append", "session": "s", "seq": 1}
        msg.update(chunk_to_payload(trace, times))
        bad = corrupt_chunk(msg, mode)
        if mode == "overflow":
            # Decodes fine; the footprint check is the service's.
            got, _ = chunk_from_payload(bad, 2)
            assert int(got.address[0]) == 2**62
        else:
            with pytest.raises(ProtocolError):
                chunk_from_payload(bad, 2)

    def test_times_must_be_non_decreasing(self):
        trace, times = self._chunk()
        payload = chunk_to_payload(trace, times[::-1].copy())
        with pytest.raises(ProtocolError, match="non-decreasing"):
            chunk_from_payload(payload, 2)


class TestFraming:
    def test_encode_decode_round_trip(self):
        msg = {"op": "poll", "session": "t-1", "wait": 0.5}
        line = encode_message(msg)
        assert line.endswith(b"\n")
        assert decode_line(line) == msg

    def test_decode_str_and_bytes(self):
        assert decode_line('{"op": "stats"}') == {"op": "stats"}
        assert decode_line(b'{"op": "stats"}') == {"op": "stats"}

    @pytest.mark.parametrize("garbage", [
        b"not json\n", b"[1, 2]\n", b'"just a string"\n', b"\xff\xfe\n",
    ])
    def test_garbage_rejected(self, garbage):
        with pytest.raises(ProtocolError):
            decode_line(garbage)

    def test_error_response_shape(self):
        resp = error_response("retry", "spool is full", retry_after=0.25)
        assert resp == {"ok": False, "error": "retry",
                        "detail": "spool is full", "retry_after": 0.25}
        assert "retry_after" not in error_response("state", "nope")

    def test_protocol_version_is_stable(self):
        assert PROTOCOL_VERSION == 1
