"""Chaos gate: the daemon under SIGKILL, hangs, and poison tenants.

The invariant is the strongest available: every surviving tenant's
result is bit-identical to a batch replay of the same trace, and every
corrupt tenant is quarantined — alone.  Process isolation and fault
injection make these slow, so the whole module is excluded from
tier-1.
"""

import threading

import pytest

from repro.harness.resilience import FaultPlan
from repro.serve.chaos import CORRUPT_MODES, TenantPlan, run_chaos
from repro.serve.client import ServiceClient, SocketClient
from repro.serve.service import PlacementService, ServiceConfig
from repro.serve.socket import ServeDaemon

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def _chaos_config(tmp_path, fault_plan=None, **overrides) -> ServiceConfig:
    defaults = dict(
        serve_dir=str(tmp_path / "serve"),
        isolation="process",
        pool_workers=2,
        job_timeout=5.0,
        retries=2,
        retry_backoff=0.05,
        idle_timeout=None,
        fault_plan=fault_plan,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _plans():
    return [
        TenantPlan("alice", seed=11),
        TenantPlan("bob", seed=22, behaviour="slow", delay=0.02),
        TenantPlan("carol", seed=33),
        TenantPlan("mallory", seed=44, behaviour="corrupt:bad-type"),
    ]


class TestProcessChaos:
    def test_kill_and_hang_survive_bit_identical(self, tmp_path):
        # alice's worker is SIGKILL'd once and carol's hangs past the
        # job timeout once; both must retry from the durable spool and
        # still match the batch oracle bit for bit.
        plan = FaultPlan({"alice": ["kill"], "carol": ["hang:30"]})
        with PlacementService(_chaos_config(tmp_path, plan)) as svc:
            report = run_chaos(lambda: ServiceClient(svc), _plans(),
                               stats_client=ServiceClient(svc))
        assert report.ok, report.summary()
        counts = report.stats["counts"]
        assert counts.get("pool_respawns", 0) >= 1  # the SIGKILL
        assert counts["quarantined"] == 1           # mallory, alone
        assert counts["done"] == 3

    def test_fatal_worker_fails_only_its_session(self, tmp_path):
        # A tenant whose worker dies on every attempt exhausts its
        # retries and fails; its neighbours still finish identically.
        plan = FaultPlan({"doomed": ["kill", "kill", "kill", "kill"]})
        plans = [TenantPlan("alice", seed=1),
                 TenantPlan("doomed", seed=2)]
        with PlacementService(_chaos_config(tmp_path, plan)) as svc:
            report = run_chaos(lambda: ServiceClient(svc), plans)
        by_tenant = {o.tenant: o for o in report.outcomes}
        assert by_tenant["alice"].ok
        assert by_tenant["doomed"].state == "failed"
        assert "attempt" in by_tenant["doomed"].detail

    @pytest.mark.parametrize("mode", CORRUPT_MODES)
    def test_every_corruption_mode_is_quarantined(self, tmp_path, mode):
        plans = [TenantPlan("good", seed=5),
                 TenantPlan("evil", seed=6, behaviour=f"corrupt:{mode}")]
        with PlacementService(_chaos_config(tmp_path)) as svc:
            report = run_chaos(lambda: ServiceClient(svc), plans)
        assert report.ok, report.summary()


class TestSocketChaos:
    def test_chaos_over_a_real_socket(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        plan = FaultPlan({"alice": ["kill"]})
        svc = PlacementService(_chaos_config(tmp_path, plan))
        daemon = ServeDaemon(svc, path)
        thread = threading.Thread(
            target=daemon.run, kwargs={"handle_signals": False},
            daemon=True)
        thread.start()
        assert daemon.ready.wait(10), "daemon never came up"
        try:
            report = run_chaos(lambda: SocketClient(path), _plans(),
                               stats_client=SocketClient(path))
        finally:
            daemon.request_stop()
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert report.ok, report.summary()
        assert report.stats["counts"].get("pool_respawns", 0) >= 1
