"""Session state machine, token bucket, and the durable chunk spool."""

import os

import numpy as np
import pytest

from repro.serve import session as sess
from repro.serve.chaos import synth_traffic
from repro.serve.session import (
    Session,
    TokenBucket,
    load_session_trace,
    read_spool_spec,
    read_spool_state,
)
from tests.serve.conftest import tiny_spec


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=50.0, clock=clock)
        assert bucket.try_acquire(50) == 0.0          # full burst granted
        wait = bucket.try_acquire(10)
        assert wait == pytest.approx(0.1)             # 10 tokens / 100 per s
        clock.advance(0.1)
        assert bucket.try_acquire(10) == 0.0          # refilled exactly

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=50.0, clock=clock)
        clock.advance(1000.0)
        assert bucket.try_acquire(50) == 0.0
        assert bucket.try_acquire(1) > 0.0            # not over-filled

    def test_oversized_request_charges_full_bucket(self):
        bucket = TokenBucket(rate=100.0, burst=50.0, clock=FakeClock())
        assert bucket.try_acquire(51) == pytest.approx(0.5)
        assert bucket.try_acquire(50) == 0.0          # untouched by refusal

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0)


def _spooled_session(tmp_path, chunks=3, chunk_size=64):
    spec = tiny_spec()
    session = Session("t0-1", spec, str(tmp_path / "t0-1"))
    session.open_spool()
    trace, times = synth_traffic(3, chunks * chunk_size, spec.num_cores,
                                 spec.slow_pages // 2)
    for i in range(chunks):
        lo, hi = i * chunk_size, (i + 1) * chunk_size
        session.spool_chunk(trace.slice(lo, hi), times[lo:hi])
    return session, trace, times


class TestSpool:
    def test_round_trip_is_bit_exact(self, tmp_path):
        session, trace, times = _spooled_session(tmp_path)
        got, got_times = load_session_trace(session.directory)
        np.testing.assert_array_equal(got.address, trace.address)
        np.testing.assert_array_equal(got.core, trace.core)
        np.testing.assert_array_equal(got.is_write, trace.is_write)
        np.testing.assert_array_equal(got.gap, trace.gap)
        np.testing.assert_array_equal(got_times, times)

    def test_durable_state_tracks_acks(self, tmp_path):
        session, trace, _ = _spooled_session(tmp_path)
        state = read_spool_state(session.directory)
        assert state["state"] == sess.OPEN
        assert state["next_seq"] == 3
        assert state["accesses"] == len(trace)
        assert read_spool_spec(session.directory) == session.spec

    def test_unacked_chunk_beyond_state_is_ignored(self, tmp_path):
        # A crash between chunk write and state write leaves an extra
        # chunk file; the loader must trust state.json, not the listing.
        session, trace, times = _spooled_session(tmp_path)
        extra, extra_times = synth_traffic(9, 32, 2, 8)
        from repro.trace.io import save_npz

        save_npz(os.path.join(session.directory, "chunk-000003.npz"),
                 extra, extra_times + float(times[-1]))
        got, got_times = load_session_trace(session.directory)
        assert len(got) == len(trace)
        np.testing.assert_array_equal(got_times, times)

    def test_missing_acked_chunk_raises(self, tmp_path):
        session, _, _ = _spooled_session(tmp_path)
        os.unlink(os.path.join(session.directory, "chunk-000001.npz"))
        with pytest.raises(ValueError, match="acknowledged chunk 1"):
            load_session_trace(session.directory)

    def test_empty_spool_raises(self, tmp_path):
        spec = tiny_spec()
        session = Session("t0-1", spec, str(tmp_path / "t0-1"))
        session.open_spool()
        with pytest.raises(ValueError, match="no chunks"):
            load_session_trace(session.directory)


class TestStateMachine:
    def test_happy_path(self, tmp_path):
        session, _, _ = _spooled_session(tmp_path)
        assert session.active and not session.terminal
        session.transition(sess.QUEUED)
        session.transition(sess.RUNNING)
        assert not session.done.is_set()
        session.transition(sess.DONE)
        assert session.terminal and session.done.is_set()

    def test_terminal_states_are_sticky(self, tmp_path):
        session, _, _ = _spooled_session(tmp_path)
        session.transition(sess.QUARANTINED, error="bad chunk")
        session.transition(sess.DONE)
        assert session.state == sess.QUARANTINED
        assert session.error == "bad chunk"
        assert read_spool_state(session.directory)["state"] \
            == sess.QUARANTINED

    def test_describe_carries_error_detail(self, tmp_path):
        session, _, _ = _spooled_session(tmp_path)
        session.transition(sess.FAILED, error="worker died")
        info = session.describe()
        assert info["state"] == sess.FAILED
        assert info["detail"] == "worker died"
        assert info["chunks"] == 3
