"""Service core: lifecycle, bit-identity, poisoning, recovery, drain."""

import pytest

from repro.serve import session as sess
from repro.serve.client import ServiceClient, ServiceError, SessionFailed
from repro.serve.engine import run_session
from repro.serve.protocol import (
    ERR_DRAINING,
    ERR_PROTOCOL,
    ERR_STATE,
    ERR_UNKNOWN_SESSION,
    chunk_to_payload,
)
from repro.serve.service import PlacementService
from repro.serve.session import Session
from tests.serve.conftest import inline_config, tiny_spec, tiny_traffic


class TestLifecycle:
    def test_streamed_equals_batch_bit_for_bit(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(seed=1, spec=spec)
        result = client.run(spec, trace, times, chunk_size=96)
        batch = run_session(spec, trace, times)
        assert result.sha == batch.sha
        assert result.digest == batch.digest
        assert result.requests == len(trace)

    def test_single_chunk_session(self, client):
        spec = tiny_spec("bob", mechanism=None)
        trace, times = tiny_traffic(seed=2, accesses=128, spec=spec)
        result = client.run(spec, trace, times, chunk_size=4096)
        assert result.sha == run_session(spec, trace, times).sha
        assert result.scheme == "static"

    def test_tenants_get_distinct_sessions(self, client):
        a = client.open(tiny_spec("alice"))
        b = client.open(tiny_spec("bob"))
        assert a != b and a.startswith("alice-") and b.startswith("bob-")

    def test_poll_reports_progress(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        sid = client.open(spec)
        assert client.poll(sid)["state"] == sess.OPEN
        client.stream(sid, trace, times, chunk_size=128)
        resp = client.poll(sid)
        assert resp["chunks"] == len(trace) // 128 + (len(trace) % 128 > 0)
        assert resp["accesses"] == len(trace)

    def test_stats_counts_sessions(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        client.run(spec, trace, times)
        stats = client.stats()
        assert stats["counts"]["opened"] == 1
        assert stats["counts"]["done"] == 1
        assert stats["states"] == {"done": 1}
        assert stats["spooled_accesses"] == 0  # settled at retirement
        assert stats["model_cache"] == 1


class TestRejections:
    def test_unknown_session(self, client):
        with pytest.raises(ServiceError) as err:
            client.poll("nobody-9")
        assert err.value.code == ERR_UNKNOWN_SESSION

    def test_unknown_op_and_non_object(self, service):
        assert service.handle({"op": "dance"})["error"] == ERR_PROTOCOL
        assert service.handle("open")["error"] == ERR_PROTOCOL
        assert service.handle({"op": "poll", "session": 7})["error"] \
            == ERR_PROTOCOL

    def test_commit_without_chunks(self, client):
        sid = client.open(tiny_spec("alice"))
        with pytest.raises(ServiceError) as err:
            client.commit(sid)
        assert err.value.code == ERR_STATE

    def test_append_after_commit(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        sid = client.open(spec)
        client.stream(sid, trace, times)
        client.commit(sid)
        client.wait(sid)
        with pytest.raises(ServiceError) as err:
            client.append(sid, 1, trace.slice(0, 8), times[:8])
        assert err.value.code == ERR_STATE

    def test_bad_wait_is_poison(self, client):
        sid = client.open(tiny_spec("alice"))
        with pytest.raises(ServiceError) as err:
            client.poll(sid, wait=-1)
        assert err.value.code == ERR_PROTOCOL
        assert client.poll(sid)["state"] == sess.QUARANTINED


class TestPoisoning:
    def test_seq_mismatch_quarantines_only_the_sender(self, client):
        spec_a, spec_b = tiny_spec("alice"), tiny_spec("bob")
        trace, times = tiny_traffic(spec=spec_a)
        sid_a = client.open(spec_a)
        sid_b = client.open(spec_b)
        with pytest.raises(ServiceError) as err:
            client.append(sid_a, 5, trace.slice(0, 64), times[:64])
        assert err.value.code == ERR_PROTOCOL
        assert client.poll(sid_a)["state"] == sess.QUARANTINED
        # The well-behaved neighbour is untouched and completes.
        client.stream(sid_b, trace, times)
        client.commit(sid_b)
        result = client.wait(sid_b)
        assert result.sha == run_session(spec_b, trace, times).sha

    def test_footprint_overflow_quarantines(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        sid = client.open(spec)
        msg = {"op": "append", "session": sid, "seq": 0}
        msg.update(chunk_to_payload(trace.slice(0, 8), times[:8]))
        msg["address"][0] = 2**40  # page far beyond the slow tier
        resp = client.service.handle(msg)
        assert resp["error"] == ERR_PROTOCOL
        assert "footprint" in resp["detail"]
        assert client.poll(sid)["state"] == sess.QUARANTINED

    def test_time_warp_across_chunks_quarantines(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        sid = client.open(spec)
        client.append(sid, 0, trace.slice(64, 128), times[64:128])
        with pytest.raises(ServiceError) as err:
            client.append(sid, 1, trace.slice(0, 64), times[:64])
        assert err.value.code == ERR_PROTOCOL
        assert client.poll(sid)["state"] == sess.QUARANTINED

    def test_quarantine_is_terminal_for_commit(self, client):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        sid = client.open(spec)
        client.append(sid, 0, trace.slice(0, 64), times[:64])
        client.service.handle({"op": "append", "session": sid, "seq": 99})
        with pytest.raises(ServiceError) as err:
            client.commit(sid)
        assert err.value.code == ERR_STATE


class TestRecovery:
    def test_committed_spool_is_requeued_and_bit_identical(self, tmp_path):
        spec = tiny_spec("rec")
        trace, times = tiny_traffic(seed=5, spec=spec)
        # A previous daemon's spool: fully acked, committed, no result.
        serve_dir = tmp_path / "serve"
        directory = serve_dir / "sessions" / "rec-1"
        orphan = Session("rec-1", spec, str(directory))
        orphan.open_spool()
        for lo in range(0, len(trace), 128):
            hi = min(lo + 128, len(trace))
            orphan.spool_chunk(trace.slice(lo, hi), times[lo:hi])
        orphan.transition(sess.QUEUED)

        with PlacementService(inline_config(tmp_path)) as svc:
            assert svc.recover() == ["rec-1"]
            client = ServiceClient(svc)
            result = client.wait("rec-1", timeout=60)
        assert result.sha == run_session(spec, trace, times).sha

    def test_open_spools_are_not_recovered(self, tmp_path):
        spec = tiny_spec("rec")
        trace, times = tiny_traffic(spec=spec)
        directory = tmp_path / "serve" / "sessions" / "rec-1"
        orphan = Session("rec-1", spec, str(directory))
        orphan.open_spool()
        orphan.spool_chunk(trace.slice(0, 64), times[:64])
        with PlacementService(inline_config(tmp_path)) as svc:
            assert svc.recover() == []

    def test_garbage_spool_dir_is_skipped(self, tmp_path):
        directory = tmp_path / "serve" / "sessions" / "junk"
        directory.mkdir(parents=True)
        (directory / "state.json").write_text("not json")
        with PlacementService(inline_config(tmp_path)) as svc:
            assert svc.recover() == []


class TestDrain:
    def test_drain_aborts_open_finishes_committed(self, tmp_path):
        spec = tiny_spec("alice")
        trace, times = tiny_traffic(spec=spec)
        with PlacementService(inline_config(tmp_path)) as svc:
            client = ServiceClient(svc)
            committed = client.open(spec)
            client.stream(committed, trace, times)
            client.commit(committed)
            idle = client.open(tiny_spec("bob"))
            states = svc.drain()
            assert states.get(sess.DONE) == 1
            assert states.get(sess.ABORTED) == 1
            with pytest.raises(SessionFailed) as err:
                client.wait(idle, timeout=1)
            assert err.value.state == sess.ABORTED
            with pytest.raises(ServiceError) as err:
                client.open(tiny_spec("late"))
            assert err.value.code == ERR_DRAINING

    def test_closed_service_answers_draining(self, tmp_path):
        svc = PlacementService(inline_config(tmp_path))
        svc.close()
        assert svc.handle({"op": "stats"})["error"] == ERR_DRAINING
