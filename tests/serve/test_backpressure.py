"""Backpressure and admission: every bound answers, none buffers."""

import time

import pytest

from repro.serve import session as sess
from repro.serve.client import ServiceClient
from repro.serve.protocol import ERR_ADMISSION, ERR_RETRY, ERR_TOO_LARGE
from repro.serve.service import PlacementService
from tests.serve.conftest import inline_config, tiny_spec, tiny_traffic
from tests.serve.test_session import FakeClock


def _raw(service, msg):
    """Drive the service without the client's retry conveniences."""
    return service.handle(msg)


def _append_msg(sid, seq, trace, times):
    from repro.serve.protocol import chunk_to_payload

    msg = {"op": "append", "session": sid, "seq": seq}
    msg.update(chunk_to_payload(trace, times))
    return msg


class TestRateLimit:
    def test_bucket_meters_and_refills_deterministically(self, tmp_path):
        clock = FakeClock()
        config = inline_config(tmp_path, rate_accesses_per_sec=100.0,
                               burst_accesses=64.0)
        with PlacementService(config, clock=clock) as svc:
            spec = tiny_spec("flood")
            trace, times = tiny_traffic(spec=spec)
            sid = ServiceClient(svc).open(spec)
            ok = _raw(svc, _append_msg(sid, 0, trace.slice(0, 64),
                                       times[:64]))
            assert ok["ok"] and ok["seq"] == 0
            # The bucket is empty: the same-instant next chunk must be
            # told exactly how long 64 tokens take to accrue.
            resp = _raw(svc, _append_msg(sid, 1, trace.slice(64, 128),
                                         times[64:128]))
            assert resp["error"] == ERR_RETRY
            assert resp["retry_after"] == pytest.approx(0.64)
            clock.advance(0.64)
            ok = _raw(svc, _append_msg(sid, 1, trace.slice(64, 128),
                                       times[64:128]))
            assert ok["ok"] and ok["seq"] == 1
            # A refused chunk never advanced the sequence or the spool.
            assert ok["accesses"] == 128

    def test_rate_limits_are_per_tenant(self, tmp_path):
        clock = FakeClock()
        config = inline_config(tmp_path, rate_accesses_per_sec=100.0,
                               burst_accesses=64.0)
        with PlacementService(config, clock=clock) as svc:
            client = ServiceClient(svc)
            trace, times = tiny_traffic()
            sid_a = client.open(tiny_spec("alice"))
            sid_b = client.open(tiny_spec("bob"))
            assert _raw(svc, _append_msg(sid_a, 0, trace.slice(0, 64),
                                         times[:64]))["ok"]
            # Alice drained *her* bucket; Bob's is untouched.
            resp = _raw(svc, _append_msg(sid_a, 1, trace.slice(64, 128),
                                         times[64:128]))
            assert resp["error"] == ERR_RETRY
            assert _raw(svc, _append_msg(sid_b, 0, trace.slice(0, 64),
                                         times[:64]))["ok"]


class TestAdmission:
    def test_shed_above_max_sessions(self, tmp_path):
        config = inline_config(tmp_path, max_sessions=2)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            client.open(tiny_spec("a"))
            client.open(tiny_spec("b"))
            resp = _raw(svc, {"op": "open", "tenant": "c",
                              "spec": tiny_spec("c").to_dict()})
            assert resp["error"] == ERR_ADMISSION
            assert resp["retry_after"] > 0
            assert svc.handle({"op": "stats"})["stats"]["counts"]["shed"] == 1

    def test_terminal_sessions_free_slots(self, tmp_path):
        config = inline_config(tmp_path, max_sessions=1)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            spec = tiny_spec("a")
            trace, times = tiny_traffic(spec=spec)
            client.run(spec, trace, times)  # terminal: done
            client.open(tiny_spec("b"))     # slot is free again


class TestSpoolAndQueueCaps:
    def test_global_spool_cap_backpressures(self, tmp_path):
        config = inline_config(tmp_path, max_spool_accesses=100)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            trace, times = tiny_traffic()
            sid = client.open(tiny_spec("a"))
            assert _raw(svc, _append_msg(sid, 0, trace.slice(0, 64),
                                         times[:64]))["ok"]
            resp = _raw(svc, _append_msg(sid, 1, trace.slice(64, 128),
                                         times[64:128]))
            assert resp["error"] == ERR_RETRY
            assert "spool" in resp["detail"]

    def test_run_queue_cap_backpressures_commit(self, tmp_path):
        config = inline_config(tmp_path, max_queued_runs=0)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            spec = tiny_spec("a")
            trace, times = tiny_traffic(spec=spec)
            sid = client.open(spec)
            client.stream(sid, trace, times)
            resp = _raw(svc, {"op": "commit", "session": sid})
            assert resp["error"] == ERR_RETRY


class TestHardCaps:
    def test_oversized_chunk_is_a_hard_error(self, tmp_path):
        config = inline_config(tmp_path, max_chunk_accesses=100)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            trace, times = tiny_traffic()
            sid = client.open(tiny_spec("a"))
            resp = _raw(svc, _append_msg(sid, 0, trace.slice(0, 128),
                                         times[:128]))
            assert resp["error"] == ERR_TOO_LARGE
            assert "retry_after" not in resp
            # A hard error is not poison: the session stays usable.
            assert client.poll(sid)["state"] == sess.OPEN
            assert _raw(svc, _append_msg(sid, 0, trace.slice(0, 64),
                                         times[:64]))["ok"]

    def test_session_cap_is_a_hard_error(self, tmp_path):
        config = inline_config(tmp_path, max_session_accesses=100)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            trace, times = tiny_traffic()
            sid = client.open(tiny_spec("a"))
            assert _raw(svc, _append_msg(sid, 0, trace.slice(0, 64),
                                         times[:64]))["ok"]
            resp = _raw(svc, _append_msg(sid, 1, trace.slice(64, 128),
                                         times[64:128]))
            assert resp["error"] == ERR_TOO_LARGE


class TestIdleWatchdog:
    def test_silent_open_stream_is_aborted(self, tmp_path):
        config = inline_config(tmp_path, idle_timeout=0.2,
                               watchdog_interval=0.05)
        with PlacementService(config) as svc:
            client = ServiceClient(svc)
            sid = client.open(tiny_spec("sleepy"))
            deadline = time.monotonic() + 5.0
            while client.poll(sid)["state"] == sess.OPEN:
                assert time.monotonic() < deadline, "watchdog never fired"
                time.sleep(0.05)
            resp = client.poll(sid)
            assert resp["state"] == sess.ABORTED
            assert "idle" in resp["detail"]
