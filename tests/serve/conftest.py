"""Shared fixtures for the placement-service suite.

Everything here runs the service with ``isolation="inline"`` and the
watchdog off, so the tier-1 tests are fast and deterministic; the
chaos suite (``test_chaos.py``, marked slow) switches process
isolation and fault injection back on.
"""

import pytest

from repro.serve.chaos import synth_traffic
from repro.serve.client import ServiceClient
from repro.serve.protocol import SessionSpec
from repro.serve.service import PlacementService, ServiceConfig

#: A spec small enough that an inline replay takes milliseconds.
TINY = dict(num_cores=2, fast_pages=4, slow_pages=64,
            mechanism="fc-migration", num_intervals=3)


def tiny_spec(tenant: str = "t0", **overrides) -> SessionSpec:
    return SessionSpec(tenant=tenant, **{**TINY, **overrides})


def tiny_traffic(seed: int = 0, accesses: int = 400,
                 spec: "SessionSpec | None" = None):
    spec = spec or tiny_spec()
    return synth_traffic(seed, accesses, spec.num_cores,
                         max(1, spec.slow_pages // 2))


def inline_config(tmp_path, **overrides) -> ServiceConfig:
    defaults = dict(
        serve_dir=str(tmp_path / "serve"),
        isolation="inline",
        pool_workers=1,
        idle_timeout=None,
        job_timeout=None,
        retries=0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


@pytest.fixture
def service(tmp_path):
    with PlacementService(inline_config(tmp_path)) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service)
