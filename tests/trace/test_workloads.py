"""Unit tests for benchmark profiles and the Workload API."""

import numpy as np
import pytest

from repro.trace.mixes import MIXES
from repro.trace.workloads import (
    HOMOGENEOUS_BENCHMARKS,
    PROFILES,
    BenchmarkProfile,
    Workload,
)


class TestProfiles:
    def test_all_table2_benchmarks_present(self):
        table2 = {
            "mcf", "lbm", "milc", "omnetpp", "astar", "sphinx", "soplex",
            "deaIII", "libquantum", "leslie3d", "gcc", "GemsFDTD", "bzip",
            "bwaves", "cactusADM",
        }
        assert table2 <= set(PROFILES)

    def test_doe_benchmarks_present(self):
        assert "xsbench" in PROFILES
        assert "lulesh" in PROFILES

    def test_region_shares_sum_to_one(self):
        for name, profile in PROFILES.items():
            total = sum(r.footprint_share for r in profile.regions)
            assert total == pytest.approx(1.0, abs=0.01), name

    def test_positive_mpki_and_mlp(self):
        for profile in PROFILES.values():
            assert profile.mpki > 0
            assert profile.mlp >= 1

    def test_footprint_pages_scaling(self):
        p = PROFILES["mcf"]
        full = p.footprint_pages(1.0)
        scaled = p.footprint_pages(1 / 1024)
        assert full == pytest.approx(1024 * scaled, rel=0.05)

    def test_footprint_never_below_region_count(self):
        p = PROFILES["cactusADM"]
        assert p.footprint_pages(1e-9) == len(p.regions)

    def test_bandwidth_bound_have_high_mpki(self):
        for bench in ("lbm", "milc", "mcf"):
            assert PROFILES[bench].mpki > 20
        for bench in ("astar", "sphinx", "deaIII"):
            assert PROFILES[bench].mpki < 10

    def test_cactus_has_many_structures(self):
        # Fig. 17: cactusADM needs tens of annotations.
        assert len(PROFILES["cactusADM"].regions) > 40


class TestWorkload:
    def test_spec_homogeneous(self):
        wl = Workload.spec("astar")
        assert wl.cores == ("astar",) * 16

    def test_spec_unknown(self):
        with pytest.raises(KeyError):
            Workload.spec("nonexistent")

    def test_mix_known(self):
        wl = Workload.mix("mix1")
        assert len(wl.cores) == 16
        assert wl.name == "mix1"

    def test_mix_unknown(self):
        with pytest.raises(KeyError):
            Workload.mix("mix9")

    def test_rejects_unknown_core_benchmark(self):
        with pytest.raises(KeyError):
            Workload(name="bad", cores=("astar", "nope"))

    def test_all_homogeneous_generate(self):
        for bench in HOMOGENEOUS_BENCHMARKS:
            wl = Workload.spec(bench, num_cores=2)
            wt = wl.generate(scale=1 / 2048, accesses_per_core=500, seed=1)
            assert len(wt.trace) > 0
            assert wt.footprint_pages > 0


class TestWorkloadTrace:
    @pytest.fixture(scope="class")
    def wt(self):
        return Workload.mix("mix1").generate(
            scale=1 / 1024, accesses_per_core=2000, seed=0
        )

    def test_cores_have_disjoint_page_ranges(self, wt):
        spans = []
        for layouts in wt.core_layouts:
            lo = min(l.first_page for l in layouts)
            hi = max(l.last_page for l in layouts)
            spans.append((lo, hi))
        spans.sort()
        for (_lo, hi), (lo2, _hi2) in zip(spans, spans[1:]):
            assert hi < lo2

    def test_footprint_counts_all_cores(self, wt):
        per_core = [sum(l.num_pages for l in layouts)
                    for layouts in wt.core_layouts]
        assert wt.footprint_pages == sum(per_core)

    def test_core_mlp_matches_profiles(self, wt):
        assert wt.core_mlp == [PROFILES[b].mlp for b in wt.core_benchmarks]

    def test_structures_pool_same_benchmark(self):
        wt = Workload.spec("astar", num_cores=4).generate(
            scale=1 / 1024, accesses_per_core=1000
        )
        structures = wt.structures()
        # 5 astar regions, each pooled over 4 copies.
        assert len(structures) == 5
        assert all(len(v) == 4 for v in structures.values())
        assert "astar.way_array" in structures

    def test_mix_structures_keyed_by_benchmark(self, wt):
        names = set(wt.structures())
        assert any(n.startswith("mcf.") for n in names)
        assert any(n.startswith("lbm.") for n in names)
