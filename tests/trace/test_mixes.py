"""Unit tests for the Table 2 mix definitions."""

import pytest

from repro.trace.mixes import MIX_NAMES, MIX_TABLE, MIXES, _expand
from repro.trace.workloads import PROFILES


class TestMixTable:
    def test_five_mixes(self):
        assert MIX_NAMES == ("mix1", "mix2", "mix3", "mix4", "mix5")

    def test_table2_mix1_exact(self):
        assert MIX_TABLE["mix1"] == {
            "mcf": 3, "lbm": 2, "milc": 2, "omnetpp": 1, "astar": 2,
            "sphinx": 1, "soplex": 2, "libquantum": 2, "gcc": 1,
        }

    def test_table2_mix5_exact(self):
        assert MIX_TABLE["mix5"] == {
            "deaIII": 3, "leslie3d": 3, "GemsFDTD": 1, "bzip": 3,
            "bwaves": 1, "cactusADM": 5,
        }

    def test_all_benchmarks_known(self):
        for table in MIX_TABLE.values():
            for bench in table:
                assert bench in PROFILES

    def test_mix1_sums_to_16(self):
        assert sum(MIX_TABLE["mix1"].values()) == 16

    def test_all_expanded_to_16_cores(self):
        for name, cores in MIXES.items():
            assert len(cores) == 16, name

    def test_expansion_preserves_counts(self):
        for name, table in MIX_TABLE.items():
            cores = MIXES[name]
            for bench, count in table.items():
                assert cores.count(bench) >= count, (name, bench)


class TestExpand:
    def test_exact_fill(self):
        cores = _expand({"a": 10, "b": 6})
        assert len(cores) == 16
        assert cores.count("a") == 10

    def test_padding_round_robin(self):
        cores = _expand({"a": 7, "b": 7})
        assert len(cores) == 16
        assert cores.count("a") == 8
        assert cores.count("b") == 8

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            _expand({"a": 17})
