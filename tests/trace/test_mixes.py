"""Unit tests for the Table 2 mix definitions."""

import pytest

from repro.trace.mixes import MIX_NAMES, MIX_TABLE, MIXES, _expand
from repro.trace.workloads import PROFILES


class TestMixTable:
    def test_five_mixes(self):
        assert MIX_NAMES == ("mix1", "mix2", "mix3", "mix4", "mix5")

    def test_table2_mix1_exact(self):
        assert MIX_TABLE["mix1"] == {
            "mcf": 3, "lbm": 2, "milc": 2, "omnetpp": 1, "astar": 2,
            "sphinx": 1, "soplex": 2, "libquantum": 2, "gcc": 1,
        }

    def test_table2_mix5_exact(self):
        assert MIX_TABLE["mix5"] == {
            "deaIII": 3, "leslie3d": 3, "GemsFDTD": 1, "bzip": 3,
            "bwaves": 1, "cactusADM": 5,
        }

    def test_all_benchmarks_known(self):
        for table in MIX_TABLE.values():
            for bench in table:
                assert bench in PROFILES

    def test_mix1_sums_to_16(self):
        assert sum(MIX_TABLE["mix1"].values()) == 16

    def test_all_expanded_to_16_cores(self):
        for name, cores in MIXES.items():
            assert len(cores) == 16, name

    def test_expansion_preserves_counts(self):
        for name, table in MIX_TABLE.items():
            cores = MIXES[name]
            for bench, count in table.items():
                assert cores.count(bench) >= count, (name, bench)


class TestExpand:
    def test_exact_fill(self):
        cores = _expand({"a": 10, "b": 6})
        assert len(cores) == 16
        assert cores.count("a") == 10

    def test_padding_round_robin(self):
        cores = _expand({"a": 7, "b": 7})
        assert len(cores) == 16
        assert cores.count("a") == 8
        assert cores.count("b") == 8

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            _expand({"a": 17})


class TestMixRoundtrip:
    """Every mix must round-trip the prep cache and shm bit-identically."""

    SCALE = 1 / 2048
    ACCESSES = 800

    @pytest.mark.parametrize("name", MIX_NAMES)
    def test_prepared_workload_cache_roundtrip(self, name, tmp_path):
        from repro.harness.runner import prepare_workload_cached

        kwargs = dict(scale=self.SCALE, accesses_per_core=self.ACCESSES,
                      seed=9, cache_dir=tmp_path)
        first = prepare_workload_cached(name, **kwargs)
        assert list(tmp_path.glob("*.pkl")), "expected an on-disk entry"
        second = prepare_workload_cached(name, **kwargs)

        wt_a, wt_b = first.workload_trace, second.workload_trace
        for fld in ("core", "address", "is_write", "gap"):
            assert (getattr(wt_a.trace, fld).tobytes()
                    == getattr(wt_b.trace, fld).tobytes()), fld
        assert wt_a.times.tobytes() == wt_b.times.tobytes()
        assert wt_a.core_benchmarks == wt_b.core_benchmarks
        assert wt_a.core_mlp == wt_b.core_mlp
        assert wt_a.footprint_pages == wt_b.footprint_pages
        assert [tuple(l.spec.name for l in ls) for ls in wt_a.core_layouts] \
            == [tuple(l.spec.name for l in ls) for ls in wt_b.core_layouts]
        assert first.stats.pages.tobytes() == second.stats.pages.tobytes()
        assert first.stats.avf.tobytes() == second.stats.avf.tobytes()
        assert first.ddr_baseline.ipc == second.ddr_baseline.ipc

    @pytest.mark.parametrize("name", MIX_NAMES)
    def test_shm_handoff_roundtrip(self, name):
        import pickle

        from repro.config import knob_overrides
        from repro.harness import shm
        from repro.trace.workloads import Workload

        wt = Workload.mix(name).generate(
            scale=self.SCALE, accesses_per_core=self.ACCESSES, seed=9)
        payload = {"address": wt.trace.address, "is_write": wt.trace.is_write,
                   "gap": wt.trace.gap, "core": wt.trace.core,
                   "times": wt.times}
        with knob_overrides(shm_handoff=True):
            item = shm.share_payload(payload, threshold=8)
        if not isinstance(item, shm.SharedPayload):
            pytest.skip("no shared memory on this platform")
        try:
            clone = pickle.loads(pickle.dumps(item)).load()
            for key, sent in payload.items():
                got = clone[key]
                assert sent.dtype == got.dtype and sent.shape == got.shape
                assert sent.tobytes() == got.tobytes(), key
        finally:
            shm.release_payload(item)
