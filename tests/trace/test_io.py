"""Unit tests for trace persistence (npz and Ramulator-style text)."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.trace.io import load_npz, load_text, save_npz, save_text
from repro.trace.record import Trace


@pytest.fixture
def trace():
    n = 50
    rng = np.random.default_rng(3)
    return Trace(
        core=rng.integers(0, 4, n).astype(np.uint16),
        address=(rng.integers(0, 64, n) * PAGE_SIZE).astype(np.uint64),
        is_write=rng.random(n) < 0.3,
        gap=rng.integers(0, 100, n).astype(np.uint32),
    )


class TestNpz:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_npz(path, trace)
        loaded, times = load_npz(path)
        assert times is None
        for attr in ("core", "address", "is_write", "gap"):
            assert np.array_equal(getattr(loaded, attr), getattr(trace, attr))

    def test_roundtrip_with_times(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        times = np.sort(np.random.default_rng(0).random(len(trace)))
        save_npz(path, trace, times)
        _loaded, loaded_times = load_npz(path)
        assert np.allclose(loaded_times, times)

    def test_times_length_validated(self, trace, tmp_path):
        with pytest.raises(ValueError):
            save_npz(tmp_path / "t.npz", trace, np.zeros(3))

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ValueError):
            load_npz(path)


class TestText:
    def test_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.trace"
        save_text(path, trace)
        loaded = load_text(path)
        assert np.array_equal(loaded.address, trace.address)
        assert np.array_equal(loaded.is_write, trace.is_write)
        assert np.array_equal(loaded.gap, trace.gap)
        assert np.array_equal(loaded.core, trace.core)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("# comment\n\n5 0x1000 R\n3 0x2000 W 2\n")
        loaded = load_text(path)
        assert len(loaded) == 2
        assert loaded.address[0] == 0x1000
        assert bool(loaded.is_write[1]) is True
        assert int(loaded.core[1]) == 2

    def test_core_defaults_to_zero(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 0x40 R\n")
        assert int(load_text(path).core[0]) == 0

    def test_decimal_addresses_accepted(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 4096 W\n")
        assert int(load_text(path).address[0]) == 4096

    def test_bad_type_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 0x40 X\n")
        with pytest.raises(ValueError):
            load_text(path)

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("1 0x40\n")
        with pytest.raises(ValueError):
            load_text(path)
