"""Unit tests for profile JSON serialisation and registration."""

import json

import pytest

from repro.trace.profiles_io import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    region_from_dict,
    region_to_dict,
    register_profile,
    save_profile,
    unregister_profile,
)
from repro.trace.synthetic import RegionSpec
from repro.trace.workloads import PROFILES, BenchmarkProfile, Workload


def sample_profile(name="custom-app"):
    return BenchmarkProfile(
        name=name,
        footprint_mb=128.0,
        mpki=9.5,
        mlp=6,
        regions=(
            RegionSpec(name="index", footprint_share=0.3, hotness=4.0,
                       write_frac=0.1, read_spread=0.6, lines_touched=32),
            RegionSpec(name="log", footprint_share=0.7, hotness=1.0,
                       write_frac=0.8, read_spread=0.05, churn=0.2),
        ),
    )


class TestRegionRoundtrip:
    def test_roundtrip(self):
        region = sample_profile().regions[0]
        assert region_from_dict(region_to_dict(region)) == region

    def test_defaults_omitted(self):
        region = RegionSpec(name="r", footprint_share=0.5, hotness=1.0,
                            write_frac=0.2, read_spread=0.3)
        data = region_to_dict(region)
        assert "zipf_alpha" not in data
        assert "churn" not in data

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError):
            region_from_dict({"name": "r"})

    def test_unknown_field_rejected(self):
        data = region_to_dict(sample_profile().regions[0])
        data["colour"] = "red"
        with pytest.raises(ValueError):
            region_from_dict(data)


class TestProfileRoundtrip:
    def test_roundtrip(self):
        profile = sample_profile()
        assert profile_from_dict(profile_to_dict(profile)) == profile

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "p.json"
        save_profile(path, sample_profile())
        loaded = load_profile(path)
        assert loaded == sample_profile()
        # And the file is plain, hand-editable JSON.
        data = json.loads(path.read_text())
        assert data["name"] == "custom-app"

    def test_mlp_defaults(self):
        data = profile_to_dict(sample_profile())
        del data["mlp"]
        assert profile_from_dict(data).mlp == 4

    def test_missing_regions_rejected(self):
        data = profile_to_dict(sample_profile())
        data["regions"] = []
        with pytest.raises(ValueError):
            profile_from_dict(data)

    def test_missing_name_rejected(self):
        data = profile_to_dict(sample_profile())
        del data["name"]
        with pytest.raises(ValueError):
            profile_from_dict(data)


class TestRegistration:
    def test_register_enables_workload_spec(self):
        profile = sample_profile("reg-test-app")
        try:
            register_profile(profile)
            wl = Workload.spec("reg-test-app", num_cores=2)
            wt = wl.generate(scale=1 / 1024, accesses_per_core=300, seed=0)
            assert len(wt.trace) > 0
        finally:
            unregister_profile("reg-test-app")
        assert "reg-test-app" not in PROFILES

    def test_no_silent_overwrite(self):
        profile = sample_profile("astar")  # collides with a bundled one
        with pytest.raises(ValueError):
            register_profile(profile)
        assert PROFILES["astar"].footprint_mb != 128.0

    def test_explicit_overwrite(self):
        original = PROFILES["astar"]
        try:
            register_profile(sample_profile("astar"), overwrite=True)
            assert PROFILES["astar"].footprint_mb == 128.0
        finally:
            PROFILES["astar"] = original


class TestPropertyRoundtrip:
    """Hypothesis: any valid profile survives the JSON round-trip."""

    def test_random_profiles_roundtrip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        region_st = st.builds(
            RegionSpec,
            name=st.text(alphabet="abcdefgh_", min_size=1, max_size=12),
            footprint_share=st.floats(0.01, 1.0),
            hotness=st.floats(0.0, 50.0),
            write_frac=st.floats(0.0, 1.0),
            read_spread=st.floats(0.0, 1.0),
            # zipf_alpha must be positive since the up-front range
            # validation landed; alpha -> 0 approaches uniform.
            zipf_alpha=st.floats(0.01, 2.0),
            lines_touched=st.integers(1, 64),
            churn=st.floats(0.0, 1.0),
        )
        profile_st = st.builds(
            BenchmarkProfile,
            name=st.text(alphabet="abcdefgh-", min_size=1, max_size=16),
            footprint_mb=st.floats(1.0, 2048.0),
            mpki=st.floats(0.1, 60.0),
            mlp=st.integers(1, 16),
            regions=st.lists(region_st, min_size=1, max_size=6).map(tuple),
        )

        @settings(max_examples=30, deadline=None)
        @given(profile=profile_st)
        def check(profile):
            assert profile_from_dict(profile_to_dict(profile)) == profile

        check()
