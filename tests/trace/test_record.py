"""Unit tests for trace records and batched traces."""

import numpy as np
import pytest

from repro.config import LINE_SIZE, PAGE_SIZE
from repro.trace.record import Trace, TraceRecord


def make_trace(n=10, page_stride=1):
    addresses = np.arange(n, dtype=np.uint64) * PAGE_SIZE * page_stride
    return Trace(
        core=np.zeros(n, dtype=np.uint16),
        address=addresses,
        is_write=np.arange(n) % 2 == 0,
        gap=np.full(n, 5, dtype=np.uint32),
    )


class TestTraceRecord:
    def test_line_and_page(self):
        r = TraceRecord(core=0, address=PAGE_SIZE + 3 * LINE_SIZE,
                        is_write=False, gap_instructions=10)
        assert r.page == 1
        assert r.line == PAGE_SIZE // LINE_SIZE + 3


class TestTrace:
    def test_length(self):
        assert len(make_trace(7)) == 7

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Trace(
                core=np.zeros(3, dtype=np.uint16),
                address=np.zeros(4, dtype=np.uint64),
                is_write=np.zeros(4, dtype=bool),
                gap=np.zeros(4, dtype=np.uint32),
            )

    def test_pages_and_lines(self):
        t = make_trace(4)
        assert list(t.pages) == [0, 1, 2, 3]
        assert list(t.lines) == [0, 64, 128, 192]

    def test_total_instructions_counts_gaps_and_requests(self):
        t = make_trace(10)
        assert t.total_instructions == 10 * 5 + 10

    def test_mpki(self):
        t = make_trace(10)
        assert t.mpki() == pytest.approx(1000 * 10 / 60)

    def test_mpki_empty(self):
        assert Trace.empty().mpki() == 0.0

    def test_footprint_pages_unique_sorted(self):
        addresses = np.array([PAGE_SIZE * 2, 0, PAGE_SIZE * 2], dtype=np.uint64)
        t = Trace(
            core=np.zeros(3, dtype=np.uint16),
            address=addresses,
            is_write=np.zeros(3, dtype=bool),
            gap=np.zeros(3, dtype=np.uint32),
        )
        assert list(t.footprint_pages()) == [0, 2]

    def test_iteration_yields_records(self):
        t = make_trace(3)
        records = list(t)
        assert all(isinstance(r, TraceRecord) for r in records)
        assert records[0].is_write is True
        assert records[1].is_write is False

    def test_slice(self):
        t = make_trace(10)
        s = t.slice(2, 5)
        assert len(s) == 3
        assert s.address[0] == t.address[2]

    def test_concatenate(self):
        a, b = make_trace(3), make_trace(4)
        c = Trace.concatenate([a, b])
        assert len(c) == 7
        assert list(c.address[:3]) == list(a.address)

    def test_concatenate_empty_list(self):
        assert len(Trace.concatenate([])) == 0

    def test_from_records_roundtrip(self):
        t = make_trace(5)
        t2 = Trace.from_records(list(t))
        assert np.array_equal(t.address, t2.address)
        assert np.array_equal(t.is_write, t2.is_write)
        assert np.array_equal(t.gap, t2.gap)
        assert np.array_equal(t.core, t2.core)

    def test_empty(self):
        t = Trace.empty()
        assert len(t) == 0
        assert t.total_instructions == 0
