"""Unit and property tests for the synthetic trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LINES_PER_PAGE, PAGE_SIZE
from repro.trace.synthetic import (
    GeneratorParams,
    RegionSpec,
    TraceGenerator,
    _zipf_weights,
    interleave_cores,
    layout_regions,
)


def region(name="r", share=1.0, hot=1.0, wf=0.3, spread=0.5, **kw):
    return RegionSpec(
        name=name, footprint_share=share, hotness=hot,
        write_frac=wf, read_spread=spread, **kw,
    )


class TestRegionSpec:
    @pytest.mark.parametrize("kwargs", [
        dict(footprint_share=0.0),
        dict(footprint_share=1.5),
        dict(hotness=-1.0),
        dict(write_frac=1.2),
        dict(read_spread=-0.1),
        dict(lines_touched=0),
        dict(lines_touched=65),
        dict(churn=2.0),
        # Up-front range validation: zipf_alpha must be positive and
        # finite, and NaNs must not slip through any range check.
        dict(zipf_alpha=0.0),
        dict(zipf_alpha=-0.5),
        dict(zipf_alpha=float("nan")),
        dict(zipf_alpha=float("inf")),
        dict(hotness=float("nan")),
        dict(footprint_share=float("nan")),
        dict(write_frac=float("nan")),
        dict(read_spread=float("nan")),
        dict(churn=float("nan")),
    ])
    def test_validation(self, kwargs):
        base = dict(name="x", footprint_share=0.5, hotness=1.0,
                    write_frac=0.5, read_spread=0.5)
        base.update(kwargs)
        with pytest.raises(ValueError):
            RegionSpec(**base)

    def test_validation_message_names_region_and_value(self):
        with pytest.raises(ValueError, match="x: zipf_alpha.*-1.0"):
            region(name="x", zipf_alpha=-1.0)


class TestZipfWeights:
    def test_normalised(self):
        w = _zipf_weights(100, 0.8)
        assert w.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = _zipf_weights(50, 0.8)
        assert np.all(np.diff(w) <= 0)

    def test_alpha_zero_uniform(self):
        w = _zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)


class TestLayoutRegions:
    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError, match="at least one region"):
            layout_regions([], 100)

    @pytest.mark.parametrize("pages", [0, -1, -100])
    def test_non_positive_footprint_rejected(self, pages):
        with pytest.raises(ValueError, match="footprint_pages"):
            layout_regions([region("a", 1.0)], pages)

    def test_sizes_sum_to_footprint(self):
        regions = [region("a", 0.5), region("b", 0.3), region("c", 0.2)]
        layouts = layout_regions(regions, 100)
        assert sum(l.num_pages for l in layouts) == 100

    def test_contiguous_non_overlapping(self):
        regions = [region("a", 0.6), region("b", 0.4)]
        layouts = layout_regions(regions, 37, first_page=10)
        assert layouts[0].first_page == 10
        assert layouts[1].first_page == 10 + layouts[0].num_pages

    def test_shares_respected(self):
        regions = [region("a", 0.75), region("b", 0.25)]
        layouts = layout_regions(regions, 100)
        assert layouts[0].num_pages == 75
        assert layouts[1].num_pages == 25

    def test_largest_remainder_does_not_dump_slack(self):
        # 48 equal small regions + one larger: slack must spread out.
        regions = [region(f"g{i}", 0.016) for i in range(48)]
        regions.append(region("big", 0.232))
        layouts = layout_regions(regions, 120)
        sizes = [l.num_pages for l in layouts]
        assert sum(sizes) == 120
        assert max(sizes[:-1]) <= 3  # small regions stay small

    def test_every_region_gets_a_page(self):
        regions = [region("a", 0.999), region("b", 0.001)]
        layouts = layout_regions(regions, 10)
        assert all(l.num_pages >= 1 for l in layouts)

    def test_footprint_too_small(self):
        with pytest.raises(ValueError):
            layout_regions([region("a"), region("b", 0.5)], 1)

    def test_contains(self):
        layouts = layout_regions([region("a")], 10, first_page=5)
        assert layouts[0].contains(5)
        assert layouts[0].contains(14)
        assert not layouts[0].contains(15)
        assert layouts[0].last_page == 14


class TestGeneratorParams:
    @pytest.mark.parametrize("kwargs", [
        dict(target_accesses=0, mpki=1.0),
        dict(target_accesses=-5, mpki=1.0),
        dict(target_accesses=10, mpki=0.0),
        dict(target_accesses=10, mpki=-2.0),
        dict(target_accesses=10, mpki=float("nan")),
        dict(target_accesses=10, mpki=float("inf")),
        dict(target_accesses=10, mpki=1.0, phases=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorParams(**kwargs)


def generate(regions, pages=64, accesses=5000, seed=0, mpki=10.0, phases=8):
    gen = TraceGenerator(
        regions, pages,
        GeneratorParams(target_accesses=accesses, mpki=mpki, seed=seed,
                        phases=phases),
    )
    return gen.generate()


class TestTraceGenerator:
    def test_access_count_close_to_target(self):
        out = generate([region()], accesses=5000)
        assert len(out.trace) == pytest.approx(5000, rel=0.02)

    def test_addresses_within_footprint(self):
        out = generate([region()], pages=64)
        assert out.trace.pages.max() < 64

    def test_write_fraction_tracks_spec(self):
        out = generate([region(wf=0.4)], accesses=20000)
        measured = out.trace.is_write.mean()
        assert measured == pytest.approx(0.4, abs=0.05)

    def test_read_only_region_has_no_writes(self):
        out = generate([region(wf=0.0)], accesses=5000)
        assert out.trace.is_write.sum() == 0

    def test_times_sorted_in_window(self):
        out = generate([region()])
        assert np.all(np.diff(out.times) >= 0)
        assert out.times.min() >= 0.0
        assert out.times.max() <= 1.0

    def test_deterministic_per_seed(self):
        a = generate([region()], seed=3)
        b = generate([region()], seed=3)
        assert np.array_equal(a.trace.address, b.trace.address)
        assert np.array_equal(a.times, b.times)

    def test_different_seeds_differ(self):
        a = generate([region()], seed=1)
        b = generate([region()], seed=2)
        assert not np.array_equal(a.trace.address, b.trace.address)

    def test_mpki_tracks_spec(self):
        out = generate([region()], accesses=20000, mpki=8.0)
        assert out.trace.mpki() == pytest.approx(8.0, rel=0.1)

    def test_lines_touched_limit(self):
        spec = RegionSpec(name="r", footprint_share=1.0, hotness=1.0,
                          write_frac=0.3, read_spread=0.5, lines_touched=4)
        out = generate([spec], pages=8, accesses=4000)
        lines_in_page = out.trace.lines % LINES_PER_PAGE
        per_page = {}
        for page, line in zip(out.trace.pages, lines_in_page):
            per_page.setdefault(int(page), set()).add(int(line))
        assert max(len(s) for s in per_page.values()) <= 4

    def test_hot_region_gets_more_traffic(self):
        out = generate(
            [region("hot", 0.5, hot=10.0), region("cold", 0.5, hot=0.1)],
            pages=100, accesses=20000,
        )
        hot_layout, cold_layout = out.layouts
        pages = out.trace.pages
        hot_count = ((pages >= hot_layout.first_page)
                     & (pages <= hot_layout.last_page)).sum()
        assert hot_count > 0.8 * len(pages)

    def test_bursty_pages_concentrate_in_phase(self):
        out = generate([region(churn=1.0)], pages=32, accesses=8000, phases=8)
        pages = out.trace.pages
        times = out.times
        spans = []
        for p in np.unique(pages):
            t = times[pages == p]
            spans.append(t.max() - t.min())
        # All pages bursty: activity confined to ~1/8 of the window.
        assert np.median(spans) < 0.2

    def test_zero_churn_spans_window(self):
        out = generate([region(churn=0.0)], pages=16, accesses=8000)
        pages, times = out.trace.pages, out.times
        spans = [np.ptp(times[pages == p]) for p in np.unique(pages)]
        assert np.median(spans) > 0.6


class TestInterleaveCores:
    def test_merged_sorted_by_time(self):
        a = generate([region()], seed=1)
        b = generate([region()], seed=2)
        merged, times = interleave_cores([a, b])
        assert len(merged) == len(a.trace) + len(b.trace)
        assert np.all(np.diff(times) >= 0)

    def test_core_ids_assigned_by_position(self):
        a = generate([region()], seed=1)
        b = generate([region()], seed=2)
        merged, _ = interleave_cores([a, b])
        assert set(np.unique(merged.core)) == {0, 1}

    def test_empty(self):
        merged, times = interleave_cores([])
        assert len(merged) == 0
        assert len(times) == 0


@settings(max_examples=20, deadline=None)
@given(
    wf=st.floats(min_value=0.0, max_value=1.0),
    spread=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
def test_generator_invariants(wf, spread, seed):
    """Every generated trace is sorted, in-footprint, and near target."""
    out = generate([region(wf=wf, spread=spread)], pages=32,
                   accesses=2000, seed=seed)
    assert np.all(np.diff(out.times) >= 0)
    assert out.trace.pages.max() < 32
    assert len(out.trace) == pytest.approx(2000, rel=0.05)
    measured_wf = out.trace.is_write.mean()
    assert measured_wf == pytest.approx(wf, abs=0.08)


class TestStableTimeArgsort:
    """uint64-view argsort must equal the float stable argsort exactly."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(0, 500))
    def test_matches_float_sort(self, seed, n):
        from repro.trace.synthetic import _stable_time_argsort

        rng = np.random.default_rng(seed)
        # Duplicates on purpose: stability must match too.
        t = rng.choice(rng.random(max(1, n // 4 + 1)), size=n)
        got = _stable_time_argsort(t)
        want = np.argsort(t, kind="stable")
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("t", [
        np.array([]),                                   # empty
        np.array([0.3, -0.0, 0.1]),                     # -0.0 falls back
        np.array([0.3, -1.0, 0.1]),                     # negative
        np.array([0.3, np.nan, 0.1]),                   # NaN
        np.array([0.3, np.inf, 0.1]),                   # inf
        np.array([3, 1, 2], dtype=np.int64),            # non-float dtype
    ])
    def test_fallback_domains_still_sort(self, t):
        from repro.trace.synthetic import _stable_time_argsort

        got = _stable_time_argsort(t)
        want = np.argsort(t, kind="stable")
        assert np.array_equal(got, want)
