"""Unit tests for the SimPoint-style representative-interval picker."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.trace.record import Trace
from repro.trace.simpoints import (
    KMeans,
    estimate_with_simpoints,
    interval_vectors,
    pick_simpoints,
)


def phased_trace(phase_pages=((0, 1), (8, 9)), per_phase=200,
                 repeats=3, write_frac=0.25, seed=0):
    """A trace alternating between page-set phases."""
    rng = np.random.default_rng(seed)
    pages = []
    for _ in range(repeats):
        for phase in phase_pages:
            pages.extend(rng.choice(phase, per_phase))
    pages = np.array(pages, dtype=np.uint64)
    n = len(pages)
    return Trace(
        core=np.zeros(n, dtype=np.uint16),
        address=pages * PAGE_SIZE,
        is_write=rng.random(n) < write_frac,
        gap=np.full(n, 10, dtype=np.uint32),
    )


class TestIntervalVectors:
    def test_shapes(self):
        trace = phased_trace()
        feats = interval_vectors(trace, 100)
        assert feats.vectors.shape[0] == len(trace) // 100
        assert feats.vectors.shape[1] == len(feats.pages)

    def test_rows_normalised(self):
        feats = interval_vectors(phased_trace(), 100)
        assert np.allclose(feats.vectors.sum(axis=1), 1.0)

    def test_bounds_cover_trace(self):
        trace = phased_trace()
        feats = interval_vectors(trace, 130)
        assert feats.bounds[0][0] == 0
        assert feats.bounds[-1][1] == len(trace)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            interval_vectors(phased_trace(), 0)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            interval_vectors(Trace.empty(), 10)


class TestKMeans:
    def test_separates_clear_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.1, (30, 2))
        b = rng.normal(5.0, 0.1, (30, 2))
        labels = KMeans(k=2, seed=1).fit(np.vstack([a, b]))
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_k_clamped_to_data(self):
        km = KMeans(k=10)
        labels = km.fit(np.zeros((3, 2)))
        assert km.k == 3
        assert len(labels) == 3

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KMeans(k=0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KMeans(k=2).fit(np.zeros((0, 3)))

    def test_deterministic_per_seed(self):
        data = np.random.default_rng(2).random((40, 3))
        a = KMeans(k=3, seed=5).fit(data)
        b = KMeans(k=3, seed=5).fit(data)
        assert np.array_equal(a, b)


class TestPickSimpoints:
    def test_two_phases_give_two_clusters(self):
        trace = phased_trace(per_phase=200, repeats=3)
        simpoints, feats = pick_simpoints(trace, interval_length=200, k=2)
        assert len(simpoints) == 2
        # Representatives come from different phases.
        reps = [feats.vectors[sp.interval].argmax() for sp in simpoints]
        assert reps[0] != reps[1]

    def test_weights_sum_to_one(self):
        trace = phased_trace()
        simpoints, _ = pick_simpoints(trace, interval_length=150, k=3)
        assert sum(sp.weight for sp in simpoints) == pytest.approx(1.0)

    def test_balanced_phases_get_balanced_weights(self):
        trace = phased_trace(per_phase=200, repeats=4)
        simpoints, _ = pick_simpoints(trace, interval_length=200, k=2)
        for sp in simpoints:
            assert sp.weight == pytest.approx(0.5, abs=0.15)


class TestEstimate:
    def test_estimates_write_fraction(self):
        """The weighted simpoint estimate tracks the full-trace value
        — the reason SimPoints work."""
        trace = phased_trace(per_phase=300, repeats=4, write_frac=0.3,
                             seed=9)
        simpoints, feats = pick_simpoints(trace, interval_length=300, k=2)
        true_value = float(trace.is_write.mean())
        estimate = estimate_with_simpoints(
            trace, simpoints, feats,
            statistic=lambda t: float(t.is_write.mean()),
        )
        assert estimate == pytest.approx(true_value, abs=0.05)

    def test_estimates_mpki(self):
        trace = phased_trace(per_phase=300, repeats=4, seed=3)
        simpoints, feats = pick_simpoints(trace, interval_length=300, k=2)
        estimate = estimate_with_simpoints(
            trace, simpoints, feats, statistic=lambda t: t.mpki(),
        )
        assert estimate == pytest.approx(trace.mpki(), rel=0.1)

    def test_requires_simpoints(self):
        trace = phased_trace()
        _, feats = pick_simpoints(trace, interval_length=200, k=2)
        with pytest.raises(ValueError):
            estimate_with_simpoints(trace, [], feats, lambda t: 0.0)
