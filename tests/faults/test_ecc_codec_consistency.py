"""Cross-validation: the fault simulator's behavioural ECC rules match
the real codecs on sampled fault patterns.

The Monte-Carlo simulator classifies faults by component
(``ecc.SecDed`` / ``ecc.ChipKill``); these tests replay representative
fault geometries through the actual (72,64) Hsiao and GF(256)
Reed-Solomon implementations and check the behavioural rules hold.
"""

import numpy as np
import pytest

from repro.faults.ecc import ChipKill, Outcome, SecDed
from repro.faults.fit import FaultComponent
from repro.faults import hamming
from repro.faults.reed_solomon import ChipKillCode


def data_word(seed):
    return np.random.default_rng(seed).integers(0, 2, 64).astype(np.uint8)


class TestSecDedRules:
    def test_bit_fault_rule(self):
        """Behavioural rule: BIT -> CORRECTED.  Codec: every single-bit
        flip decodes back to the original data."""
        assert SecDed().classify_single(FaultComponent.BIT) \
            is Outcome.CORRECTED
        rng = np.random.default_rng(0)
        for _ in range(20):
            data = data_word(int(rng.integers(1000)))
            bit = int(rng.integers(hamming.CODE_BITS))
            result = hamming.decode(hamming.inject(hamming.encode(data), [bit]))
            assert result.outcome is Outcome.CORRECTED
            assert np.array_equal(result.data, data)

    def test_word_fault_rule(self):
        """Behavioural rule: WORD (multi-bit in one codeword) ->
        DETECTED.  Codec: 2-bit patterns are always detected; wider
        chip-contribution patterns are detected or alias (never return
        the original data as 'corrected')."""
        assert SecDed().classify_single(FaultComponent.WORD) \
            is Outcome.DETECTED
        rng = np.random.default_rng(1)
        detected = 0
        for _ in range(40):
            data = data_word(int(rng.integers(1000)))
            # A chip's contribution: a run of adjacent data bits.
            start = int(rng.integers(0, 56))
            width = int(rng.integers(2, 9))
            bits = list(range(start, start + width))
            result = hamming.decode(
                hamming.inject(hamming.encode(data), bits)
            )
            if result.outcome is Outcome.DETECTED:
                detected += 1
            else:
                # Aliasing is the SDC escape the UNCORRECTED rule for
                # chip-level faults accounts for.
                assert hamming.miscorrection_possible(bits)
        assert detected > 0

    def test_structural_fault_rule_has_sdc_escapes(self):
        """Behavioural rule: chip-level faults -> UNCORRECTED (not just
        DETECTED), because some multi-bit patterns alias to clean or
        single-bit syndromes and silently corrupt data."""
        aliasing = [
            bits for bits in (
                [0, 1, 2], [3, 7, 12], [0, 8, 16, 24], [5, 6, 7, 8],
                [1, 2, 3, 4, 5], [10, 20, 30], [0, 1, 2, 3, 4, 5, 6, 7],
            )
            if hamming.miscorrection_possible(bits)
        ]
        # At least one realistic multi-bit pattern escapes detection.
        found_escape = False
        rng = np.random.default_rng(2)
        for _ in range(400):
            width = int(rng.integers(3, 9))
            bits = sorted(rng.choice(hamming.CODE_BITS, width,
                                     replace=False).tolist())
            if hamming.miscorrection_possible(bits):
                found_escape = True
                break
        assert found_escape or aliasing


class TestChipKillRules:
    CODE = ChipKillCode(data_symbols=16)

    def test_single_chip_rule(self):
        """Behavioural rule: any single-chip fault -> CORRECTED.
        Codec: arbitrary garbage in one symbol always decodes."""
        assert ChipKill().classify_single(FaultComponent.BANK) \
            is Outcome.CORRECTED
        rng = np.random.default_rng(3)
        for _ in range(30):
            data = rng.integers(0, 256, 16).astype(np.uint8)
            symbol = int(rng.integers(18))
            value = int(rng.integers(1, 256))
            result = self.CODE.decode(
                self.CODE.inject(self.CODE.encode(data), {symbol: value})
            )
            assert result.outcome is Outcome.CORRECTED
            assert np.array_equal(result.data, data)

    def test_cross_chip_pair_rule(self):
        """Behavioural rule: overlapping faults on two chips can be
        uncorrectable.  Codec: two corrupted symbols are never
        silently returned as the original data."""
        assert ChipKill().pair_uncorrectable(
            FaultComponent.BANK, FaultComponent.BANK, False,
            __import__("repro.faults.ecc", fromlist=["ChipGeometry"])
            .ChipGeometry(),
        ) > 0
        rng = np.random.default_rng(4)
        silent_ok = 0
        for _ in range(30):
            data = rng.integers(0, 256, 16).astype(np.uint8)
            a, b = rng.choice(18, 2, replace=False)
            corrupted = self.CODE.inject(
                self.CODE.encode(data),
                {int(a): int(rng.integers(1, 256)),
                 int(b): int(rng.integers(1, 256))},
            )
            result = self.CODE.decode(corrupted)
            if (result.outcome is Outcome.CORRECTED
                    and np.array_equal(result.data, data)):
                silent_ok += 1
        assert silent_ok == 0
