"""Property tests for the budget-driven ECC selector.

Two families: (1) hypothesis suites asserting monotonicity — a
tighter FIT budget never selects a weaker (cheaper) scheme and a
looser one never selects a strictly dominated scheme — and (2) a
bit-identity check that a system whose ECC came from a budget runs the
FaultSimulator to the exact tallies of the same scheme named
explicitly.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ddr3_config, default_config, hbm_config
from repro.faults.cost import cost_of
from repro.faults.ecc import SCHEME_LADDER
from repro.faults.faultsim import FaultSimulator, uncorrected_fit_per_page
from repro.faults.selector import EccSelector, select_system_ecc

MEMORIES = {"hbm": hbm_config(), "ddr": ddr3_config()}

budgets = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                    allow_infinity=False)
memory_names = st.sampled_from(sorted(MEMORIES))


def ladder_index(scheme):
    return SCHEME_LADDER.index(scheme)


class TestSelectorMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(lo=budgets, hi=budgets, name=memory_names)
    def test_tightening_never_weakens_the_code(self, lo, hi, name):
        lo, hi = min(lo, hi), max(lo, hi)
        memory = MEMORIES[name]
        tight = EccSelector(lo).select(memory)
        loose = EccSelector(hi).select(memory)
        assert ladder_index(tight) >= ladder_index(loose)

    @settings(max_examples=40, deadline=None)
    @given(budget=budgets, name=memory_names)
    def test_selection_is_never_strictly_dominated(self, budget, name):
        # No other feasible scheme may be at-or-under the pick on both
        # FIT and cost while strictly better on one.
        memory = MEMORIES[name]
        selector = EccSelector(budget)
        evals = {e.scheme: e for e in selector.evaluate(memory)}
        pick = evals[selector.select(memory)]
        feasible = [e for e in evals.values() if e.meets(budget)]
        for other in feasible:
            if other.scheme == pick.scheme:
                continue
            dominates = (other.cost.total <= pick.cost.total
                         and other.fit_per_page <= pick.fit_per_page
                         and (other.cost.total < pick.cost.total
                              or other.fit_per_page < pick.fit_per_page))
            assert not dominates, (pick.scheme, other.scheme)

    @settings(max_examples=40, deadline=None)
    @given(budget=budgets, name=memory_names)
    def test_cheapest_feasible_equals_weakest_feasible(self, budget, name):
        # The ladder's opposing monotone orders collapse the two
        # selection rules into one; this is the load-bearing identity.
        memory = MEMORIES[name]
        evals = EccSelector(budget).evaluate(memory)
        feasible = [e for e in evals if e.meets(budget)]
        if not feasible:
            return
        weakest = min(feasible, key=lambda e: ladder_index(e.scheme))
        cheapest = min(feasible, key=lambda e: e.cost.total)
        assert weakest.scheme == cheapest.scheme


class TestSelectorBehaviour:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EccSelector(-1e-9)

    def test_unmeetable_budget_falls_back_to_strongest(self):
        memory = hbm_config()
        selector = EccSelector(0.0)
        assert not selector.meets_budget(memory)
        assert selector.select(memory) == SCHEME_LADDER[-1]

    def test_infinite_budget_selects_free_scheme(self):
        selector = EccSelector(1e9)
        assert selector.select(hbm_config()) == "none"
        assert selector.meets_budget(hbm_config())

    def test_apply_replaces_only_the_ecc_field(self):
        memory = hbm_config()
        derived = EccSelector(1e9).apply(memory)
        assert derived.ecc == "none"
        assert dataclasses.replace(derived, ecc=memory.ecc) == memory

    def test_evaluations_follow_ladder_order(self):
        evals = EccSelector(1.0).evaluate(hbm_config())
        assert tuple(e.scheme for e in evals) == SCHEME_LADDER
        for e in evals:
            assert e.cost == cost_of(e.scheme)

    def test_budget_boundary_is_inclusive(self):
        memory = hbm_config()
        fit = uncorrected_fit_per_page(
            dataclasses.replace(memory, ecc="secded"), analytic=True)
        assert EccSelector(fit).select(memory) == "secded"

    def test_select_system_ecc_covers_both_tiers(self):
        config = select_system_ecc(default_config(), 1e9)
        assert config.fast_memory.ecc == "none"
        assert config.slow_memory.ecc == "none"

    def test_select_system_ecc_split_budgets(self):
        config = select_system_ecc(default_config(), 0.0,
                                   slow_budget_fit_per_page=1e9)
        assert config.fast_memory.ecc == SCHEME_LADDER[-1]
        assert config.slow_memory.ecc == "none"


class TestBudgetVsExplicitBitIdentity:
    """A budget-derived scheme must be indistinguishable downstream."""

    @pytest.mark.parametrize("budget", (1e9, 4e-4, 0.0))
    def test_faultsim_tallies_identical(self, budget):
        memory = hbm_config()
        scheme = EccSelector(budget).select(memory)
        derived = EccSelector(budget).apply(memory)
        explicit = dataclasses.replace(memory, ecc=scheme)
        assert derived == explicit
        a = FaultSimulator(derived, seed=7).run(trials=2000)
        b = FaultSimulator(explicit, seed=7).run(trials=2000)
        assert a == b

    def test_prepare_workload_budget_path(self):
        from repro.config import scaled_config
        from repro.sim.system import prepare_workload

        small = dict(accesses_per_core=400, scale=1 / 4096, seed=3)
        budgeted = prepare_workload("astar", ecc_budget=1e9, **small)
        assert budgeted.config.fast_memory.ecc == "none"
        assert budgeted.config.slow_memory.ecc == "none"
        explicit_config = select_system_ecc(scaled_config(1 / 4096), 1e9)
        explicit = prepare_workload("astar", config=explicit_config, **small)
        assert budgeted.config == explicit.config
        assert (budgeted.workload_trace.trace.address ==
                explicit.workload_trace.trace.address).all()
