"""Unit tests for ECC fault classification and footprint overlap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.ecc import (
    ChipGeometry,
    ChipKill,
    NoEcc,
    Outcome,
    SecDed,
    footprint_overlap_probability,
    make_scheme,
)
from repro.faults.fit import FaultComponent

GEO = ChipGeometry()
COMPONENTS = list(FaultComponent)


class TestNoEcc:
    def test_everything_uncorrected(self):
        scheme = NoEcc()
        for c in COMPONENTS:
            assert scheme.classify_single(c) is Outcome.UNCORRECTED


class TestSecDed:
    def test_single_bit_corrected(self):
        assert SecDed().classify_single(FaultComponent.BIT) is Outcome.CORRECTED

    def test_word_fault_detected(self):
        assert SecDed().classify_single(FaultComponent.WORD) is Outcome.DETECTED

    @pytest.mark.parametrize("component", [
        FaultComponent.COLUMN, FaultComponent.ROW,
        FaultComponent.BANK, FaultComponent.RANK,
    ])
    def test_structural_faults_uncorrected(self, component):
        assert SecDed().classify_single(component) is Outcome.UNCORRECTED

    def test_two_bit_faults_can_combine(self):
        p = SecDed().pair_uncorrectable(
            FaultComponent.BIT, FaultComponent.BIT, False, GEO
        )
        assert 0 < p < 1e-6  # same-codeword collision is rare

    def test_non_bit_pairs_add_nothing(self):
        p = SecDed().pair_uncorrectable(
            FaultComponent.ROW, FaultComponent.COLUMN, False, GEO
        )
        assert p == 0.0


class TestChipKill:
    def test_single_chip_faults_corrected(self):
        scheme = ChipKill()
        for c in (FaultComponent.BIT, FaultComponent.WORD,
                  FaultComponent.COLUMN, FaultComponent.ROW,
                  FaultComponent.BANK):
            assert scheme.classify_single(c) is Outcome.CORRECTED

    def test_rank_fault_uncorrected(self):
        # Rank-wide (multi-chip) faults exceed single-symbol correction.
        assert ChipKill().classify_single(FaultComponent.RANK) \
            is Outcome.UNCORRECTED

    def test_same_chip_pair_still_one_symbol(self):
        p = ChipKill().pair_uncorrectable(
            FaultComponent.ROW, FaultComponent.BANK, True, GEO
        )
        assert p == 0.0

    def test_cross_chip_pair_can_fail(self):
        p = ChipKill().pair_uncorrectable(
            FaultComponent.BANK, FaultComponent.BANK, False, GEO
        )
        assert p > 0.0


class TestOverlapProbability:
    def test_rank_overlaps_everything(self):
        p = footprint_overlap_probability(
            FaultComponent.RANK, FaultComponent.RANK, GEO
        )
        assert p == 1.0

    def test_row_and_column_same_bank_cross(self):
        # A row and a column in the same bank always intersect.
        p = footprint_overlap_probability(
            FaultComponent.ROW, FaultComponent.COLUMN, GEO
        )
        assert p == pytest.approx(1.0 / GEO.banks)

    def test_bank_vs_bit(self):
        p = footprint_overlap_probability(
            FaultComponent.BANK, FaultComponent.BIT, GEO
        )
        assert p == pytest.approx(1.0 / GEO.banks)

    def test_two_bits_rarely_meet(self):
        p = footprint_overlap_probability(
            FaultComponent.BIT, FaultComponent.BIT, GEO
        )
        assert p < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(a=st.sampled_from(COMPONENTS), b=st.sampled_from(COMPONENTS))
    def test_symmetric_and_bounded(self, a, b):
        p_ab = footprint_overlap_probability(a, b, GEO)
        p_ba = footprint_overlap_probability(b, a, GEO)
        assert p_ab == pytest.approx(p_ba)
        assert 0.0 <= p_ab <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(a=st.sampled_from(COMPONENTS), b=st.sampled_from(COMPONENTS))
    def test_wider_footprints_overlap_more(self, a, b):
        """Overlap with RANK (the widest fault) upper-bounds overlap
        with any narrower component."""
        p = footprint_overlap_probability(a, b, GEO)
        p_rank = footprint_overlap_probability(a, FaultComponent.RANK, GEO)
        assert p <= p_rank + 1e-12


class TestGeometry:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ChipGeometry(banks=0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("none", NoEcc), ("secded", SecDed), ("chipkill", ChipKill),
    ])
    def test_known(self, name, cls):
        assert isinstance(make_scheme(name), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scheme("hamming")
