"""Unit tests for the Monte-Carlo fault simulator."""

import pytest

from repro.config import ddr3_config, hbm_config
from repro.faults.faultsim import (FaultSimulator,
                                   resolve_fault_trials,
                                   resolve_faultsim_method,
                                   uncorrected_fit_per_page)


class TestAnalytic:
    def test_secded_analytic_equals_multibit_rate(self):
        """For SEC-DED the dominant analytic term is the single-fault
        uncorrected rate (column + row + bank + rank)."""
        hbm = hbm_config()
        sim = FaultSimulator(hbm, seed=1)
        expected_singles = (
            (sim.rates.column + sim.rates.row + sim.rates.bank
             + sim.rates.rank)
            * 1e-9 * sim.chips * sim.mission_hours
        )
        analytic = sim.analytic_uncorrected_per_mission()
        assert analytic == pytest.approx(expected_singles, rel=0.05)

    def test_chipkill_much_stronger_than_secded(self):
        from dataclasses import replace

        ddr = ddr3_config()
        chipkill = FaultSimulator(ddr, seed=1).analytic_uncorrected_per_mission()
        weak = replace(ddr, ecc="secded")
        secded = FaultSimulator(weak, seed=1).analytic_uncorrected_per_mission()
        assert secded > 5 * chipkill


class TestMonteCarlo:
    def test_matches_analytic_for_secded(self):
        sim = FaultSimulator(hbm_config(), seed=3)
        result = sim.run(trials=60_000)
        analytic = sim.analytic_uncorrected_per_mission()
        assert result.expected_uncorrected_per_mission == pytest.approx(
            analytic, rel=0.25
        )

    def test_outcome_accounting(self):
        sim = FaultSimulator(hbm_config(), seed=5)
        result = sim.run(trials=30_000)
        # Single-bit faults dominate and are corrected by SEC-DED.
        assert result.corrected > result.uncorrected

    def test_uncorrected_fit_positive(self):
        sim = FaultSimulator(hbm_config(), seed=2)
        result = sim.run(trials=30_000)
        assert result.uncorrected_fit_per_rank() > 0

    def test_p_uncorrected_bounded(self):
        sim = FaultSimulator(hbm_config(), seed=2)
        result = sim.run(trials=10_000)
        assert 0.0 <= result.p_uncorrected <= 1.0

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            FaultSimulator(hbm_config()).run(trials=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FaultSimulator(hbm_config(), overlap_window_hours=0.0)


class TestPerPageFit:
    def test_hbm_vs_ddr_ratio_is_large(self):
        """The reliability gap that produces the paper's ~287x SER
        blow-up: HBM+SEC-DED pages fail uncorrected orders of magnitude
        more often than DDR+ChipKill pages."""
        hbm = uncorrected_fit_per_page(hbm_config(), analytic=True)
        ddr = uncorrected_fit_per_page(ddr3_config(), analytic=True)
        assert hbm / ddr > 100

    def test_analytic_and_monte_carlo_agree_secded(self):
        a = uncorrected_fit_per_page(hbm_config(), analytic=True)
        m = uncorrected_fit_per_page(hbm_config(), trials=60_000, seed=9)
        assert m == pytest.approx(a, rel=0.3)

    def test_scale_invariance_of_ratio(self):
        """Scaling capacities leaves the per-page FIT *ratio* intact."""
        from repro.config import scaled_config

        full_hbm = uncorrected_fit_per_page(hbm_config(), analytic=True)
        full_ddr = uncorrected_fit_per_page(ddr3_config(), analytic=True)
        small = scaled_config(1 / 1024)
        small_hbm = uncorrected_fit_per_page(small.fast_memory, analytic=True)
        small_ddr = uncorrected_fit_per_page(small.slow_memory, analytic=True)
        assert full_hbm / full_ddr == pytest.approx(
            small_hbm / small_ddr, rel=0.01
        )


class TestBatchedKernel:
    """The batched run() vs the retained per-trial reference loop."""

    def test_same_seed_same_fault_counts(self):
        """Both kernels draw the identical Poisson counts matrix, so
        the corrected/detected tallies match exactly."""
        ref = FaultSimulator(hbm_config(), seed=11).run(
            trials=20_000, method="reference")
        bat = FaultSimulator(hbm_config(), seed=11).run(
            trials=20_000, method="batched")
        assert bat.corrected == ref.corrected
        assert bat.detected == ref.detected
        assert bat.trials == ref.trials

    @pytest.mark.parametrize("factory", [hbm_config, ddr3_config])
    def test_batched_matches_analytic_at_dense_rates(self, factory):
        """At boosted FIT rates (event-dense regime, where the pair
        term matters) the batched kernel stays on the analytic curve."""
        from repro.faults.fit import rates_for_memory

        memory = factory()
        rates = rates_for_memory(memory).scaled(2000)
        sim = FaultSimulator(memory, rates=rates, seed=4)
        result = sim.run(trials=40_000, method="batched")
        analytic = sim.analytic_uncorrected_per_mission()
        assert result.expected_uncorrected_per_mission == pytest.approx(
            analytic, rel=0.15
        )

    def test_batched_and_reference_agree_statistically(self):
        """Different pair enumeration order, same distribution."""
        from repro.faults.fit import rates_for_memory

        memory = hbm_config()
        rates = rates_for_memory(memory).scaled(2000)
        ref = FaultSimulator(memory, rates=rates, seed=6).run(
            trials=20_000, method="reference")
        bat = FaultSimulator(memory, rates=rates, seed=6).run(
            trials=20_000, method="batched")
        assert bat.expected_uncorrected_per_mission == pytest.approx(
            ref.expected_uncorrected_per_mission, rel=0.2
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            FaultSimulator(hbm_config()).run(trials=100,
                                             method="vectorised")


class TestResolution:
    def test_method_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTSIM_METHOD", raising=False)
        assert resolve_faultsim_method() == "batched"

    def test_method_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTSIM_METHOD", "reference")
        assert resolve_faultsim_method() == "reference"
        assert resolve_faultsim_method("batched") == "batched"

    def test_method_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTSIM_METHOD", "turbo")
        with pytest.raises(ValueError, match="method"):
            resolve_faultsim_method()

    def test_trials_default_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_TRIALS", raising=False)
        assert resolve_fault_trials() == 0

    def test_trials_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "5000")
        assert resolve_fault_trials() == 5000
        assert resolve_fault_trials(12) == 12

    def test_trials_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_fault_trials(-1)

    def test_trials_env_reaches_ser_model(self, monkeypatch):
        """SerModel.for_system picks the analytic path when the env
        asks for 0 trials — exercised end to end."""
        from repro.config import scaled_config
        from repro.faults.ser import SerModel

        monkeypatch.delenv("REPRO_FAULT_TRIALS", raising=False)
        config = scaled_config(1 / 1024)
        model = SerModel.for_system(config)
        assert model.fit_fast_per_page > 0
        assert model.fit_ratio > 100
