"""Unit tests for the Monte-Carlo fault simulator."""

import pytest

from repro.config import ddr3_config, hbm_config
from repro.faults.faultsim import FaultSimulator, uncorrected_fit_per_page


class TestAnalytic:
    def test_secded_analytic_equals_multibit_rate(self):
        """For SEC-DED the dominant analytic term is the single-fault
        uncorrected rate (column + row + bank + rank)."""
        hbm = hbm_config()
        sim = FaultSimulator(hbm, seed=1)
        expected_singles = (
            (sim.rates.column + sim.rates.row + sim.rates.bank
             + sim.rates.rank)
            * 1e-9 * sim.chips * sim.mission_hours
        )
        analytic = sim.analytic_uncorrected_per_mission()
        assert analytic == pytest.approx(expected_singles, rel=0.05)

    def test_chipkill_much_stronger_than_secded(self):
        from dataclasses import replace

        ddr = ddr3_config()
        chipkill = FaultSimulator(ddr, seed=1).analytic_uncorrected_per_mission()
        weak = replace(ddr, ecc="secded")
        secded = FaultSimulator(weak, seed=1).analytic_uncorrected_per_mission()
        assert secded > 5 * chipkill


class TestMonteCarlo:
    def test_matches_analytic_for_secded(self):
        sim = FaultSimulator(hbm_config(), seed=3)
        result = sim.run(trials=60_000)
        analytic = sim.analytic_uncorrected_per_mission()
        assert result.expected_uncorrected_per_mission == pytest.approx(
            analytic, rel=0.25
        )

    def test_outcome_accounting(self):
        sim = FaultSimulator(hbm_config(), seed=5)
        result = sim.run(trials=30_000)
        # Single-bit faults dominate and are corrected by SEC-DED.
        assert result.corrected > result.uncorrected

    def test_uncorrected_fit_positive(self):
        sim = FaultSimulator(hbm_config(), seed=2)
        result = sim.run(trials=30_000)
        assert result.uncorrected_fit_per_rank() > 0

    def test_p_uncorrected_bounded(self):
        sim = FaultSimulator(hbm_config(), seed=2)
        result = sim.run(trials=10_000)
        assert 0.0 <= result.p_uncorrected <= 1.0

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError):
            FaultSimulator(hbm_config()).run(trials=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FaultSimulator(hbm_config(), overlap_window_hours=0.0)


class TestPerPageFit:
    def test_hbm_vs_ddr_ratio_is_large(self):
        """The reliability gap that produces the paper's ~287x SER
        blow-up: HBM+SEC-DED pages fail uncorrected orders of magnitude
        more often than DDR+ChipKill pages."""
        hbm = uncorrected_fit_per_page(hbm_config(), analytic=True)
        ddr = uncorrected_fit_per_page(ddr3_config(), analytic=True)
        assert hbm / ddr > 100

    def test_analytic_and_monte_carlo_agree_secded(self):
        a = uncorrected_fit_per_page(hbm_config(), analytic=True)
        m = uncorrected_fit_per_page(hbm_config(), trials=60_000, seed=9)
        assert m == pytest.approx(a, rel=0.3)

    def test_scale_invariance_of_ratio(self):
        """Scaling capacities leaves the per-page FIT *ratio* intact."""
        from repro.config import scaled_config

        full_hbm = uncorrected_fit_per_page(hbm_config(), analytic=True)
        full_ddr = uncorrected_fit_per_page(ddr3_config(), analytic=True)
        small = scaled_config(1 / 1024)
        small_hbm = uncorrected_fit_per_page(small.fast_memory, analytic=True)
        small_ddr = uncorrected_fit_per_page(small.slow_memory, analytic=True)
        assert full_hbm / full_ddr == pytest.approx(
            small_hbm / small_ddr, rel=0.01
        )
