"""Hypothesis round-trips for the ECC codecs, cross-checked vs ecc.py.

The behavioural fault model (:mod:`repro.faults.ecc`) claims SEC-DED
corrects any 1-bit and detects any 2-bit error, SEC-DAEC additionally
corrects adjacent 2-bit errors, BCH corrects any 2-bit error, and
ChipKill corrects any single-chip symbol error.  These properties
drive the real codec implementations over *arbitrary* data words — not
just seeded samples — and the exhaustive sweeps backing the 2-bit
guarantees (including the miscorrection-rate bounds for patterns
beyond each code's reach) run under the ``fuzz`` marker from ci_smoke.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import bch, hamming, secdaec
from repro.faults.ecc import ChipKill, Outcome, SecDed
from repro.faults.fit import FaultComponent
from repro.faults.reed_solomon import ChipKillCode

CODE = ChipKillCode()

data_bits = st.lists(st.integers(0, 1), min_size=hamming.DATA_BITS,
                     max_size=hamming.DATA_BITS).map(
                         lambda bits: np.array(bits, dtype=np.uint8))
data_symbols = st.lists(st.integers(0, 255), min_size=CODE.data_symbols,
                        max_size=CODE.data_symbols).map(
                            lambda sym: np.array(sym, dtype=np.uint8))
bch_data_bits = st.lists(st.integers(0, 1), min_size=bch.DATA_BITS,
                         max_size=bch.DATA_BITS).map(
                             lambda bits: np.array(bits, dtype=np.uint8))


class TestHammingRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=data_bits)
    def test_clean_round_trip(self, data):
        codeword = hamming.encode(data)
        assert not hamming.syndrome(codeword).any()
        result = hamming.decode(codeword)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bit is None
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_bits,
           bit=st.integers(0, hamming.CODE_BITS - 1))
    def test_single_bit_round_trip(self, data, bit):
        result = hamming.decode(
            hamming.inject(hamming.encode(data), [bit]))
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bit == bit
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_bits,
           bits=st.sets(st.integers(0, hamming.CODE_BITS - 1),
                        min_size=2, max_size=2))
    def test_double_bit_detected(self, data, bits):
        result = hamming.decode(
            hamming.inject(hamming.encode(data), sorted(bits)))
        assert result.outcome is Outcome.DETECTED
        assert result.data is None

    @settings(max_examples=25, deadline=None)
    @given(data=data_bits,
           bits=st.sets(st.integers(0, hamming.CODE_BITS - 1),
                        min_size=1, max_size=4))
    def test_inject_is_involutive(self, data, bits):
        codeword = hamming.encode(data)
        twice = hamming.inject(hamming.inject(codeword, sorted(bits)),
                               sorted(bits))
        assert np.array_equal(twice, codeword)


class TestReedSolomonRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=data_symbols)
    def test_clean_round_trip_and_systematic_prefix(self, data):
        codeword = CODE.encode(data)
        assert np.array_equal(codeword[:CODE.data_symbols], data)
        assert CODE.syndromes(codeword) == (0, 0)
        result = CODE.decode(codeword)
        assert result.outcome is Outcome.CORRECTED
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_symbols,
           symbol=st.integers(0, CODE.code_symbols - 1),
           value=st.integers(1, 255))
    def test_single_symbol_round_trip(self, data, symbol, value):
        corrupted = CODE.inject(CODE.encode(data), {symbol: value})
        result = CODE.decode(corrupted)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_symbol == symbol
        assert result.corrected_value == value
        assert np.array_equal(result.data, data)

    @settings(max_examples=25, deadline=None)
    @given(data=data_symbols,
           symbol=st.integers(0, CODE.code_symbols - 1),
           value=st.integers(1, 255))
    def test_inject_is_involutive(self, data, symbol, value):
        codeword = CODE.encode(data)
        twice = CODE.inject(CODE.inject(codeword, {symbol: value}),
                            {symbol: value})
        assert np.array_equal(twice, codeword)


class TestSecDaecRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=data_bits)
    def test_clean_round_trip(self, data):
        codeword = secdaec.encode(data)
        assert not secdaec.syndrome(codeword).any()
        result = secdaec.decode(codeword)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bits == ()
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_bits,
           bit=st.integers(0, secdaec.CODE_BITS - 1))
    def test_single_bit_round_trip(self, data, bit):
        result = secdaec.decode(
            secdaec.inject(secdaec.encode(data), [bit]))
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bits == (bit,)
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_bits,
           bit=st.integers(0, secdaec.CODE_BITS - 2))
    def test_adjacent_double_round_trip(self, data, bit):
        """The DAEC property: adjacent pairs correct, not just detect."""
        result = secdaec.decode(
            secdaec.inject(secdaec.encode(data), [bit, bit + 1]))
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bits == (bit, bit + 1)
        assert np.array_equal(result.data, data)

    @settings(max_examples=25, deadline=None)
    @given(data=data_bits,
           bits=st.sets(st.integers(0, secdaec.CODE_BITS - 1),
                        min_size=1, max_size=4))
    def test_inject_is_involutive(self, data, bits):
        codeword = secdaec.encode(data)
        twice = secdaec.inject(secdaec.inject(codeword, sorted(bits)),
                               sorted(bits))
        assert np.array_equal(twice, codeword)

    @settings(max_examples=20, deadline=None)
    @given(data=st.lists(data_bits, min_size=1, max_size=6),
           bits=st.lists(st.sets(st.integers(0, secdaec.CODE_BITS - 1),
                                 max_size=3),
                         min_size=6, max_size=6))
    def test_batch_matches_scalar(self, data, bits):
        words = [secdaec.inject(secdaec.encode(d), sorted(b))
                 for d, b in zip(data, bits)]
        out, payload = secdaec.decode_batch(np.array(words))
        for i, word in enumerate(words):
            r = secdaec.decode(word)
            assert out[i] == (1 if r.outcome is Outcome.DETECTED else 0)
            expect = (r.data if r.data is not None
                      else np.zeros(secdaec.DATA_BITS, dtype=np.uint8))
            assert np.array_equal(payload[i], expect)


class TestBchRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(data=bch_data_bits)
    def test_clean_round_trip(self, data):
        codeword = bch.encode(data)
        assert bch.syndromes(codeword) == (0, 0)
        result = bch.decode(codeword)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bits == ()
        assert np.array_equal(result.data, data)

    @settings(max_examples=30, deadline=None)
    @given(data=bch_data_bits,
           bit=st.integers(0, bch.CODE_BITS - 1))
    def test_single_bit_round_trip(self, data, bit):
        result = bch.decode(bch.inject(bch.encode(data), [bit]))
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bits == (bit,)
        assert np.array_equal(result.data, data)

    @settings(max_examples=30, deadline=None)
    @given(data=bch_data_bits,
           bits=st.sets(st.integers(0, bch.CODE_BITS - 1),
                        min_size=2, max_size=2))
    def test_any_double_bit_round_trip(self, data, bits):
        """t = 2: arbitrary double errors correct, adjacency not needed."""
        result = bch.decode(bch.inject(bch.encode(data), sorted(bits)))
        assert result.outcome is Outcome.CORRECTED
        assert set(result.corrected_bits) == bits
        assert np.array_equal(result.data, data)

    @settings(max_examples=15, deadline=None)
    @given(data=st.lists(bch_data_bits, min_size=1, max_size=4),
           bits=st.lists(st.sets(st.integers(0, bch.CODE_BITS - 1),
                                 max_size=3),
                         min_size=4, max_size=4))
    def test_batch_matches_scalar(self, data, bits):
        words = [bch.inject(bch.encode(d), sorted(b))
                 for d, b in zip(data, bits)]
        out, payload = bch.decode_batch(np.array(words))
        for i, word in enumerate(words):
            r = bch.decode(word)
            assert out[i] == (1 if r.outcome is Outcome.DETECTED else 0)
            expect = (r.data if r.data is not None
                      else np.zeros(bch.DATA_BITS, dtype=np.uint8))
            assert np.array_equal(payload[i], expect)


class TestSchemeCrossCheck:
    """The codec guarantees are exactly what ecc.py's tables assume."""

    def test_secded_bit_rule_is_backed_by_the_codec(self):
        assert SecDed().classify_single(FaultComponent.BIT) \
            is Outcome.CORRECTED
        # ... and the codec honours it for every position (see the
        # hypothesis sweep above and the exhaustive fuzz sweep below).

    def test_chipkill_chip_rule_is_backed_by_the_codec(self):
        # Any intra-chip fault (up to a whole bank) stays one symbol.
        assert ChipKill().classify_single(FaultComponent.BANK) \
            is Outcome.CORRECTED
        data = np.arange(CODE.data_symbols, dtype=np.uint8)
        for value in (0x01, 0x80, 0xFF):
            result = CODE.decode(
                CODE.inject(CODE.encode(data), {3: value}))
            assert result.outcome is Outcome.CORRECTED
            assert np.array_equal(result.data, data)

    def test_secdaec_word_rule_is_backed_by_the_codec(self):
        """ecc.py upgrades WORD faults to CORRECTED for secdaec because
        the codec corrects clustered (adjacent) multi-bit upsets."""
        from repro.faults.ecc import SecDaec

        assert SecDaec().classify_single(FaultComponent.WORD) \
            is Outcome.CORRECTED
        data = np.random.default_rng(7).integers(
            0, 2, secdaec.DATA_BITS).astype(np.uint8)
        result = secdaec.decode(
            secdaec.inject(secdaec.encode(data), [20, 21]))
        assert result.outcome is Outcome.CORRECTED
        assert np.array_equal(result.data, data)

    def test_bch_column_rule_is_backed_by_the_codec(self):
        """ecc.py upgrades COLUMN faults to CORRECTED for bch because
        t = 2 covers any two bits — adjacency not required."""
        from repro.faults.ecc import BchDec

        assert BchDec().classify_single(FaultComponent.COLUMN) \
            is Outcome.CORRECTED
        data = np.random.default_rng(8).integers(
            0, 2, bch.DATA_BITS).astype(np.uint8)
        result = bch.decode(bch.inject(bch.encode(data), [5, 100]))
        assert result.outcome is Outcome.CORRECTED
        assert np.array_equal(result.data, data)


@pytest.mark.fuzz
class TestExhaustiveSweeps:
    """Close the guarantees by enumeration, not sampling."""

    def test_every_single_bit_position(self):
        rng = np.random.default_rng(1)
        for _ in range(3):
            data = rng.integers(0, 2, hamming.DATA_BITS).astype(np.uint8)
            codeword = hamming.encode(data)
            for bit in range(hamming.CODE_BITS):
                result = hamming.decode(hamming.inject(codeword, [bit]))
                assert result.outcome is Outcome.CORRECTED
                assert np.array_equal(result.data, data)

    def test_every_double_bit_pair_is_detected(self):
        data = np.random.default_rng(2).integers(
            0, 2, hamming.DATA_BITS).astype(np.uint8)
        codeword = hamming.encode(data)
        for pair in itertools.combinations(range(hamming.CODE_BITS), 2):
            result = hamming.decode(hamming.inject(codeword, pair))
            assert result.outcome is Outcome.DETECTED, pair

    def test_every_rs_position_across_values(self):
        data = np.random.default_rng(3).integers(
            0, 256, CODE.data_symbols).astype(np.uint8)
        codeword = CODE.encode(data)
        for symbol in range(CODE.code_symbols):
            for value in (0x01, 0x02, 0x55, 0xAA, 0xFF):
                result = CODE.decode(CODE.inject(codeword,
                                                 {symbol: value}))
                assert result.outcome is Outcome.CORRECTED, (symbol, value)
                assert np.array_equal(result.data, data)

    def test_secdaec_every_single_and_adjacent_pair(self):
        """Exhaustive single + adjacent-double sweep, cross-checked
        against the batch LUT path word for word."""
        data = np.random.default_rng(4).integers(
            0, 2, secdaec.DATA_BITS).astype(np.uint8)
        codeword = secdaec.encode(data)
        words = [secdaec.inject(codeword, [bit])
                 for bit in range(secdaec.CODE_BITS)]
        words += [secdaec.inject(codeword, [bit, bit + 1])
                  for bit in range(secdaec.CODE_BITS - 1)]
        for word in words:
            result = secdaec.decode(word)
            assert result.outcome is Outcome.CORRECTED
            assert np.array_equal(result.data, data)
        out, payload = secdaec.decode_batch(np.array(words))
        assert not out.any()
        assert (payload == data).all()

    def test_secdaec_corrects_where_secded_only_detects(self):
        """The acceptance sweep: every adjacent double-bit fault that
        SEC-DED merely detects is *corrected* by SEC-DAEC."""
        data = np.random.default_rng(5).integers(
            0, 2, secdaec.DATA_BITS).astype(np.uint8)
        secded_cw = hamming.encode(data)
        secdaec_cw = secdaec.encode(data)
        for bit in range(secdaec.CODE_BITS - 1):
            pair = [bit, bit + 1]
            detected = hamming.decode(hamming.inject(secded_cw, pair))
            assert detected.outcome is Outcome.DETECTED, pair
            corrected = secdaec.decode(secdaec.inject(secdaec_cw, pair))
            assert corrected.outcome is Outcome.CORRECTED, pair
            assert np.array_equal(corrected.data, data)

    def test_secdaec_nonadjacent_double_miscorrection_bounded(self):
        """Non-adjacent doubles exceed the code; some alias into the
        correctable syndrome space (the price of DAEC at n = 72).  The
        rate is inherent to the construction — assert it is real but
        bounded, and that decode and miscorrection_possible agree."""
        data = np.random.default_rng(6).integers(
            0, 2, secdaec.DATA_BITS).astype(np.uint8)
        codeword = secdaec.encode(data)
        miscorrected = total = 0
        for a, b in itertools.combinations(range(secdaec.CODE_BITS), 2):
            if b == a + 1:
                continue
            total += 1
            result = secdaec.decode(secdaec.inject(codeword, [a, b]))
            aliases = secdaec.miscorrection_possible([a, b])
            if result.outcome is Outcome.CORRECTED:
                miscorrected += 1
                assert aliases, (a, b)
                assert not np.array_equal(result.data, data), (a, b)
            else:
                assert not aliases, (a, b)
        rate = miscorrected / total
        assert 0.0 < rate < 0.75, rate

    def test_bch_every_single_and_every_double(self):
        """t = 2 closed by enumeration: all 127 singles and all 8001
        position pairs correct, batch path included."""
        data = np.random.default_rng(9).integers(
            0, 2, bch.DATA_BITS).astype(np.uint8)
        codeword = bch.encode(data)
        for bit in range(bch.CODE_BITS):
            result = bch.decode(bch.inject(codeword, [bit]))
            assert result.outcome is Outcome.CORRECTED
            assert np.array_equal(result.data, data)
        for pair in itertools.combinations(range(bch.CODE_BITS), 2):
            result = bch.decode(bch.inject(codeword, pair))
            assert result.outcome is Outcome.CORRECTED, pair
            assert np.array_equal(result.data, data)
        words = [bch.inject(codeword, [bit])
                 for bit in range(bch.CODE_BITS)]
        words += [bch.inject(codeword, [10, 90]),
                  bch.inject(codeword, [0, 126])]
        out, payload = bch.decode_batch(np.array(words))
        assert not out.any()
        assert (payload == data).all()

    def test_bch_triple_bit_miscorrection_bounded(self):
        """3-bit patterns exceed t = 2; the fraction aliasing to a
        valid single/double locator is ~(1 + n + C(n,2)) / 2^14 ~ 0.5.
        Sampled (C(127,3) is large), asserted bounded, and checked
        consistent with miscorrection_possible."""
        rng = np.random.default_rng(10)
        data = rng.integers(0, 2, bch.DATA_BITS).astype(np.uint8)
        codeword = bch.encode(data)
        miscorrected = total = 0
        for _ in range(400):
            triple = sorted(int(p) for p in
                            rng.choice(bch.CODE_BITS, size=3, replace=False))
            total += 1
            result = bch.decode(bch.inject(codeword, triple))
            aliases = bch.miscorrection_possible(triple)
            if result.outcome is Outcome.CORRECTED:
                miscorrected += 1
                assert aliases, triple
                assert not np.array_equal(result.data, data), triple
            else:
                assert not aliases, triple
        rate = miscorrected / total
        assert 0.0 < rate < 0.65, rate


class TestValidationAndAliases:
    """Input validation and the miscorrection-alias predicates — the
    scalar edges the round-trip sweeps never touch."""

    @pytest.mark.parametrize("mod", (secdaec, bch), ids=("secdaec", "bch"))
    def test_bit_inputs_are_validated(self, mod):
        with pytest.raises(ValueError, match="expected"):
            mod.encode(np.zeros(mod.DATA_BITS + 1, dtype=np.uint8))
        with pytest.raises(ValueError, match="0 or 1"):
            mod.decode(np.full(mod.CODE_BITS, 2, dtype=np.uint8))
        with pytest.raises(ValueError, match="expected rows"):
            mod.decode_batch(np.zeros((3, mod.CODE_BITS + 1),
                                      dtype=np.uint8))
        with pytest.raises(ValueError, match="out of range"):
            mod.inject(np.zeros(mod.CODE_BITS, dtype=np.uint8),
                       [mod.CODE_BITS])

    @pytest.mark.parametrize("mod", (secdaec, bch), ids=("secdaec", "bch"))
    def test_cancelled_pattern_aliases_to_clean(self, mod):
        # A position flipped twice is invisible to the syndrome.
        assert mod.miscorrection_possible([5, 5])

    def test_secdaec_alias_predicate_splits_triples(self):
        aliased = [t for t in ((0, 2, 4), (1, 3, 5), (0, 3, 6), (2, 5, 9))
                   if secdaec.miscorrection_possible(t)]
        clean = [t for t in ((0, 2, 4), (1, 3, 5), (0, 3, 6), (2, 5, 9))
                 if not secdaec.miscorrection_possible(t)]
        # The predicate must not be constant over small triples; the
        # exhaustive fuzz sweep pins the exact rate.
        assert aliased or clean

    def test_bch_gf_arithmetic_edges(self):
        assert bch.gf_mul(0, 7) == 0
        assert bch.gf_div(0, 7) == 0
        with pytest.raises(ZeroDivisionError):
            bch.gf_div(7, 0)
        assert bch.gf_pow(0, 0) == 1
        assert bch.gf_pow(0, 3) == 0
        assert bch.gf_pow(3, 0) == 1

    def test_bch_alias_predicate_branches(self):
        # s1 == 0 with s3 != 0 cannot look like a single or a double
        # (the locator needs s1 as the pair sum).
        found = None
        for a in range(1, 20):
            for b in range(a + 1, 40):
                s1 = int(bch._ALPHA1[0]) ^ int(bch._ALPHA1[a]) \
                    ^ int(bch._ALPHA1[b])
                s3 = int(bch._ALPHA3[0]) ^ int(bch._ALPHA3[a]) \
                    ^ int(bch._ALPHA3[b])
                if s1 == 0 and s3 != 0:
                    found = (0, a, b)
                    break
            if found:
                break
        if found is not None:
            assert not bch.miscorrection_possible(found)
        # A single position always aliases to itself (a single).
        assert bch.miscorrection_possible([11])
        # And the quadratic-locator branch runs for generic triples.
        for triple in ((0, 5, 17), (1, 9, 33), (2, 40, 90)):
            assert bch.miscorrection_possible(triple) in (True, False)
