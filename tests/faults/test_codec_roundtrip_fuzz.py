"""Hypothesis round-trips for both ECC codecs, cross-checked vs ecc.py.

The behavioural fault model (:mod:`repro.faults.ecc`) claims SEC-DED
corrects any 1-bit and detects any 2-bit error, and ChipKill corrects
any single-chip symbol error.  These properties drive the real (72,64)
Hsiao and GF(256) Reed-Solomon implementations over *arbitrary* data
words — not just seeded samples — and the exhaustive sweeps backing
the 2-bit guarantee run under the ``fuzz`` marker from ci_smoke.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import hamming
from repro.faults.ecc import ChipKill, Outcome, SecDed
from repro.faults.fit import FaultComponent
from repro.faults.reed_solomon import ChipKillCode

CODE = ChipKillCode()

data_bits = st.lists(st.integers(0, 1), min_size=hamming.DATA_BITS,
                     max_size=hamming.DATA_BITS).map(
                         lambda bits: np.array(bits, dtype=np.uint8))
data_symbols = st.lists(st.integers(0, 255), min_size=CODE.data_symbols,
                        max_size=CODE.data_symbols).map(
                            lambda sym: np.array(sym, dtype=np.uint8))


class TestHammingRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=data_bits)
    def test_clean_round_trip(self, data):
        codeword = hamming.encode(data)
        assert not hamming.syndrome(codeword).any()
        result = hamming.decode(codeword)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bit is None
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_bits,
           bit=st.integers(0, hamming.CODE_BITS - 1))
    def test_single_bit_round_trip(self, data, bit):
        result = hamming.decode(
            hamming.inject(hamming.encode(data), [bit]))
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bit == bit
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_bits,
           bits=st.sets(st.integers(0, hamming.CODE_BITS - 1),
                        min_size=2, max_size=2))
    def test_double_bit_detected(self, data, bits):
        result = hamming.decode(
            hamming.inject(hamming.encode(data), sorted(bits)))
        assert result.outcome is Outcome.DETECTED
        assert result.data is None

    @settings(max_examples=25, deadline=None)
    @given(data=data_bits,
           bits=st.sets(st.integers(0, hamming.CODE_BITS - 1),
                        min_size=1, max_size=4))
    def test_inject_is_involutive(self, data, bits):
        codeword = hamming.encode(data)
        twice = hamming.inject(hamming.inject(codeword, sorted(bits)),
                               sorted(bits))
        assert np.array_equal(twice, codeword)


class TestReedSolomonRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=data_symbols)
    def test_clean_round_trip_and_systematic_prefix(self, data):
        codeword = CODE.encode(data)
        assert np.array_equal(codeword[:CODE.data_symbols], data)
        assert CODE.syndromes(codeword) == (0, 0)
        result = CODE.decode(codeword)
        assert result.outcome is Outcome.CORRECTED
        assert np.array_equal(result.data, data)

    @settings(max_examples=40, deadline=None)
    @given(data=data_symbols,
           symbol=st.integers(0, CODE.code_symbols - 1),
           value=st.integers(1, 255))
    def test_single_symbol_round_trip(self, data, symbol, value):
        corrupted = CODE.inject(CODE.encode(data), {symbol: value})
        result = CODE.decode(corrupted)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_symbol == symbol
        assert result.corrected_value == value
        assert np.array_equal(result.data, data)

    @settings(max_examples=25, deadline=None)
    @given(data=data_symbols,
           symbol=st.integers(0, CODE.code_symbols - 1),
           value=st.integers(1, 255))
    def test_inject_is_involutive(self, data, symbol, value):
        codeword = CODE.encode(data)
        twice = CODE.inject(CODE.inject(codeword, {symbol: value}),
                            {symbol: value})
        assert np.array_equal(twice, codeword)


class TestSchemeCrossCheck:
    """The codec guarantees are exactly what ecc.py's tables assume."""

    def test_secded_bit_rule_is_backed_by_the_codec(self):
        assert SecDed().classify_single(FaultComponent.BIT) \
            is Outcome.CORRECTED
        # ... and the codec honours it for every position (see the
        # hypothesis sweep above and the exhaustive fuzz sweep below).

    def test_chipkill_chip_rule_is_backed_by_the_codec(self):
        # Any intra-chip fault (up to a whole bank) stays one symbol.
        assert ChipKill().classify_single(FaultComponent.BANK) \
            is Outcome.CORRECTED
        data = np.arange(CODE.data_symbols, dtype=np.uint8)
        for value in (0x01, 0x80, 0xFF):
            result = CODE.decode(
                CODE.inject(CODE.encode(data), {3: value}))
            assert result.outcome is Outcome.CORRECTED
            assert np.array_equal(result.data, data)


@pytest.mark.fuzz
class TestExhaustiveSweeps:
    """Close the guarantees by enumeration, not sampling."""

    def test_every_single_bit_position(self):
        rng = np.random.default_rng(1)
        for _ in range(3):
            data = rng.integers(0, 2, hamming.DATA_BITS).astype(np.uint8)
            codeword = hamming.encode(data)
            for bit in range(hamming.CODE_BITS):
                result = hamming.decode(hamming.inject(codeword, [bit]))
                assert result.outcome is Outcome.CORRECTED
                assert np.array_equal(result.data, data)

    def test_every_double_bit_pair_is_detected(self):
        data = np.random.default_rng(2).integers(
            0, 2, hamming.DATA_BITS).astype(np.uint8)
        codeword = hamming.encode(data)
        for pair in itertools.combinations(range(hamming.CODE_BITS), 2):
            result = hamming.decode(hamming.inject(codeword, pair))
            assert result.outcome is Outcome.DETECTED, pair

    def test_every_rs_position_across_values(self):
        data = np.random.default_rng(3).integers(
            0, 256, CODE.data_symbols).astype(np.uint8)
        codeword = CODE.encode(data)
        for symbol in range(CODE.code_symbols):
            for value in (0x01, 0x02, 0x55, 0xAA, 0xFF):
                result = CODE.decode(CODE.inject(codeword,
                                                 {symbol: value}))
                assert result.outcome is Outcome.CORRECTED, (symbol, value)
                assert np.array_equal(result.data, data)
