"""The ECC cost models: structure, ordering, and ladder consistency."""

import dataclasses

import pytest

from repro.config import hbm_config
from repro.faults.cost import EccCost, all_costs, cost_of
from repro.faults.ecc import SCHEME_LADDER
from repro.faults.faultsim import uncorrected_fit_per_page


class TestEccCost:
    def test_every_ladder_scheme_has_a_cost(self):
        costs = all_costs()
        assert tuple(costs) == SCHEME_LADDER
        for cost in costs.values():
            assert cost.data_bits > 0
            assert cost.check_bits >= 0
            assert cost.decoder_gates >= 0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown ECC scheme"):
            cost_of("hamming-extended")

    def test_storage_overheads_match_codec_shapes(self):
        assert cost_of("none").storage_overhead == 0.0
        assert cost_of("secded").storage_overhead == 8 / 64
        assert cost_of("secdaec").storage_overhead == 8 / 64
        assert cost_of("bch").storage_overhead == 14 / 113
        assert cost_of("chipkill").storage_overhead == 16 / 128

    def test_invalid_components_rejected(self):
        with pytest.raises(ValueError):
            EccCost(scheme="x", data_bits=0, check_bits=1, decoder_gates=1)
        with pytest.raises(ValueError):
            EccCost(scheme="x", data_bits=64, check_bits=-1,
                    decoder_gates=1)

    def test_energy_normalised_per_64_data_bits(self):
        # Same gate count at twice the data bits must halve the
        # per-64-bit energy proxy.
        narrow = EccCost(scheme="a", data_bits=64, check_bits=8,
                         decoder_gates=1000)
        wide = EccCost(scheme="b", data_bits=128, check_bits=8,
                       decoder_gates=1000)
        assert wide.decode_energy_pj == pytest.approx(
            narrow.decode_energy_pj / 2)


class TestLadderOrdering:
    """The selector's correctness rests on these two monotone orders."""

    def test_total_cost_strictly_increases_with_strength(self):
        totals = [cost_of(name).total for name in SCHEME_LADDER]
        assert all(a < b for a, b in zip(totals, totals[1:])), totals

    def test_analytic_fit_strictly_decreases_with_strength(self):
        fits = [
            uncorrected_fit_per_page(
                dataclasses.replace(hbm_config(), ecc=name), analytic=True)
            for name in SCHEME_LADDER
        ]
        assert all(a > b for a, b in zip(fits, fits[1:])), fits

    def test_decoder_gates_grow_up_to_bit_granular_codes(self):
        # Bit-granular decoders grow monotonically with correction
        # power; chipkill's symbol datapath is priced separately but
        # must exceed all of them in total.
        gates = [cost_of(n).decoder_gates
                 for n in ("none", "secded", "secdaec", "bch")]
        assert all(a < b for a, b in zip(gates, gates[1:])), gates
