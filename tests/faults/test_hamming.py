"""Unit and property tests for the (72, 64) Hsiao SEC-DED codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.ecc import Outcome
from repro.faults.hamming import (
    CODE_BITS,
    DATA_BITS,
    H,
    decode,
    encode,
    inject,
    miscorrection_possible,
    syndrome,
)


def random_word(seed=0):
    return np.random.default_rng(seed).integers(0, 2, DATA_BITS).astype(np.uint8)


class TestMatrix:
    def test_shape(self):
        assert H.shape == (8, CODE_BITS)

    def test_columns_distinct(self):
        columns = {tuple(H[:, i]) for i in range(CODE_BITS)}
        assert len(columns) == CODE_BITS

    def test_columns_odd_weight(self):
        """Hsiao's defining property: every column has odd weight, so
        single and double errors are separable by syndrome parity."""
        weights = H.sum(axis=0)
        assert np.all(weights % 2 == 1)


class TestEncode:
    def test_codeword_has_zero_syndrome(self):
        cw = encode(random_word())
        assert not syndrome(cw).any()

    def test_systematic(self):
        data = random_word(1)
        assert np.array_equal(encode(data)[:DATA_BITS], data)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            encode(np.zeros(63, dtype=np.uint8))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            encode(np.full(DATA_BITS, 2, dtype=np.uint8))


class TestDecode:
    def test_clean_word(self):
        data = random_word(2)
        result = decode(encode(data))
        assert result.outcome is Outcome.CORRECTED
        assert np.array_equal(result.data, data)
        assert result.corrected_bit is None

    @pytest.mark.parametrize("bit", [0, 17, DATA_BITS - 1, DATA_BITS,
                                     CODE_BITS - 1])
    def test_single_bit_corrected(self, bit):
        data = random_word(3)
        corrupted = inject(encode(data), [bit])
        result = decode(corrupted)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_bit == bit
        assert np.array_equal(result.data, data)

    def test_double_bit_detected(self):
        data = random_word(4)
        corrupted = inject(encode(data), [3, 40])
        result = decode(corrupted)
        assert result.outcome is Outcome.DETECTED
        assert result.data is None

    def test_inject_bounds(self):
        with pytest.raises(ValueError):
            inject(encode(random_word()), [CODE_BITS])


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 1000), bit=st.integers(0, CODE_BITS - 1))
def test_every_single_bit_error_corrected(seed, bit):
    data = random_word(seed)
    result = decode(inject(encode(data), [bit]))
    assert result.outcome is Outcome.CORRECTED
    assert np.array_equal(result.data, data)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 1000),
    bits=st.sets(st.integers(0, CODE_BITS - 1), min_size=2, max_size=2),
)
def test_every_double_bit_error_detected(seed, bits):
    """The DED guarantee: no 2-bit error is silently consumed."""
    data = random_word(seed)
    result = decode(inject(encode(data), sorted(bits)))
    assert result.outcome is Outcome.DETECTED


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 1000),
    bits=st.sets(st.integers(0, CODE_BITS - 1), min_size=3, max_size=8),
)
def test_multi_bit_errors_never_return_wrong_data_silently_unless_aliased(
    seed, bits
):
    """>= 3-bit errors either get detected or alias exactly as
    predicted by miscorrection_possible (the SDC escape SEC-DED cannot
    close — why chip-level faults are UNCORRECTED in the fault model)."""
    data = random_word(seed)
    result = decode(inject(encode(data), sorted(bits)))
    if result.outcome is Outcome.DETECTED:
        assert not miscorrection_possible(sorted(bits)) or True
        # Detected is always acceptable.
        return
    # Decoder believed it corrected (or saw a clean word): only
    # possible when the pattern aliases.
    assert miscorrection_possible(sorted(bits))
