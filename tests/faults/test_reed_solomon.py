"""Unit and property tests for the ChipKill Reed-Solomon codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.ecc import Outcome
from repro.faults.reed_solomon import (
    ChipKillCode,
    gf_div,
    gf_mul,
    gf_pow,
)

CODE = ChipKillCode(data_symbols=16)


def random_data(seed=0, k=16):
    return np.random.default_rng(seed).integers(0, 256, k).astype(np.uint8)


class TestGaloisField:
    def test_mul_identity(self):
        for a in (0, 1, 7, 255):
            assert gf_mul(a, 1) == a

    def test_mul_zero(self):
        assert gf_mul(0, 123) == 0

    def test_mul_commutative(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b = int(rng.integers(256)), int(rng.integers(256))
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_div_inverts_mul(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a = int(rng.integers(1, 256))
            b = int(rng.integers(1, 256))
            assert gf_div(gf_mul(a, b), b) == a

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(2, 8) == 0x1D  # x^8 = primitive poly tail

    def test_field_order(self):
        # alpha^255 = 1: the multiplicative group has order 255.
        assert gf_pow(2, 255) == 1


class TestEncode:
    def test_zero_syndromes(self):
        cw = CODE.encode(random_data())
        assert CODE.syndromes(cw) == (0, 0)

    def test_systematic(self):
        data = random_data(1)
        assert np.array_equal(CODE.encode(data)[:16], data)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            CODE.encode(np.zeros(15, dtype=np.uint8))

    def test_rejects_bad_symbol(self):
        with pytest.raises(ValueError):
            CODE.encode(np.full(16, 256))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ChipKillCode(data_symbols=0)


class TestDecode:
    def test_clean(self):
        data = random_data(2)
        result = CODE.decode(CODE.encode(data))
        assert result.outcome is Outcome.CORRECTED
        assert np.array_equal(result.data, data)

    @pytest.mark.parametrize("symbol", [0, 7, 15, 16, 17])
    def test_single_symbol_corrected_any_pattern(self, symbol):
        """ChipKill: a whole chip can emit garbage and decode still
        recovers — any 8-bit error value in one symbol."""
        data = random_data(3)
        corrupted = CODE.inject(CODE.encode(data), {symbol: 0xA7})
        result = CODE.decode(corrupted)
        assert result.outcome is Outcome.CORRECTED
        assert result.corrected_symbol == symbol
        assert np.array_equal(result.data, data)

    def test_double_symbol_mostly_detected(self):
        data = random_data(4)
        corrupted = CODE.inject(CODE.encode(data), {2: 0x11, 9: 0x22})
        result = CODE.decode(corrupted)
        # Distance 3: a double error is detected or miscorrected, but
        # never returned as the original data.
        if result.outcome is Outcome.CORRECTED:
            assert not np.array_equal(result.data, data)
        else:
            assert result.outcome is Outcome.DETECTED

    def test_inject_bounds(self):
        cw = CODE.encode(random_data())
        with pytest.raises(ValueError):
            CODE.inject(cw, {18: 1})
        with pytest.raises(ValueError):
            CODE.inject(cw, {0: 300})


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(0, 500),
    symbol=st.integers(0, 17),
    value=st.integers(1, 255),
)
def test_chipkill_guarantee(seed, symbol, value):
    """Any single-symbol error, any value, any position: corrected."""
    data = random_data(seed)
    corrupted = CODE.inject(CODE.encode(data), {symbol: value})
    result = CODE.decode(corrupted)
    assert result.outcome is Outcome.CORRECTED
    assert result.corrected_symbol == symbol
    assert result.corrected_value == value
    assert np.array_equal(result.data, data)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 500),
    a=st.integers(0, 17),
    b=st.integers(0, 17),
    va=st.integers(1, 255),
    vb=st.integers(1, 255),
)
def test_double_symbol_never_silently_wrong(seed, a, b, va, vb):
    """Two corrupted chips: the decoder never hands back data it
    believes clean that differs from a plausible correction — i.e. the
    original data is never silently returned as wrong."""
    if a == b:
        return
    data = random_data(seed)
    corrupted = CODE.inject(CODE.encode(data), {a: va, b: vb})
    result = CODE.decode(corrupted)
    if result.outcome is Outcome.CORRECTED:
        # Miscorrection is possible at distance 3, but the result must
        # then differ from the true data (it was a *different* single-
        # error explanation).
        assert not np.array_equal(result.data, data)


class TestFaultSimConsistency:
    """The Monte-Carlo simulator's ChipKill rules hold on the codec."""

    def test_single_chip_fault_is_correctable(self):
        # Arbitrary garbage confined to one chip/symbol: always fixed.
        data = random_data(9)
        for value in (0x01, 0xFF, 0x5A):
            result = CODE.decode(CODE.inject(CODE.encode(data), {5: value}))
            assert result.outcome is Outcome.CORRECTED

    def test_cross_chip_overlap_is_not_correctable(self):
        # Two chips corrupt the same codeword: cannot be trusted.
        data = random_data(10)
        result = CODE.decode(
            CODE.inject(CODE.encode(data), {1: 0x0F, 12: 0xF0})
        )
        assert (result.outcome is Outcome.DETECTED
                or not np.array_equal(result.data, data))
