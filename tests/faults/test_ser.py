"""Unit tests for SER composition (SER = FIT x AVF)."""

import numpy as np
import pytest

from repro.avf.page import IntervalProfile, PageStats
from repro.faults.ser import SerModel


def stats():
    return PageStats(
        pages=np.array([0, 1, 2]),
        reads=np.array([10, 10, 10]),
        writes=np.array([1, 1, 1]),
        avf=np.array([0.5, 0.3, 0.2]),
    )


MODEL = SerModel(fit_fast_per_page=100.0, fit_slow_per_page=1.0)


class TestSerModel:
    def test_rejects_negative_rates(self):
        with pytest.raises(ValueError):
            SerModel(fit_fast_per_page=-1.0, fit_slow_per_page=1.0)

    def test_fit_ratio(self):
        assert MODEL.fit_ratio == 100.0

    def test_fit_ratio_inf_when_slow_zero(self):
        m = SerModel(fit_fast_per_page=1.0, fit_slow_per_page=0.0)
        assert m.fit_ratio == float("inf")

    def test_ddr_only(self):
        assert MODEL.ser_ddr_only(stats()) == pytest.approx(1.0)

    def test_static_all_fast(self):
        ser = MODEL.ser_static(stats(), [0, 1, 2])
        assert ser == pytest.approx(100.0)

    def test_static_split(self):
        ser = MODEL.ser_static(stats(), [0])
        assert ser == pytest.approx(0.5 * 100 + 0.5 * 1)

    def test_static_empty_equals_ddr_only(self):
        assert MODEL.ser_static(stats(), []) == MODEL.ser_ddr_only(stats())

    def test_hot_high_avf_placement_maximises_ser(self):
        # Placing the highest-AVF page in fast memory yields the worst
        # (highest) SER of all single-page placements.
        sers = [MODEL.ser_static(stats(), [p]) for p in (0, 1, 2)]
        assert sers[0] == max(sers)


class TestDynamicSer:
    def test_residency_accounting(self):
        iv = IntervalProfile(
            num_intervals=2,
            interval_avf=[{0: 0.2, 1: 0.1}, {0: 0.3}],
        )
        # Page 0 in fast during interval 0 only.
        ser = MODEL.ser_dynamic(iv, [{0}, set()])
        expected = 0.2 * 100 + 0.1 * 1 + 0.3 * 1
        assert ser == pytest.approx(expected)

    def test_always_slow_matches_ddr_only_total(self):
        iv = IntervalProfile(
            num_intervals=2,
            interval_avf=[{0: 0.25}, {0: 0.25, 1: 0.5}],
        )
        ser = MODEL.ser_dynamic(iv, [set(), set()])
        assert ser == pytest.approx((0.25 + 0.25 + 0.5) * 1)

    def test_residency_length_mismatch(self):
        iv = IntervalProfile(num_intervals=2, interval_avf=[{}, {}])
        with pytest.raises(ValueError):
            MODEL.ser_dynamic(iv, [set()])

    def test_interval_profile_total(self):
        iv = IntervalProfile(
            num_intervals=2, interval_avf=[{7: 0.1}, {7: 0.2}]
        )
        assert iv.total_avf(7) == pytest.approx(0.3)
        assert iv.total_avf(9) == 0.0
