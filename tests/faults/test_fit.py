"""Unit tests for FIT-rate data and scaling."""

import pytest

from repro.config import ddr3_config, hbm_config
from repro.faults.fit import (
    JAGUAR_TRANSIENT,
    FaultComponent,
    FitRates,
    devices_per_rank,
    rates_for_memory,
)


class TestFitRates:
    def test_rate_lookup(self):
        r = FitRates(bit=1.0, word=2.0, column=3.0, row=4.0, bank=5.0,
                     rank=6.0)
        assert r.rate(FaultComponent.BIT) == 1.0
        assert r.rate(FaultComponent.RANK) == 6.0

    def test_total(self):
        r = FitRates(bit=1, word=1, column=1, row=1, bank=1, rank=1)
        assert r.total == 6.0

    def test_multi_bit_total_excludes_bit(self):
        r = JAGUAR_TRANSIENT
        assert r.multi_bit_total == pytest.approx(r.total - r.bit)

    def test_bit_faults_dominate_field_data(self):
        # The field study: single-bit faults are the most common class.
        r = JAGUAR_TRANSIENT
        assert r.bit > r.multi_bit_total

    def test_scaled(self):
        r = JAGUAR_TRANSIENT.scaled(2.0)
        assert r.bit == pytest.approx(2 * JAGUAR_TRANSIENT.bit)
        assert r.rank == pytest.approx(2 * JAGUAR_TRANSIENT.rank)

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            JAGUAR_TRANSIENT.scaled(-1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FitRates(bit=-1.0)

    def test_with_component(self):
        r = JAGUAR_TRANSIENT.with_component(FaultComponent.ROW, 9.0)
        assert r.row == 9.0
        assert r.bit == JAGUAR_TRANSIENT.bit


class TestMemoryScaling:
    def test_hbm_scaled_up(self):
        hbm = hbm_config()
        rates = rates_for_memory(hbm)
        assert rates.bit == pytest.approx(
            JAGUAR_TRANSIENT.bit * hbm.fit_multiplier
        )

    def test_ddr_unscaled(self):
        rates = rates_for_memory(ddr3_config())
        assert rates.bit == JAGUAR_TRANSIENT.bit


class TestDevicesPerRank:
    def test_ddr_x8_has_eight_data_chips(self):
        assert devices_per_rank(ddr3_config()) == 8

    def test_hbm_single_stack(self):
        assert devices_per_rank(hbm_config()) == 1
