"""Unit tests for the permanent-fault aging extension."""

import pytest

from repro.config import ddr3_config, hbm_config
from repro.faults.aging import (
    AgingModel,
    PermanentFitRates,
    lifetime_capacity_schedule,
)
from repro.faults.fit import FaultComponent


class TestPermanentRates:
    def test_permanent_exceed_transient_total(self):
        from repro.faults.fit import JAGUAR_TRANSIENT

        assert PermanentFitRates().total > JAGUAR_TRANSIENT.total


class TestAgingModel:
    def test_no_age_no_loss(self):
        model = AgingModel(hbm_config())
        assert model.expected_lost_pages(0.0) == 0.0
        assert model.usable_fraction(0.0) == 1.0

    def test_loss_monotone_in_age(self):
        model = AgingModel(hbm_config())
        losses = [model.expected_lost_pages(y) for y in (1, 2, 5, 10)]
        assert losses == sorted(losses)
        assert losses[0] > 0

    def test_faults_linear_in_time(self):
        model = AgingModel(ddr3_config())
        one = model.expected_faults(1.0, FaultComponent.ROW)
        four = model.expected_faults(4.0, FaultComponent.ROW)
        assert four == pytest.approx(4 * one)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            AgingModel(hbm_config()).expected_faults(-1.0,
                                                     FaultComponent.BIT)

    def test_die_stacked_ages_faster(self):
        hbm_frac = AgingModel(hbm_config()).usable_fraction(5.0)
        # Compare per-capacity attrition: normalise by page count.
        hbm_lost = AgingModel(hbm_config()).expected_lost_pages(5.0)
        ddr_lost = AgingModel(ddr3_config()).expected_lost_pages(5.0)
        hbm_rate = hbm_lost / hbm_config().num_pages
        ddr_rate = ddr_lost / ddr3_config().num_pages
        assert hbm_rate > ddr_rate
        assert 0.0 <= hbm_frac <= 1.0

    def test_usable_pages_never_negative(self):
        model = AgingModel(hbm_config())
        assert model.usable_pages(1000.0) >= 0


class TestSchedule:
    def test_schedule_shape(self):
        schedule = lifetime_capacity_schedule(hbm_config(),
                                              years=(0, 1, 5))
        assert len(schedule) == 3
        assert schedule[0] == (0.0, 1.0)
        fractions = [frac for _y, frac in schedule]
        assert fractions == sorted(fractions, reverse=True)
