"""The shared ECC lookup-table builder vs the scalar classification."""

import numpy as np
import pytest

from repro.faults.ecc import (
    ChipGeometry,
    Outcome,
    build_ecc_luts,
    make_scheme,
)
from repro.faults.fit import FaultComponent

SCHEMES = ("none", "secded", "secdaec", "bch", "chipkill")
GEOMETRIES = (ChipGeometry(), ChipGeometry(banks=4, rows=256, cols=64))


@pytest.mark.parametrize("name", SCHEMES)
@pytest.mark.parametrize("geo", GEOMETRIES)
class TestRoundTrip:
    def test_singles_match_scalar_classification(self, name, geo):
        scheme = make_scheme(name)
        luts = build_ecc_luts(scheme, geo)
        assert luts.components == tuple(FaultComponent)
        for i, comp in enumerate(luts.components):
            outcome = scheme.classify_single(comp)
            assert luts.single_corrected[i] == (outcome is Outcome.CORRECTED)
            assert luts.single_detected[i] == (outcome is Outcome.DETECTED)
            assert luts.single_uncorrected[i] == (
                1.0 if outcome is Outcome.UNCORRECTED else 0.0)

    def test_pairs_match_scalar_classification(self, name, geo):
        scheme = make_scheme(name)
        luts = build_ecc_luts(scheme, geo)
        for i, a in enumerate(luts.components):
            for j, b in enumerate(luts.components):
                for same in (False, True):
                    assert luts.pair_uncorrectable[i, j, int(same)] == \
                        scheme.pair_uncorrectable(a, b, same, geo)

    def test_pair_table_is_symmetric(self, name, geo):
        # Overlap of (a, b) cannot depend on argument order for any of
        # the shipped schemes; the batched kernel relies on this when
        # it enumerates each unordered pair once.
        luts = build_ecc_luts(make_scheme(name), geo)
        np.testing.assert_array_equal(
            luts.pair_uncorrectable,
            np.swapaxes(luts.pair_uncorrectable, 0, 1))

    def test_tables_are_read_only(self, name, geo):
        luts = build_ecc_luts(make_scheme(name), geo)
        with pytest.raises(ValueError):
            luts.pair_uncorrectable[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            luts.single_corrected[0] = True


class TestSimulatorConsumesBuilder:
    def test_faultsim_tables_come_from_the_builder(self):
        from repro.config import hbm_config
        from repro.faults.faultsim import FaultSimulator

        memory = hbm_config()
        sim = FaultSimulator(memory, seed=0)
        luts = build_ecc_luts(sim.ecc, sim.geometry)
        assert sim._components == list(luts.components)
        np.testing.assert_array_equal(sim._single_corrected,
                                      luts.single_corrected)
        np.testing.assert_array_equal(sim._single_detected,
                                      luts.single_detected)
        np.testing.assert_array_equal(sim._single_uncorrected,
                                      luts.single_uncorrected)
        np.testing.assert_array_equal(sim._pair_lut,
                                      luts.pair_uncorrectable)
