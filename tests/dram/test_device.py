"""Unit tests for the event-driven memory device model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LINE_SIZE, DramTiming, MemoryConfig
from repro.dram.device import LINES_PER_ROW, MemoryDevice


def make_device(channels=2, banks=4):
    cfg = MemoryConfig(
        name="test",
        capacity_bytes=1 << 20,
        bus_frequency_hz=1e9,
        bus_width_bits=64,
        channels=channels,
        ranks_per_channel=1,
        banks_per_rank=banks,
        timing=DramTiming(tCL=10, tRCD=10, tRP=10, burst_cycles=4),
    )
    return MemoryDevice(cfg)


class TestRouting:
    def test_channel_interleaving_by_line(self):
        d = make_device(channels=2)
        assert d.route(0)[0] == 0
        assert d.route(1)[0] == 1
        assert d.route(2)[0] == 0

    def test_rows_span_lines_per_row(self):
        d = make_device(channels=1, banks=1)
        ch0, bank0, row0 = d.route(0)
        ch1, bank1, row1 = d.route(LINES_PER_ROW - 1)
        ch2, bank2, row2 = d.route(LINES_PER_ROW)
        assert row0 == row1
        assert row2 == row0 + 1

    def test_banks_interleave_by_row(self):
        d = make_device(channels=1, banks=4)
        _, bank_a, _ = d.route(0)
        _, bank_b, _ = d.route(LINES_PER_ROW)
        assert bank_a != bank_b

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_route_in_valid_ranges(self, line):
        d = make_device(channels=2, banks=4)
        channel, bank, row = d.route(line)
        assert 0 <= channel < 2
        assert 0 <= bank < 4
        assert row >= 0


class TestService:
    def test_idle_read_latency(self):
        d = make_device()
        finish = d.service(0, arrival=0.0, is_write=False)
        period = d.clock_period
        expected = DramTiming(tCL=10, tRCD=10, tRP=10,
                              burst_cycles=4).row_miss_cycles() * period
        assert finish == pytest.approx(expected)

    def test_channel_bandwidth_serialises_bursts(self):
        """Back-to-back requests to one channel leave at least a burst
        between completions (the data bus is a shared resource)."""
        d = make_device(channels=1, banks=8)
        finishes = []
        for i in range(16):
            # Different banks, same channel: bank-parallel, bus-serial.
            line = i * LINES_PER_ROW
            finishes.append(d.service(line, arrival=0.0, is_write=False))
        finishes.sort()
        for a, b in zip(finishes, finishes[1:]):
            assert b - a >= d.burst_seconds * 0.999

    def test_multiple_channels_parallel(self):
        d2 = make_device(channels=2, banks=8)
        d1 = make_device(channels=1, banks=8)
        t2 = max(
            d2.service(i, 0.0, False) for i in range(32)
        )
        t1 = max(
            d1.service(i * 2, 0.0, False) for i in range(32)
        )
        assert t2 < t1

    def test_stats_accounting(self):
        d = make_device()
        d.service(0, 0.0, False)
        d.service(1, 0.0, True)
        assert d.stats.reads == 1
        assert d.stats.writes == 1
        assert d.stats.accesses == 2
        assert d.stats.mean_read_latency > 0

    def test_row_buffer_stats(self):
        d = make_device(channels=1, banks=1)
        d.service(0, 0.0, False)
        d.service(1, 0.0, False)   # same row -> hit
        hits, misses, conflicts = d.row_buffer_stats()
        assert misses == 1
        assert hits == 1

    def test_reset(self):
        d = make_device()
        d.service(0, 0.0, False)
        d.reset()
        assert d.stats.accesses == 0
        assert all(b == 0.0 for b in d.channel_busy_until)


class TestOccupyBandwidth:
    def test_zero_lines_noop(self):
        d = make_device()
        assert d.occupy_bandwidth(1.0, 0) == 1.0

    def test_duration_matches_line_count(self):
        d = make_device(channels=2)
        finish = d.occupy_bandwidth(0.0, 20)
        assert finish == pytest.approx(10 * d.burst_seconds)

    def test_subsequent_requests_queue_behind_bulk(self):
        d = make_device(channels=1)
        bulk_done = d.occupy_bandwidth(0.0, 100)
        finish = d.service(0, arrival=0.0, is_write=False)
        assert finish >= bulk_done

    def test_remainder_distribution(self):
        d = make_device(channels=2)
        finish = d.occupy_bandwidth(0.0, 3)
        assert finish == pytest.approx(2 * d.burst_seconds)
