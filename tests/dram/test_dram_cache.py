"""Unit tests for the DRAM-cache organization."""

import numpy as np
import pytest

from repro.dram.dram_cache import DramCacheSystem


@pytest.fixture
def cache(tiny_config):
    return DramCacheSystem(tiny_config)


class TestCacheBehaviour:
    def test_first_access_misses(self, cache):
        cache.service(0, 0, 0.0, False)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_second_access_hits(self, cache):
        cache.service(0, 0, 0.0, False)
        cache.service(0, 0, 1.0, False)
        assert cache.stats.hits == 1

    def test_hit_is_faster_than_miss(self, cache):
        miss_done = cache.service(0, 0, 0.0, False)
        hit_done = cache.service(0, 0, miss_done, False)
        assert hit_done - miss_done < miss_done  # hit latency < miss latency

    def test_conflicting_lines_evict(self, cache):
        # Two lines mapping to the same set: page stride = num_sets.
        conflict_page = cache.num_sets // 64
        cache.service(0, 0, 0.0, False)
        cache.service(conflict_page, 0, 1.0, False)
        cache.service(0, 0, 2.0, False)
        assert cache.stats.misses == 3

    def test_dirty_victim_writes_back(self, cache):
        conflict_page = cache.num_sets // 64
        cache.service(0, 0, 0.0, True)           # dirty fill
        cache.service(conflict_page, 0, 1.0, False)
        assert cache.stats.writebacks == 1
        assert cache.slow.stats.writes == 1

    def test_clean_victim_no_writeback(self, cache):
        conflict_page = cache.num_sets // 64
        cache.service(0, 0, 0.0, False)
        cache.service(conflict_page, 0, 1.0, False)
        assert cache.stats.writebacks == 0

    def test_write_hit_marks_dirty(self, cache):
        conflict_page = cache.num_sets // 64
        cache.service(0, 0, 0.0, False)
        cache.service(0, 0, 1.0, True)   # hit, dirties the line
        cache.service(conflict_page, 0, 2.0, False)
        assert cache.stats.writebacks == 1

    def test_hit_rate(self, cache):
        for t in range(4):
            cache.service(0, 0, float(t), False)
        assert cache.stats.hit_rate == pytest.approx(0.75)


class TestEngineCompatibility:
    def test_runs_under_replay(self, tiny_config):
        from repro.sim.engine import replay
        from repro.trace.record import Trace
        from repro.config import PAGE_SIZE

        rng = np.random.default_rng(0)
        n = 2000
        trace = Trace(
            core=rng.integers(0, 4, n).astype(np.uint16),
            address=(rng.integers(0, 8, n) * PAGE_SIZE
                     + rng.integers(0, 64, n) * 64).astype(np.uint64),
            is_write=rng.random(n) < 0.3,
            gap=np.full(n, 30, dtype=np.uint32),
        )
        system = DramCacheSystem(tiny_config)
        system.install_placement([], range(8))
        result = replay(tiny_config, system, trace)
        assert result.ipc > 0
        assert system.stats.accesses == n

    def test_rejects_explicit_placement(self, cache):
        with pytest.raises(ValueError):
            cache.install_placement([1, 2], range(8))


class TestExposure:
    def test_hot_page_fully_exposed(self, cache):
        for t in range(20):
            cache.service(3, 0, float(t), False)
        exposure = cache.page_exposure()
        assert exposure[3] == pytest.approx(19 / 20)

    def test_untouched_page_absent(self, cache):
        cache.service(1, 0, 0.0, False)
        assert 2 not in cache.page_exposure()

    def test_ser_between_extremes(self, cache):
        from repro.avf.page import PageStats
        from repro.faults.ser import SerModel

        for t in range(10):
            cache.service(0, 0, float(t), False)
        stats = PageStats(
            pages=np.array([0]), reads=np.array([10]),
            writes=np.array([0]), avf=np.array([0.5]),
        )
        model = SerModel(fit_fast_per_page=100.0, fit_slow_per_page=1.0)
        ser = cache.ser(stats, model)
        assert model.ser_ddr_only(stats) < ser < 0.5 * 100.0 + 1e-9


class TestPropertyInvariants:
    def test_hits_plus_misses_equals_accesses(self, tiny_config):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=20, deadline=None)
        @given(st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 63),
                      st.booleans()),
            min_size=1, max_size=120,
        ))
        def check(accesses):
            system = DramCacheSystem(tiny_config)
            t = 0.0
            for page, line, is_write in accesses:
                t = system.service(page, line, t, is_write)
            assert system.stats.accesses == len(accesses)
            # Exposure fractions are well-formed probabilities.
            for fraction in system.page_exposure().values():
                assert 0.0 <= fraction <= 1.0
            # Completion times are monotone when chained.
            assert t > 0.0

        check()
