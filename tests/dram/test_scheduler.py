"""Unit and property tests for the FR-FCFS channel scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramTiming
from repro.dram.scheduler import (
    ChannelScheduler,
    Request,
    SchedulerConfig,
    fcfs_reference,
)

CFG = SchedulerConfig(
    num_banks=4,
    timing=DramTiming(tCL=10, tRCD=10, tRP=10, burst_cycles=4),
    clock_period=1e-9,
    burst_seconds=4e-9,
)


def reqs(entries):
    """entries: list of (arrival_ns, bank, row, is_write)."""
    return [Request(arrival=a * 1e-9, bank=b, row=r, is_write=w)
            for a, b, r, w in entries]


class TestConfig:
    def test_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            SchedulerConfig(num_banks=0)

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            SchedulerConfig(write_low_watermark=8, write_high_watermark=4)

    def test_rejects_negative_refresh(self):
        with pytest.raises(ValueError):
            SchedulerConfig(refresh_interval=-1.0)


class TestFrFcfs:
    def test_all_requests_served(self):
        requests = reqs([(0, 0, 1, False), (1, 1, 2, False),
                         (2, 0, 1, True)])
        done = ChannelScheduler(CFG).simulate(requests)
        assert len(done) == 3
        assert all(r.finish > 0 for r in done)

    def test_row_hit_reordering(self):
        """A younger row hit is served before an older row miss to the
        same bank — the defining FR-FCFS behaviour."""
        requests = reqs([
            (0, 0, 5, False),    # opens row 5
            (1, 0, 9, False),    # older, but a row conflict
            (2, 0, 5, False),    # younger, row hit
        ])
        ChannelScheduler(CFG).simulate(requests)
        hit = requests[2]
        miss = requests[1]
        assert hit.start < miss.start

    def test_beats_or_matches_fcfs_on_row_locality(self):
        """On a hit-friendly pattern FR-FCFS finishes no later than
        strict arrival order."""
        rng = np.random.default_rng(0)
        entries = []
        t = 0
        for _ in range(60):
            row = int(rng.integers(0, 3))
            for _ in range(2):
                entries.append((t, int(rng.integers(0, 4)), row, False))
                t += 1
        a = reqs(entries)
        b = reqs(entries)
        frfcfs_finish = max(r.finish for r in ChannelScheduler(CFG).simulate(a))
        fcfs_finish = max(r.finish for r in fcfs_reference(b, CFG))
        assert frfcfs_finish <= fcfs_finish * 1.001

    def test_row_hit_rate_reported(self):
        requests = reqs([(0, 0, 1, False), (1, 0, 1, False),
                         (2, 0, 1, False)])
        sched = ChannelScheduler(CFG)
        sched.simulate(requests)
        assert sched.row_hit_rate() > 0.5


class TestWriteDraining:
    def test_reads_prioritised_over_buffered_writes(self):
        # Both present at t=0: the read goes first, the write buffers.
        requests = reqs([
            (0, 0, 1, True),
            (0, 1, 2, False),
        ])
        ChannelScheduler(CFG).simulate(requests)
        read = requests[1]
        write = requests[0]
        assert read.start <= write.start

    def test_writes_drain_when_no_reads(self):
        requests = reqs([(0, 0, 1, True), (1, 1, 2, True)])
        done = ChannelScheduler(CFG).simulate(requests)
        assert all(r.finish > 0 for r in done)

    def test_high_watermark_forces_drain(self):
        cfg = SchedulerConfig(num_banks=4, timing=CFG.timing,
                              clock_period=1e-9, burst_seconds=4e-9,
                              write_high_watermark=2,
                              write_low_watermark=0)
        # Writes arrive early, a read arrives late: the full write
        # queue must drain even while a read is outstanding later.
        requests = reqs([(0, 0, 1, True), (0, 1, 1, True),
                         (0, 2, 1, True), (500, 3, 1, False)])
        done = ChannelScheduler(cfg).simulate(requests)
        writes_done = max(r.finish for r in done if r.is_write)
        assert writes_done < 500e-9


class TestRefresh:
    def test_refresh_adds_stall_time(self):
        no_refresh = SchedulerConfig(num_banks=4, timing=CFG.timing,
                                     clock_period=1e-9, burst_seconds=4e-9)
        with_refresh = SchedulerConfig(
            num_banks=4, timing=CFG.timing, clock_period=1e-9,
            burst_seconds=4e-9,
            refresh_interval=100e-9, refresh_penalty=50e-9,
        )
        entries = [(i * 10, i % 4, i % 3, False) for i in range(40)]
        base = max(r.finish for r in
                   ChannelScheduler(no_refresh).simulate(reqs(entries)))
        slow = max(r.finish for r in
                   ChannelScheduler(with_refresh).simulate(reqs(entries)))
        assert slow > base


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 3), st.integers(0, 4),
              st.booleans()),
    min_size=1, max_size=60,
))
def test_scheduler_invariants(entries):
    """Every request is served, after its arrival, and the shared data
    bus never carries two overlapping bursts."""
    requests = reqs(entries)
    done = ChannelScheduler(CFG).simulate(requests)
    assert len(done) == len(entries)
    for req in done:
        assert req.finish >= req.arrival
        assert req.finish >= req.start
    # Bus exclusivity: completions are at least a burst apart.
    finishes = sorted(r.finish for r in done)
    for a, b in zip(finishes, finishes[1:]):
        assert b - a >= CFG.burst_seconds * 0.999


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 3), st.integers(0, 2),
              st.booleans()),
    min_size=1, max_size=40,
))
def test_no_starvation(entries):
    """FR-FCFS with write draining never leaves a request unserved,
    and no request waits unboundedly past the last arrival."""
    requests = reqs(entries)
    done = ChannelScheduler(CFG).simulate(requests)
    last_arrival = max(r.arrival for r in requests)
    worst_case = last_arrival + len(requests) * (
        CFG.timing.row_conflict_cycles() * CFG.clock_period
        + CFG.burst_seconds
    ) + 1e-6
    assert all(r.finish <= worst_case for r in done)
