"""Unit tests for DRAM bank / row-buffer state."""

import pytest

from repro.config import DramTiming
from repro.dram.bank import Bank

TIMING = DramTiming(tCL=10, tRCD=10, tRP=10, burst_cycles=4)
PERIOD = 1e-9


def make_bank():
    return Bank(TIMING, PERIOD)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        b = make_bank()
        assert b.access_cycles(5) == TIMING.row_miss_cycles()
        assert b.row_misses == 1

    def test_same_row_hits(self):
        b = make_bank()
        b.access_cycles(5)
        assert b.access_cycles(5) == TIMING.row_hit_cycles()
        assert b.row_hits == 1

    def test_different_row_conflicts(self):
        b = make_bank()
        b.access_cycles(5)
        assert b.access_cycles(6) == TIMING.row_conflict_cycles()
        assert b.row_conflicts == 1

    def test_open_row_tracked(self):
        b = make_bank()
        b.access_cycles(7)
        assert b.state.open_row == 7


class TestService:
    def test_idle_latency(self):
        b = make_bank()
        start, finish = b.service(0, arrival=0.0)
        assert start == 0.0
        assert finish == pytest.approx(TIMING.row_miss_cycles() * PERIOD)

    def test_busy_bank_queues(self):
        b = make_bank()
        _, first_done = b.service(0, arrival=0.0)
        start, _ = b.service(0, arrival=0.0)
        assert start == pytest.approx(first_done)

    def test_busy_until_monotonic(self):
        b = make_bank()
        last = 0.0
        for row in [0, 1, 0, 2, 2]:
            _, done = b.service(row, arrival=0.0)
            assert done >= last
            last = done

    def test_late_arrival_starts_at_arrival(self):
        b = make_bank()
        start, _ = b.service(0, arrival=1.0)
        assert start == 1.0

    def test_reset(self):
        b = make_bank()
        b.service(0, 0.0)
        b.reset()
        assert b.state.open_row is None
        assert b.state.busy_until == 0.0
        assert b.row_misses == 0
