"""Unit and property tests for the heterogeneous memory + page table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.hma import FAST, SLOW, CapacityError, HeterogeneousMemory


@pytest.fixture
def hma(tiny_config):
    return HeterogeneousMemory(tiny_config)


class TestPlacement:
    def test_map_and_lookup(self, hma):
        hma.map_page(3, FAST)
        hma.map_page(4, SLOW)
        assert hma.device_of(3) == FAST
        assert hma.device_of(4) == SLOW

    def test_double_map_rejected(self, hma):
        hma.map_page(1, FAST)
        with pytest.raises(ValueError):
            hma.map_page(1, SLOW)

    def test_bad_device_rejected(self, hma):
        with pytest.raises(ValueError):
            hma.map_page(1, 7)

    def test_unmapped_page_faults_to_slow(self, hma):
        assert hma.device_of(99) == SLOW

    def test_fast_capacity_enforced(self, hma):
        for page in range(hma.fast_capacity_pages):
            hma.map_page(page, FAST)
        with pytest.raises(CapacityError):
            hma.map_page(10_000, FAST)

    def test_install_placement(self, hma):
        hma.install_placement([0, 1], range(10))
        assert hma.fast_occupancy() == 2
        assert sorted(hma.pages_in(FAST)) == [0, 1]
        assert len(hma.pages_in(SLOW)) == 8

    def test_install_overflow_rejected(self, hma):
        too_many = range(hma.fast_capacity_pages + 1)
        with pytest.raises(CapacityError):
            hma.install_placement(too_many, too_many)


class TestService:
    def test_fast_pages_hit_fast_device(self, hma):
        hma.map_page(0, FAST)
        hma.service(0, 0, arrival=0.0, is_write=False)
        assert hma.fast.stats.reads == 1
        assert hma.slow.stats.reads == 0

    def test_slow_pages_hit_slow_device(self, hma):
        hma.map_page(0, SLOW)
        hma.service(0, 0, arrival=0.0, is_write=True)
        assert hma.slow.stats.writes == 1

    def test_fast_is_faster_when_idle(self, tiny_config):
        hma = HeterogeneousMemory(tiny_config)
        hma.map_page(0, FAST)
        hma.map_page(1, SLOW)
        t_fast = hma.service(0, 0, 0.0, False)
        t_slow = hma.service(1, 0, 0.0, False)
        assert t_fast < t_slow


class TestMigration:
    def test_swap_moves_pages(self, hma):
        hma.install_placement([0, 1], range(6))
        hma.migrate_pairs(to_fast=[2], to_slow=[0], now=0.0)
        assert hma.device_of(2) == FAST
        assert hma.device_of(0) == SLOW
        assert hma.fast_occupancy() == 2

    def test_migration_stats(self, hma):
        hma.install_placement([0], range(4))
        hma.migrate_pairs([1], [0], now=0.0)
        assert hma.migration_stats.migrations_to_fast == 1
        assert hma.migration_stats.migrations_to_slow == 1
        assert hma.migration_stats.total == 2
        assert hma.migration_stats.migration_seconds > 0

    def test_empty_migration_free(self, hma):
        hma.install_placement([0], range(4))
        assert hma.migrate_pairs([], [], now=5.0) == 5.0
        assert hma.migration_stats.total == 0

    def test_pinned_pages_do_not_move(self, hma):
        hma.install_placement([0], range(4))
        hma.pin([0, 2])
        hma.migrate_pairs(to_fast=[2], to_slow=[0], now=0.0)
        assert hma.device_of(0) == FAST
        assert hma.device_of(2) == SLOW

    def test_migrating_resident_page_is_noop(self, hma):
        hma.install_placement([0], range(4))
        hma.migrate_pairs(to_fast=[0], to_slow=[], now=0.0)
        assert hma.migration_stats.total == 0

    def test_demoting_slow_page_is_noop(self, hma):
        hma.install_placement([0], range(4))
        hma.migrate_pairs(to_fast=[], to_slow=[2], now=0.0)
        assert hma.migration_stats.total == 0

    def test_capacity_respected_under_promotion_pressure(self, hma):
        cap = hma.fast_capacity_pages
        hma.install_placement(range(cap), range(cap + 10))
        # Try to promote more pages without demoting: must not exceed.
        hma.migrate_pairs(to_fast=list(range(cap, cap + 10)), to_slow=[],
                          now=0.0)
        assert hma.fast_occupancy() == cap

    def test_migration_charges_both_devices(self, hma):
        hma.install_placement([0], range(4))
        fast_busy_before = list(hma.fast.channel_busy_until)
        slow_busy_before = list(hma.slow.channel_busy_until)
        hma.migrate_pairs([1], [0], now=0.0)
        assert hma.fast.channel_busy_until != fast_busy_before
        assert hma.slow.channel_busy_until != slow_busy_before

    def test_duplicate_entries_count_once(self, hma):
        hma.install_placement([0, 1], range(6))
        hma.migrate_pairs(to_fast=[2, 2, 2], to_slow=[0, 0], now=0.0)
        assert hma.device_of(2) == FAST
        assert hma.device_of(0) == SLOW
        assert hma.fast_occupancy() == 2
        assert hma.migration_stats.migrations_to_fast == 1
        assert hma.migration_stats.migrations_to_slow == 1

    def test_page_in_both_directions_stays_put(self, hma):
        hma.install_placement([0], range(6))
        hma.migrate_pairs(to_fast=[2], to_slow=[2], now=0.0)
        assert hma.device_of(2) == SLOW
        assert hma.migration_stats.total == 0
        assert hma.migration_stats.migration_seconds == 0.0

    def test_swap_at_exact_capacity(self, hma):
        cap = hma.fast_capacity_pages
        hma.install_placement(range(cap), range(cap + 4))
        hma.migrate_pairs(to_fast=[cap], to_slow=[0], now=0.0)
        assert hma.fast_occupancy() == cap
        assert hma.device_of(cap) == FAST
        assert hma.device_of(0) == SLOW

    def test_unmapped_page_promotes(self, hma):
        hma.install_placement([0], range(4))
        hma.migrate_pairs(to_fast=[99], to_slow=[], now=0.0)
        assert hma.device_of(99) == FAST
        assert hma.fast_occupancy() == 2
        assert hma.migration_stats.migrations_to_fast == 1

    def test_unmapped_page_demotion_is_noop(self, hma):
        hma.install_placement([0], range(4))
        hma.migrate_pairs(to_fast=[], to_slow=[99], now=0.0)
        assert hma.migration_stats.total == 0

    def test_pinned_filtered_in_both_directions(self, hma):
        hma.install_placement([0, 1], range(6))
        hma.pin([1, 3])
        hma.migrate_pairs(to_fast=[3, 4], to_slow=[1, 0], now=0.0)
        assert hma.device_of(1) == FAST   # pinned: not demoted
        assert hma.device_of(3) == SLOW   # pinned: not promoted
        assert hma.device_of(4) == FAST
        assert hma.device_of(0) == SLOW
        assert hma.migration_stats.migrations_to_fast == 1
        assert hma.migration_stats.migrations_to_slow == 1

    def test_stat_accounting_mixed_batch(self, hma):
        """Dups, pins, both-direction, unmapped — stats count real moves."""
        hma.install_placement([0, 1], range(8))
        hma.pin([1])
        hma.migrate_pairs(
            to_fast=[2, 2, 5, 5, 99], to_slow=[0, 0, 1, 5], now=0.0,
        )
        # 5 appears in both directions -> stays; 1 is pinned; 99 was
        # unmapped and gets a fresh fast frame; 2 promotes; 0 demotes.
        assert hma.device_of(5) == SLOW
        assert hma.device_of(1) == FAST
        assert hma.device_of(99) == FAST
        assert hma.device_of(2) == FAST
        assert hma.device_of(0) == SLOW
        assert hma.migration_stats.migrations_to_fast == 2
        assert hma.migration_stats.migrations_to_slow == 1
        assert hma.migration_stats.total == 3
        assert hma.migration_stats.migration_seconds > 0.0


class TestServiceBatch:
    """service_batch must equal per-request service() calls exactly."""

    def _requests(self, n=200, seed=11):
        import numpy as np

        rng = np.random.default_rng(seed)
        pages = rng.integers(0, 40, size=n)
        lines = rng.integers(0, 64, size=n)
        arrivals = np.sort(rng.uniform(0.0, 1e-4, size=n))
        writes = rng.random(size=n) < 0.3
        return pages, lines, arrivals, writes

    def test_matches_scalar_service(self, tiny_config):
        scalar = HeterogeneousMemory(tiny_config)
        batched = HeterogeneousMemory(tiny_config)
        for hma in (scalar, batched):
            hma.install_placement(range(8), range(30))
        pages, lines, arrivals, writes = self._requests()
        expected = [
            scalar.service(int(p), int(ln), float(t), bool(w))
            for p, ln, t, w in zip(pages, lines, arrivals, writes)
        ]
        got = batched.service_batch(pages, lines, arrivals, writes)
        assert got.tolist() == expected
        for dev_s, dev_b in ((scalar.fast, batched.fast),
                             (scalar.slow, batched.slow)):
            assert dev_b.stats.reads == dev_s.stats.reads
            assert dev_b.stats.writes == dev_s.stats.writes
            assert dev_b.row_buffer_stats() == dev_s.row_buffer_stats()
            assert (dev_b.stats.total_read_latency
                    == dev_s.stats.total_read_latency)
            assert dev_b.stats.busy_time == dev_s.stats.busy_time
            assert (list(dev_b.channel_busy_until)
                    == list(dev_s.channel_busy_until))

    def test_faults_unmapped_pages_like_scalar(self, tiny_config):
        scalar = HeterogeneousMemory(tiny_config)
        batched = HeterogeneousMemory(tiny_config)
        import numpy as np

        pages = np.array([100, 101, 100, 102])
        lines = np.zeros(4, dtype=int)
        arrivals = np.array([0.0, 1e-6, 2e-6, 3e-6])
        writes = np.zeros(4, dtype=bool)
        expected = [
            scalar.service(int(p), 0, float(t), False)
            for p, t in zip(pages, arrivals)
        ]
        got = batched.service_batch(pages, lines, arrivals, writes)
        assert got.tolist() == expected
        assert ([e[:2] for e in scalar.page_entries()]
                == [e[:2] for e in batched.page_entries()])

    def test_empty_batch(self, hma):
        import numpy as np

        out = hma.service_batch(np.empty(0, dtype=int), np.empty(0, dtype=int),
                                np.empty(0), np.empty(0, dtype=bool))
        assert len(out) == 0


def _tiny_system():
    from repro.config import MemoryConfig, SystemConfig

    def mem(name, pages, channels, ecc):
        return MemoryConfig(
            name=name, capacity_bytes=pages * 4096,
            bus_frequency_hz=500e6, bus_width_bits=64,
            channels=channels, ecc=ecc,
        )

    return SystemConfig(
        num_cores=4,
        fast_memory=mem("HBM", 16, 4, "secded"),
        slow_memory=mem("DDR3", 256, 1, "chipkill"),
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()),
                min_size=1, max_size=60))
def test_frames_stay_unique_per_device(moves):
    """After arbitrary migrations, no two pages share a frame."""
    hma = HeterogeneousMemory(_tiny_system())
    hma.install_placement(range(8), range(31))
    for page, to_fast in moves:
        if to_fast:
            victims = hma.pages_in(FAST)[:1]
            hma.migrate_pairs([page], victims, now=0.0)
        else:
            hma.migrate_pairs([], [page], now=0.0)
    seen = set()
    for _page, device, frame in hma.page_entries():
        key = (device, frame)
        assert key not in seen
        seen.add(key)
    assert hma.fast_occupancy() <= hma.fast_capacity_pages
