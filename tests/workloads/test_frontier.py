"""The frontier server-workload generators and tolerance-tiered policy."""

import numpy as np
import pytest

from repro.core.annotations import (
    TOLERANCE_CLASSES,
    TOLERANCE_WEIGHTS,
    ToleranceMap,
    tolerance_map,
)
from repro.core.migration import OracleRiskMigration, ToleranceTieredMigration
from repro.harness.cli import main as cli_main
from repro.sim.system import (
    evaluate_migration,
    prepare_workload,
    resolve_workload,
)
from repro.workloads import (
    FRONTIER_PROFILES,
    FRONTIER_WORKLOADS,
    describe,
    frontier_profile,
    frontier_workload,
    generate_frontier,
    is_frontier,
    phase_schedule,
    tolerance_mix,
)

SCALE = 1 / 2048
ACCESSES = 1200


def _trace_bytes(wt):
    return b"".join(
        getattr(wt.trace, f).tobytes()
        for f in ("core", "address", "is_write", "gap")
    ) + wt.times.tobytes()


@pytest.fixture(scope="module", params=FRONTIER_WORKLOADS)
def frontier_trace(request):
    return request.param, generate_frontier(
        request.param, scale=SCALE, accesses_per_core=ACCESSES, seed=11)


class TestRegistry:
    def test_families(self):
        assert set(FRONTIER_WORKLOADS) == {"kvstore", "webserver",
                                           "compiler"}

    def test_is_frontier(self):
        assert is_frontier("kvstore")
        assert not is_frontier("astar")
        assert not is_frontier("mix1")
        assert not is_frontier(None)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            frontier_profile("redis")
        with pytest.raises(KeyError):
            frontier_workload("redis")

    def test_resolve_workload_dispatch(self):
        assert resolve_workload("kvstore").name == "kvstore"
        assert resolve_workload("mix1").name == "mix1"
        assert resolve_workload("astar").name == "astar"

    def test_tolerance_classes_are_valid(self):
        for profile in FRONTIER_PROFILES.values():
            region_names = {r.name for r in profile.regions}
            for region, cls in profile.tolerance.items():
                assert region in region_names
                assert cls in TOLERANCE_CLASSES
            for region in profile.churn_regions:
                assert region in region_names


class TestPhaseSchedule:
    @pytest.mark.parametrize("name", FRONTIER_WORKLOADS)
    def test_partitions_unit_window(self, name):
        profile = frontier_profile(name)
        schedule = phase_schedule(profile, seed=3)
        assert len(schedule) == profile.phases
        assert schedule[0].start == 0.0
        assert schedule[-1].end == 1.0
        for prev, cur in zip(schedule, schedule[1:]):
            assert prev.end == cur.start
            assert cur.span > 0
        assert all(p.load_weight > 0 for p in schedule)

    def test_deterministic_and_seed_sensitive(self):
        profile = frontier_profile("webserver")
        a = phase_schedule(profile, seed=5)
        b = phase_schedule(profile, seed=5)
        c = phase_schedule(profile, seed=6)
        assert a == b
        assert a != c

    def test_phase_count_override(self):
        profile = frontier_profile("kvstore")
        assert len(phase_schedule(profile, seed=0, phases=3)) == 3
        with pytest.raises(ValueError):
            phase_schedule(profile, seed=0, phases=0)

    def test_pipeline_emphasis_cycles(self):
        schedule = phase_schedule(frontier_profile("compiler"), seed=1)
        labels = [p.label.rsplit("-", 1)[0] for p in schedule]
        assert labels[:3] == ["parse", "optimize", "codegen"]
        assert all(p.emphasis for p in schedule)


class TestGeneration:
    def test_seeded_determinism(self, frontier_trace):
        name, wt = frontier_trace
        twin = generate_frontier(name, scale=SCALE,
                                 accesses_per_core=ACCESSES, seed=11)
        assert _trace_bytes(wt) == _trace_bytes(twin)
        assert (wt.tolerance.page_class.tobytes()
                == twin.tolerance.page_class.tobytes())

    def test_seed_changes_trace(self, frontier_trace):
        name, wt = frontier_trace
        other = generate_frontier(name, scale=SCALE,
                                  accesses_per_core=ACCESSES, seed=12)
        assert _trace_bytes(wt) != _trace_bytes(other)

    def test_shape_and_budget(self, frontier_trace):
        name, wt = frontier_trace
        profile = frontier_profile(name)
        assert len(wt.trace) == ACCESSES * profile.num_cores
        assert wt.footprint_pages == (profile.footprint_pages(SCALE)
                                      * profile.num_cores)
        assert int(wt.trace.address.max()) // 4096 < wt.footprint_pages
        assert len(wt.core_benchmarks) == profile.num_cores
        assert wt.core_mlp == [profile.mlp] * profile.num_cores

    def test_times_sorted_in_unit_window(self, frontier_trace):
        _, wt = frontier_trace
        assert (np.diff(wt.times) >= 0).all()
        assert wt.times[0] >= 0.0 and wt.times[-1] < 1.0

    def test_tolerance_map_attached(self, frontier_trace):
        name, wt = frontier_trace
        tol = wt.tolerance
        assert isinstance(tol, ToleranceMap)
        assert len(tol) == wt.footprint_pages
        mix = tol.mix_fractions()
        # The page-level mix tracks the footprint-share mix closely.
        expected = tolerance_mix(frontier_profile(name))
        for cls, frac in expected.items():
            assert mix[cls] == pytest.approx(frac, abs=0.06)

    def test_hot_key_churn_rotates_working_set(self):
        """kvstore phases rotate the hot keys: the hottest pages of the
        first phase and last phase overlap far less than a stationary
        trace's would."""
        wt = generate_frontier("kvstore", scale=1 / 512,
                               accesses_per_core=4000, seed=4)
        pages = wt.trace.address // 4096
        early = pages[wt.times < 0.15]
        late = pages[wt.times > 0.85]

        def top_pages(p, k=30):
            vals, counts = np.unique(p, return_counts=True)
            return set(vals[np.argsort(-counts)[:k]].tolist())

        overlap = len(top_pages(early) & top_pages(late)) / 30
        assert overlap < 0.8

    def test_diurnal_load_varies(self):
        """webserver phase volumes follow the seeded load curve: the
        busiest decile of time carries well over 10% of requests."""
        wt = generate_frontier("webserver", scale=1 / 1024,
                               accesses_per_core=3000, seed=2)
        hist, _ = np.histogram(wt.times, bins=10, range=(0, 1))
        assert hist.max() / hist.sum() > 0.13
        assert hist.min() / hist.sum() < 0.09

    def test_invalid_accesses(self):
        with pytest.raises(ValueError):
            generate_frontier("kvstore", scale=SCALE,
                              accesses_per_core=0, seed=0)


class TestToleranceMap:
    def test_weights_match_classes(self):
        tm = ToleranceMap(page_class=np.array([0, 1, 2, 2], dtype=np.int8))
        w = tm.weights()
        assert w[0] == TOLERANCE_WEIGHTS["critical"]
        assert w[1] == TOLERANCE_WEIGHTS["standard"]
        assert w[2] == w[3] == TOLERANCE_WEIGHTS["tolerant"]

    def test_out_of_range_pages_default_standard(self):
        tm = ToleranceMap(page_class=np.zeros(4, dtype=np.int8))
        w = tm.weights_of(np.array([2, 7, -1]))
        assert w[0] == TOLERANCE_WEIGHTS["critical"]
        assert w[1] == w[2] == TOLERANCE_WEIGHTS["standard"]
        assert tm.weight_of(7) == TOLERANCE_WEIGHTS["standard"]

    def test_scalar_matches_vector(self):
        tm = ToleranceMap(
            page_class=np.array([0, 2, 1, 0, 2], dtype=np.int8))
        pages = np.array([0, 1, 2, 3, 4, 9])
        vec = tm.weights_of(pages)
        for page, lane in zip(pages.tolist(), vec):
            assert tm.weight_of(page) == lane

    def test_invalid_class_index_rejected(self):
        with pytest.raises(ValueError):
            ToleranceMap(page_class=np.array([0, 5], dtype=np.int8))

    def test_builder_rejects_unknown_class(self):
        wt = generate_frontier("kvstore", scale=SCALE,
                               accesses_per_core=200, seed=0)
        with pytest.raises(ValueError):
            tolerance_map(wt, {"hot_keys": "indestructible"})


class TestToleranceTieredMigration:
    @pytest.fixture(scope="class")
    def prepared(self):
        return prepare_workload("webserver", scale=SCALE,
                                accesses_per_core=ACCESSES, seed=5)

    def test_kernel_parity(self, prepared):
        tol = prepared.workload_trace.tolerance
        results = {}
        for kernel in ("sparse", "array"):
            res = evaluate_migration(
                prepared,
                ToleranceTieredMigration(tolerance=tol,
                                         policy_kernel=kernel),
                num_intervals=6)
            results[kernel] = (res.ipc, res.ser, res.migrations)
        assert results["sparse"] == results["array"]

    def test_neutral_weights_degrade_to_oracle_risk(self, prepared):
        """Without a tolerance map the policy is oracle-risk exactly."""
        neutral = evaluate_migration(
            prepared, ToleranceTieredMigration(), num_intervals=6)
        oracle = evaluate_migration(
            prepared, OracleRiskMigration(), num_intervals=6)
        assert neutral.ipc == oracle.ipc
        assert neutral.ser == oracle.ser
        assert neutral.migrations == oracle.migrations

    def test_weighting_changes_plans(self, prepared):
        tol = prepared.workload_trace.tolerance
        weighted = evaluate_migration(
            prepared, ToleranceTieredMigration(tolerance=tol),
            num_intervals=6)
        neutral = evaluate_migration(
            prepared, ToleranceTieredMigration(), num_intervals=6)
        assert (weighted.ipc, weighted.ser) != (neutral.ipc, neutral.ser)

    def test_requires_times(self):
        mech = ToleranceTieredMigration()
        with pytest.raises(ValueError, match="times"):
            mech.observe_chunk(np.array([1, 2]),
                               np.array([True, False]), None)

    def test_invalid_swap_fraction(self):
        with pytest.raises(ValueError):
            ToleranceTieredMigration(max_swap_fraction=0.0)

    def test_hardware_cost_includes_class_bits(self):
        mech = ToleranceTieredMigration()
        oracle = OracleRiskMigration()
        extra = (mech.hardware_cost_bytes(4096, 512)
                 - oracle.hardware_cost_bytes(4096, 512))
        assert extra == (2 * 4096 + 7) // 8


class TestCli:
    def test_workloads_lists_generators(self, capsys):
        assert cli_main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in FRONTIER_WORKLOADS:
            assert name in out
        assert "tolerance mix" in out

    def test_describe_frontier(self, capsys):
        assert cli_main(["workloads", "--describe", "kvstore",
                         "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "phase schedule (seed 3)" in out
        assert "hot_keys" in out
        assert "tolerance-class mix" in out

    def test_describe_spec_and_mix(self, capsys):
        assert cli_main(["workloads", "--describe", "astar"]) == 0
        assert "region" in capsys.readouterr().out
        assert cli_main(["workloads", "--describe", "mix1"]) == 0
        assert "one core per entry" in capsys.readouterr().out

    def test_describe_unknown(self, capsys):
        assert cli_main(["workloads", "--describe", "nope"]) == 2

    def test_describe_matches_module_function(self, capsys):
        assert cli_main(["workloads", "--describe", "compiler"]) == 0
        out = capsys.readouterr().out
        assert describe("compiler", seed=0).splitlines()[0] in out


class TestWorkloadFrontierExperiment:
    def test_headline_and_win(self):
        from repro.harness.experiments import workload_frontier

        fig = workload_frontier(workloads=("webserver",),
                                accesses_per_core=2500, scale=SCALE,
                                seed=0, num_intervals=6)
        schemes = {row[1] for row in fig.rows}
        assert schemes == {"perf-migration", "fc-migration",
                           "cc-migration", "tolerance-tiered"}
        assert "webserver_ser_tt_vs_cc" in fig.summary
        assert fig.summary["frontier_wins"] >= 1.0
        assert fig.summary["best_ser_tt_vs_cc"] < 1.0
