"""Registry under multi-process write contention (WAL + lock retry)."""

import multiprocessing
import sqlite3

import pytest

from repro.obs import registry as registry_module
from repro.obs.registry import RunRegistry, _is_locked, _retry_locked


def _hammer(args):
    """One worker: append ``count`` runs to a shared registry."""
    path, worker, count = args
    reg = RunRegistry(path)
    return [reg.record_run("hammer", config={"worker": worker, "i": i},
                           metrics={"ipc": float(i)})
            for i in range(count)]


class TestLockRetry:
    def test_retries_until_the_lock_clears(self, monkeypatch):
        monkeypatch.setattr(registry_module.time, "sleep", lambda s: None)
        calls = []

        def op():
            calls.append(1)
            if len(calls) < 4:
                raise sqlite3.OperationalError("database is locked")
            return "done"

        assert _retry_locked(op) == "done"
        assert len(calls) == 4

    def test_non_lock_errors_raise_immediately(self):
        def op():
            raise sqlite3.OperationalError("no such table: runs")

        with pytest.raises(sqlite3.OperationalError):
            _retry_locked(op)

    def test_lock_detection(self):
        assert _is_locked(sqlite3.OperationalError("database is locked"))
        assert _is_locked(sqlite3.OperationalError("database is busy"))
        assert not _is_locked(sqlite3.OperationalError("syntax error"))


class TestWalMode:
    def test_store_runs_in_wal(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "registry.sqlite"))
        reg.record_run("probe")
        with sqlite3.connect(reg.path) as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"


class TestMultiProcessHammer:
    def test_concurrent_writers_lose_no_rows(self, tmp_path):
        path = str(tmp_path / "registry.sqlite")
        workers, runs_each = 4, 6
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(workers) as pool:
            ids = pool.map(_hammer, [(path, w, runs_each)
                                     for w in range(workers)])
        flat = [run_id for batch in ids for run_id in batch]
        assert len(flat) == workers * runs_each
        assert len(set(flat)) == len(flat), "run id collision"
        reg = RunRegistry(path)
        rows = reg.list_runs("hammer")
        assert len(rows) == workers * runs_each
        # Every worker's every write landed with its metrics attached.
        seen = {(r.config["worker"], r.config["i"]) for r in rows}
        assert seen == {(w, i) for w in range(workers)
                        for i in range(runs_each)}
        for row in rows:
            assert reg.metrics(row.run_id) == {
                "ipc": float(row.config["i"])}
