"""Unit tests for the SQLite run registry and run_context glue."""

import json
import math
import os

import repro.obs as obs
from repro.obs import metrics, run_context
from repro.obs.registry import (
    RunRegistry,
    config_hash,
    default_obs_dir,
    registry_path,
)
from repro.obs.snapshots import EpochSnapshot, SnapshotSeries


def _registry(tmp_path):
    return RunRegistry(str(tmp_path / "registry.sqlite"))


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_differs_on_value(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestPaths:
    def test_default_obs_dir_via_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", "/tmp/somewhere")
        assert default_obs_dir() == "/tmp/somewhere"
        assert registry_path() == "/tmp/somewhere/registry.sqlite"

    def test_default_obs_dir_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        assert default_obs_dir().endswith(".repro-obs")


class TestRecordAndRead:
    def test_round_trip(self, tmp_path):
        reg = _registry(tmp_path)
        series = SnapshotSeries()
        series.append(EpochSnapshot(epoch=0, fast_reads=3))
        series.append(EpochSnapshot(epoch=1, fast_reads=9))
        run_id = reg.record_run(
            "exp", config={"seed": 1}, metrics={"ipc": 1.5},
            series={"main": series}, artifacts={"spans": "/tmp/x"})
        assert run_id == "exp-1"
        run = reg.get_run(run_id)
        assert run.label == "exp"
        assert run.config == {"seed": 1}
        assert run.artifacts == {"spans": "/tmp/x"}
        assert run.status == "completed"
        assert reg.metrics(run_id) == {"ipc": 1.5}
        assert reg.series_names(run_id) == ["main"]
        back = reg.series(run_id, "main")
        assert back.metric_series("fast_reads") == [3.0, 9.0]

    def test_ids_increment_per_label(self, tmp_path):
        reg = _registry(tmp_path)
        assert reg.record_run("a") == "a-1"
        assert reg.record_run("a") == "a-2"
        assert reg.record_run("b") == "b-1"

    def test_latest_and_resolve(self, tmp_path):
        reg = _registry(tmp_path)
        reg.record_run("a")
        reg.record_run("a")
        assert reg.latest("a").run_id == "a-2"
        assert reg.resolve("a").run_id == "a-2"  # bare label
        assert reg.resolve("a-1").run_id == "a-1"  # exact id
        assert reg.resolve("nope") is None

    def test_list_runs_filter(self, tmp_path):
        reg = _registry(tmp_path)
        reg.record_run("a")
        reg.record_run("b")
        assert [r.run_id for r in reg.list_runs()] == ["a-1", "b-1"]
        assert [r.run_id for r in reg.list_runs("b")] == ["b-1"]

    def test_nan_metric_becomes_null(self, tmp_path):
        reg = _registry(tmp_path)
        run_id = reg.record_run("x", metrics={"bad": math.nan, "ok": 1.0})
        stored = reg.metrics(run_id)
        assert stored["ok"] == 1.0
        assert stored["bad"] is None

    def test_series_from_plain_dicts(self, tmp_path):
        reg = _registry(tmp_path)
        run_id = reg.record_run(
            "x", series={"s": [{"epoch": 0, "v": 2.0}, {"epoch": 1, "v": 4.0}]})
        assert reg.series(run_id, "s").metric_series("v") == [2.0, 4.0]


class TestRunContext:
    def test_disabled_yields_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        metrics.reset()
        with run_context("quiet") as ctx:
            assert ctx is None
        assert obs.current_run() is None

    def test_enabled_records_run(self, tmp_path):
        with run_context("demo", config={"k": 1},
                         obs_dir=str(tmp_path), enabled=True) as ctx:
            assert obs.current_run() is ctx
            metrics.get_registry().counter("events").inc(4)
            with obs.span("stage"):
                pass
            series = SnapshotSeries()
            series.append(EpochSnapshot(epoch=0))
            ctx.add_series("trace", series)
            ctx.add_metrics({"score": 2.5, "skip": "not-a-number"})
        assert obs.current_run() is None
        reg = RunRegistry(str(tmp_path / "registry.sqlite"))
        run = reg.resolve("demo")
        assert run.run_id == "demo-1"
        stored = reg.metrics(run.run_id)
        assert stored["events"] == 4.0
        assert stored["score"] == 2.5
        assert "skip" not in stored
        assert reg.series_names(run.run_id) == ["trace"]
        spans_path = run.artifacts["spans"]
        assert os.path.exists(spans_path)
        names = [json.loads(line)["name"]
                 for line in open(spans_path, encoding="utf-8")]
        assert names == ["stage"]

    def test_failure_marks_status(self, tmp_path):
        try:
            with run_context("boom", obs_dir=str(tmp_path), enabled=True):
                raise RuntimeError("die")
        except RuntimeError:
            pass
        reg = RunRegistry(str(tmp_path / "registry.sqlite"))
        assert reg.resolve("boom").status == "failed"

    def test_duplicate_series_names_suffixed(self, tmp_path):
        with run_context("dup", obs_dir=str(tmp_path), enabled=True) as ctx:
            for _ in range(2):
                series = SnapshotSeries()
                series.append(EpochSnapshot(epoch=0))
                ctx.add_series("same", series)
        reg = RunRegistry(str(tmp_path / "registry.sqlite"))
        assert reg.series_names("dup-1") == ["same", "same#2"]

    def test_restores_previous_registry(self, tmp_path):
        outer = metrics.MetricsRegistry()
        prev = metrics.install(outer)
        try:
            with run_context("inner", obs_dir=str(tmp_path), enabled=True):
                assert metrics.get_registry() is not outer
            assert metrics.get_registry() is outer
        finally:
            metrics.install(prev)
