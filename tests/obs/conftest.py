"""Shared hygiene for observability tests: reset module-level state."""

import pytest

from repro.obs import metrics, tracing


@pytest.fixture(autouse=True)
def _clean_obs_state():
    metrics.reset()
    tracing.set_current_recorder(None)
    yield
    metrics.reset()
    tracing.set_current_recorder(None)
