"""End-to-end telemetry: a real migration replay under run_context."""

import pytest

from repro.core.migration import ReliabilityAwareFCMigration
from repro.obs import run_context
from repro.obs.registry import RunRegistry
from repro.obs.snapshots import SNAPSHOT_FIELDS
from repro.sim.system import evaluate_migration, prepare_workload


@pytest.fixture(scope="module")
def prep():
    return prepare_workload("mcf", accesses_per_core=1500)


def test_migration_run_records_everything(prep, tmp_path):
    with run_context("itest", config={"wl": "mcf"},
                     obs_dir=str(tmp_path), enabled=True):
        result = evaluate_migration(
            prep, ReliabilityAwareFCMigration(), num_intervals=4)
    reg = RunRegistry(str(tmp_path / "registry.sqlite"))
    run = reg.resolve("itest")
    assert run is not None and run.status == "completed"

    metrics = reg.metrics(run.run_id)
    assert metrics["replay.runs"] == 1.0
    assert metrics["replay.chunks"] == 4.0
    assert metrics["plan.fc-migration.calls"] == 3.0  # n_intervals - 1

    names = reg.series_names(run.run_id)
    assert names == ["mcf:fc-migration"]
    series = reg.series(run.run_id, names[0])
    assert len(series) == 4
    for field in SNAPSHOT_FIELDS:
        assert len(series.metric_series(field)) == 4
    # Annotated per-interval SER sums to the scheme's total SER.
    assert sum(series.metric_series("ser")) == pytest.approx(result.ser)
    # Cumulative migration counters are monotone.
    to_fast = series.metric_series("migrations_to_fast")
    assert to_fast == sorted(to_fast)
    assert to_fast[-1] + series.metric_series("migrations_to_slow")[-1] \
        == result.migrations


def test_telemetry_off_is_bit_identical(prep):
    mech = ReliabilityAwareFCMigration
    plain = evaluate_migration(prep, mech(), num_intervals=4)
    import tempfile
    with tempfile.TemporaryDirectory() as obs_dir:
        with run_context("parity", obs_dir=obs_dir, enabled=True):
            traced = evaluate_migration(prep, mech(), num_intervals=4)
    assert traced.ipc == plain.ipc
    assert traced.ser == plain.ser
    assert traced.migrations == plain.migrations
