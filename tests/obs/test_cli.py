"""CLI verbs for the observability subsystem: config, report, compare."""

import pytest

from repro.harness.cli import main
from repro.obs.registry import RunRegistry


class TestConfigVerb:
    def test_prints_every_knob(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        for env in ("REPRO_TELEMETRY", "REPRO_OBS_DIR", "REPRO_FAULT_TRIALS",
                    "REPRO_POLICY_KERNEL", "REPRO_REPLAY_KERNEL"):
            assert env in out

    def test_shows_env_source(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "7")
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "env:REPRO_FAULT_TRIALS" in out


@pytest.fixture
def seeded(tmp_path):
    reg = RunRegistry(str(tmp_path / "registry.sqlite"))
    reg.record_run("exp", metrics={"ipc": 1.0, "ser": 1.0})
    reg.record_run("exp", metrics={"ipc": 1.0, "ser": 1.0})
    reg.record_run("exp", metrics={"ipc": 0.5, "ser": 3.0})
    return str(tmp_path)


class TestReportVerb:
    def test_reports_by_id(self, seeded, capsys):
        assert main(["report", "exp-1", "--obs-dir", seeded]) == 0
        out = capsys.readouterr().out
        assert "run      exp-1" in out
        assert "ipc" in out

    def test_label_resolves_to_latest(self, seeded, capsys):
        assert main(["report", "exp", "--obs-dir", seeded]) == 0
        assert "run      exp-3" in capsys.readouterr().out

    def test_unknown_run_exits_2(self, seeded, capsys):
        assert main(["report", "ghost", "--obs-dir", seeded]) == 2
        assert "no run" in capsys.readouterr().err


class TestCompareVerb:
    def test_identical_runs_exit_0(self, seeded, capsys):
        assert main(["compare", "exp-1", "exp-2",
                     "--obs-dir", seeded]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_injected_regression_exits_1(self, seeded, capsys):
        assert main(["compare", "exp-1", "exp-3",
                     "--obs-dir", seeded]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_threshold_flag_relaxes(self, seeded):
        # 50% IPC drop and 3x SER are inside a huge threshold.
        assert main(["compare", "exp-1", "exp-3", "--obs-dir", seeded,
                     "--threshold", "5.0"]) == 0

    def test_unknown_run_exits_2(self, seeded):
        assert main(["compare", "exp-1", "ghost", "--obs-dir", seeded]) == 2

    def test_bench_floor_failure_exits_1(self, seeded, tmp_path, capsys):
        bench_root = tmp_path / "floors"
        bench_root.mkdir()
        (bench_root / "BENCH_x.json").write_text('{"ipc": 2.0}')
        assert main(["compare", "exp-1", "exp-2", "--obs-dir", seeded,
                     "--bench-root", str(bench_root)]) == 1
        assert "BELOW FLOOR" in capsys.readouterr().out
