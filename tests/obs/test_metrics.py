"""Unit tests for the metrics core (counters/gauges/histograms)."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(1)
        g.set(7.0)
        assert g.value == 7.0

    def test_histogram_buckets(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # under, mid, overflow
        assert h.count == 3
        assert h.mean == pytest.approx((0.5 + 5.0 + 50.0) / 3)

    def test_histogram_boundary_lands_in_lower_bucket(self):
        h = Histogram("x", bounds=(1.0, 10.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=())

    def test_histogram_as_dict(self):
        h = Histogram("x", bounds=(2.0, 1.0))  # sorted internally
        h.observe(1.5)
        d = h.as_dict()
        assert d["bounds"] == [1.0, 2.0]
        assert d["counts"] == [0, 1, 0]
        assert d["sum"] == 1.5
        assert d["count"] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1)
        reg.histogram("c", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == 1.0
        assert snap["b"] == 2.0
        assert isinstance(snap["c"], dict)

    def test_scalars_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0,)).observe(0.25)
        reg.histogram("h", bounds=(1.0,)).observe(0.75)
        scalars = reg.scalars()
        assert scalars == {"h.sum": 1.0, "h.count": 2.0}

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.snapshot() == {}


class TestNullBackend:
    def test_null_registry_hands_out_shared_noop(self):
        assert NULL_REGISTRY.counter("x") is NULL_INSTRUMENT
        assert NULL_REGISTRY.gauge("y") is NULL_INSTRUMENT
        assert NULL_REGISTRY.histogram("z") is NULL_INSTRUMENT

    def test_null_instrument_records_nothing(self):
        NULL_INSTRUMENT.inc(5)
        NULL_INSTRUMENT.set(5)
        NULL_INSTRUMENT.observe(5)
        assert NULL_INSTRUMENT.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.scalars() == {}


class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert metrics.get_registry() is NULL_REGISTRY
        assert not metrics.enabled()

    def test_env_knob_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        reg = metrics.get_registry()
        assert isinstance(reg, MetricsRegistry)
        assert metrics.enabled()

    def test_enable_disable_override_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        metrics.disable()
        assert not metrics.enabled()
        monkeypatch.delenv("REPRO_TELEMETRY")
        metrics.enable()
        assert metrics.enabled()

    def test_install_takes_precedence(self):
        metrics.disable()
        mine = MetricsRegistry()
        prev = metrics.install(mine)
        assert prev is None
        assert metrics.get_registry() is mine
        metrics.install(prev)
        assert metrics.get_registry() is NULL_REGISTRY

    def test_counters_route_to_installed_registry(self):
        mine = MetricsRegistry()
        metrics.install(mine)
        metrics.get_registry().counter("hit").inc()
        assert mine.scalars() == {"hit": 1.0}
