"""Unit tests for span tracing."""

import json

from repro.obs.tracing import (
    NULL_SPAN,
    SpanRecorder,
    current_recorder,
    set_current_recorder,
    span,
)


class TestRecorder:
    def test_span_records_timing(self):
        rec = SpanRecorder()
        with rec.span("work", k="v") as s:
            pass
        assert s.wall_seconds >= 0.0
        assert s.cpu_seconds >= 0.0
        assert rec.spans == [s]
        assert s.attrs == {"k": "v"}

    def test_nesting_sets_parent(self):
        rec = SpanRecorder()
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Finished in exit order: inner first.
        assert [s.name for s in rec.spans] == ["inner", "outer"]

    def test_misnested_exit_tolerated(self):
        rec = SpanRecorder()
        a = rec.span("a")
        b = rec.span("b")
        a.__enter__()
        b.__enter__()
        a.__exit__(None, None, None)  # out of order
        assert {s.name for s in rec.spans} == {"a"}
        # The stack is drained past the misnested span.
        with rec.span("c") as c:
            pass
        assert c.parent_id is None

    def test_drain_empties(self):
        rec = SpanRecorder()
        with rec.span("x"):
            pass
        assert len(rec.drain()) == 1
        assert rec.spans == []

    def test_export_jsonl(self, tmp_path):
        rec = SpanRecorder()
        with rec.span("alpha", epoch=3):
            pass
        path = tmp_path / "deep" / "spans.jsonl"
        assert rec.export_jsonl(str(path)) == 1
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert rows[0]["name"] == "alpha"
        assert rows[0]["attrs"] == {"epoch": 3}
        assert rows[0]["wall_seconds"] >= 0.0


class TestModuleApi:
    def test_span_without_recorder_is_null(self):
        assert current_recorder() is None
        s = span("anything", a=1)
        assert s is NULL_SPAN
        with s as inner:
            assert inner is NULL_SPAN

    def test_span_routes_to_current_recorder(self):
        rec = SpanRecorder()
        prev = set_current_recorder(rec)
        try:
            with span("routed"):
                pass
        finally:
            set_current_recorder(prev)
        assert [s.name for s in rec.spans] == ["routed"]

    def test_set_current_returns_previous(self):
        rec1, rec2 = SpanRecorder(), SpanRecorder()
        assert set_current_recorder(rec1) is None
        assert set_current_recorder(rec2) is rec1
        set_current_recorder(None)
