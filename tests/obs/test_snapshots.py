"""Unit tests for epoch snapshots and the replay sink."""

import pytest

from repro.obs import metrics
from repro.obs.snapshots import (
    SNAPSHOT_FIELDS,
    EpochSnapshot,
    ReplaySink,
    SnapshotSeries,
    replay_sink,
)


class _Stats:
    def __init__(self, reads=0, writes=0):
        self.reads = reads
        self.writes = writes


class _MigrationStats:
    def __init__(self):
        self.migrations_to_fast = 0
        self.migrations_to_slow = 0
        self.migration_seconds = 0.0


class _FakeHma:
    """Just enough surface for ReplaySink."""

    def __init__(self):
        self.fast = type("T", (), {"stats": _Stats(10, 5)})()
        self.slow = type("T", (), {"stats": _Stats(100, 50)})()
        self.migration_stats = _MigrationStats()
        self.fast_capacity_pages = 256
        self._occ = 17

    def fast_occupancy(self):
        return self._occ


class TestSnapshotSeries:
    def test_append_len_iter(self):
        s = SnapshotSeries("x")
        s.append(EpochSnapshot(epoch=0))
        s.append(EpochSnapshot(epoch=1))
        assert len(s) == 2
        assert [r.epoch for r in s] == [0, 1]

    def test_metric_series_core_and_extra(self):
        s = SnapshotSeries()
        s.append(EpochSnapshot(epoch=0, fast_reads=3))
        s.append(EpochSnapshot(epoch=1, fast_reads=7))
        assert s.metric_series("fast_reads") == [3, 7]
        s.annotate("ser", [0.1, 0.2])
        assert s.metric_series("ser") == [0.1, 0.2]

    def test_annotate_length_mismatch_raises(self):
        s = SnapshotSeries()
        s.append(EpochSnapshot(epoch=0))
        with pytest.raises(ValueError):
            s.annotate("ser", [1.0, 2.0])

    def test_columns_include_extras_after_core(self):
        s = SnapshotSeries()
        s.append(EpochSnapshot(epoch=0))
        s.annotate("ser", [0.5])
        cols = s.columns()
        assert cols[:len(SNAPSHOT_FIELDS)] == list(SNAPSHOT_FIELDS)
        assert cols[-1] == "ser"

    def test_dict_round_trip(self):
        s = SnapshotSeries("orig")
        s.append(EpochSnapshot(epoch=0, hbm_occupancy=9, slow_writes=4))
        s.annotate("ser", [1.25])
        back = SnapshotSeries.from_dicts("copy", s.to_dicts())
        assert back.name == "copy"
        assert back.metric_series("hbm_occupancy") == [9]
        assert back.metric_series("slow_writes") == [4]
        assert back.metric_series("ser") == [1.25]


class TestReplaySink:
    def test_rows_carry_per_epoch_deltas(self):
        hma = _FakeHma()
        sink = ReplaySink(hma)  # baseline: fast 10/5, slow 100/50
        sink.on_epoch(0, 15, 8, 120, 55, windowed_ace=2.5)
        sink.on_epoch(1, 20, 8, 125, 60)
        r0, r1 = sink.series.rows
        assert (r0.fast_reads, r0.fast_writes) == (5, 3)
        assert (r0.slow_reads, r0.slow_writes) == (20, 5)
        assert r0.windowed_ace == 2.5
        assert (r1.fast_reads, r1.fast_writes) == (5, 0)
        assert (r1.slow_reads, r1.slow_writes) == (5, 5)

    def test_rows_capture_hma_state(self):
        hma = _FakeHma()
        hma.migration_stats.migrations_to_fast = 3
        sink = ReplaySink(hma)
        sink.on_epoch(0, 10, 5, 100, 50)
        row = sink.series.rows[0]
        assert row.migrations_to_fast == 3
        assert row.hbm_occupancy == 17
        assert row.hbm_capacity == 256

    def test_factory_returns_none_when_disabled(self):
        metrics.disable()
        assert replay_sink(_FakeHma()) is None

    def test_factory_returns_sink_when_enabled(self):
        metrics.enable()
        assert isinstance(replay_sink(_FakeHma()), ReplaySink)
