"""Unit tests for run reports, metric diffs, and bench floors."""

import json
import math

import pytest

from repro.obs.registry import RunRegistry
from repro.obs.report import (
    check_bench_floors,
    diff_metrics,
    find_regressions,
    load_bench_floors,
    lower_is_better,
    render_compare,
    render_run_report,
)
from repro.obs.snapshots import EpochSnapshot, SnapshotSeries


class TestDirection:
    def test_costs_are_lower_better(self):
        for name in ("ser", "mean_ser_ratio", "fault_rate", "read_latency",
                     "migration_seconds", "windowed_ace", "overhead_pct"):
            assert lower_is_better(name), name

    def test_throughput_is_higher_better(self):
        for name in ("ipc", "mean_ipc_ratio", "speedup", "coverage"):
            assert not lower_is_better(name), name


class TestDiffMetrics:
    def test_higher_better_drop_is_regression(self):
        diffs = diff_metrics({"ipc": 1.0}, {"ipc": 0.9})
        assert diffs[0].regression
        assert diffs[0].rel_change == pytest.approx(-0.1)

    def test_lower_better_rise_is_regression(self):
        diffs = diff_metrics({"ser": 1.0}, {"ser": 1.1})
        assert diffs[0].regression

    def test_improvements_not_flagged(self):
        diffs = diff_metrics({"ipc": 1.0, "ser": 1.0},
                             {"ipc": 1.2, "ser": 0.5})
        assert not find_regressions(diffs)

    def test_within_threshold_not_flagged(self):
        diffs = diff_metrics({"ipc": 1.0}, {"ipc": 0.99}, threshold=0.02)
        assert not diffs[0].regression

    def test_missing_side_has_no_change(self):
        diffs = diff_metrics({"only_a": 1.0}, {"only_b": 2.0})
        by_name = {d.name: d for d in diffs}
        assert by_name["only_a"].rel_change is None
        assert by_name["only_b"].rel_change is None
        assert not find_regressions(diffs)

    def test_zero_baseline(self):
        diffs = diff_metrics({"ser": 0.0}, {"ser": 1.0})
        assert diffs[0].rel_change == math.inf
        assert diffs[0].regression

    def test_nan_ignored(self):
        diffs = diff_metrics({"ipc": math.nan}, {"ipc": 0.1})
        assert diffs[0].rel_change is None
        assert not diffs[0].regression


class TestBenchFloors:
    def test_load_flattens_numeric_leaves(self, tmp_path):
        (tmp_path / "BENCH_replay.json").write_text(json.dumps(
            {"throughput": {"batched": 100.0}, "note": "text"}))
        floors = load_bench_floors(str(tmp_path))
        assert floors == {"bench.replay.throughput.batched": 100.0}

    def test_missing_root_is_empty(self):
        assert load_bench_floors("/nonexistent/nowhere") == {}

    def test_check_flags_below_floor(self):
        floors = {"bench.replay.throughput.batched": 100.0}
        bad = check_bench_floors({"throughput.batched": 90.0}, floors)
        assert len(bad) == 1 and bad[0].regression
        ok = check_bench_floors({"throughput.batched": 99.5}, floors)
        assert ok == []  # within 2%


def _seed_registry(tmp_path):
    reg = RunRegistry(str(tmp_path / "registry.sqlite"))
    series = SnapshotSeries()
    series.append(EpochSnapshot(epoch=0, fast_reads=5, hbm_capacity=64))
    series.append(EpochSnapshot(epoch=1, fast_reads=9, hbm_capacity=64))
    a = reg.record_run("exp", metrics={"ipc": 1.0, "ser": 1.0},
                       series={"w:fc": series})
    b = reg.record_run("exp", metrics={"ipc": 0.8, "ser": 1.5})
    return reg, reg.get_run(a), reg.get_run(b)


class TestRendering:
    def test_report_includes_metrics_and_series(self, tmp_path):
        reg, run, _ = _seed_registry(tmp_path)
        out = render_run_report(reg, run)
        assert "run      exp-1" in out
        assert "ipc" in out and "ser" in out
        assert "series w:fc (2 epochs)" in out
        assert "fast_reads" in out
        # All-zero columns are dropped from the series table.
        assert "slow_writes" not in out

    def test_report_truncates_long_series(self, tmp_path):
        reg = RunRegistry(str(tmp_path / "registry.sqlite"))
        series = SnapshotSeries()
        for i in range(40):
            series.append(EpochSnapshot(epoch=i, fast_reads=i + 1))
        run_id = reg.record_run("long", series={"s": series})
        out = render_run_report(reg, run_id and reg.get_run(run_id),
                                max_epochs=6)
        assert "..." in out
        assert out.count("\n") < 40

    def test_compare_flags_and_exit_contract(self, tmp_path):
        reg, run_a, run_b = _seed_registry(tmp_path)
        diffs = diff_metrics(reg.metrics(run_a.run_id),
                             reg.metrics(run_b.run_id))
        out = render_compare(run_a, run_b, diffs)
        assert "REGRESSION" in out
        assert "2 regression(s) across 2 compared metric(s)" in out
        assert find_regressions(diffs)  # CLI exits 1 on this

    def test_compare_clean_pair(self, tmp_path):
        reg, run_a, _ = _seed_registry(tmp_path)
        diffs = diff_metrics(reg.metrics(run_a.run_id),
                             reg.metrics(run_a.run_id))
        out = render_compare(run_a, run_a, diffs)
        assert "REGRESSION" not in out
        assert "0 regression(s)" in out

    def test_compare_renders_bench_section(self, tmp_path):
        reg, run_a, run_b = _seed_registry(tmp_path)
        bench = check_bench_floors({"throughput": 50.0},
                                   {"bench.x.throughput": 100.0})
        out = render_compare(run_a, run_b, [], bench)
        assert "bench floors" in out
        assert "BELOW FLOOR" in out
        assert "1 regression(s)" in out
