"""Shared fixtures: small system configs and prepared workloads."""

import os

import pytest

if os.environ.get("REPRO_COVERAGE"):
    # Under the line tracer (tools/coverage_gate.py) every test runs
    # several times slower; hypothesis's per-example deadline would
    # flake, so disable it for the coverage run only.
    try:
        from hypothesis import settings as _hyp_settings

        _hyp_settings.register_profile("coverage", deadline=None)
        _hyp_settings.load_profile("coverage")
    except ImportError:  # hypothesis is optional for the main suite
        pass

from repro.config import (
    CacheConfig,
    CoreConfig,
    HierarchyConfig,
    MemoryConfig,
    SystemConfig,
    scaled_config,
)
from repro.sim.system import prepare_workload


def tiny_memory(name: str, pages: int, channels: int = 2,
                ecc: str = "none", fast: bool = False) -> MemoryConfig:
    from repro.config import DramTiming

    timing = DramTiming(tCL=5, tRCD=5, tRP=5, burst_cycles=2) if fast \
        else DramTiming()
    return MemoryConfig(
        name=name,
        capacity_bytes=pages * 4096,
        bus_frequency_hz=500e6,
        bus_width_bits=64,
        channels=channels,
        ecc=ecc,
        timing=timing,
    )


@pytest.fixture
def tiny_config() -> SystemConfig:
    """A 4-core system with 16-page HBM and 256-page DDR."""
    return SystemConfig(
        num_cores=4,
        core=CoreConfig(),
        caches=HierarchyConfig(
            l1i=CacheConfig(size_bytes=1024, associativity=2),
            l1d=CacheConfig(size_bytes=1024, associativity=2),
            l2=CacheConfig(size_bytes=8192, associativity=4),
        ),
        fast_memory=tiny_memory("HBM", 16, channels=4, ecc="secded", fast=True),
        slow_memory=tiny_memory("DDR3", 256, channels=1, ecc="chipkill"),
    )


@pytest.fixture(scope="session")
def test_scale() -> float:
    return 1 / 1024


@pytest.fixture(scope="session")
def small_config(test_scale):
    return scaled_config(test_scale)


@pytest.fixture(scope="session")
def astar_prep(test_scale):
    """A prepared astar workload, shared across the whole session."""
    return prepare_workload("astar", scale=test_scale,
                            accesses_per_core=8_000, seed=7)


@pytest.fixture(scope="session")
def mix1_prep(test_scale):
    """A prepared mix1 workload, shared across the whole session."""
    return prepare_workload("mix1", scale=test_scale,
                            accesses_per_core=8_000, seed=7)


@pytest.fixture(scope="session")
def mcf_prep(test_scale):
    return prepare_workload("mcf", scale=test_scale,
                            accesses_per_core=8_000, seed=7)
