"""Generator-to-profile consistency: the statistical knobs set in a
RegionSpec must be recoverable from the profiled trace.

These are the contracts the calibration (DESIGN.md Section 5) relies
on: if they break, every experiment silently drifts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avf.page import profile_trace
from repro.trace.synthetic import (
    GeneratorParams,
    RegionSpec,
    TraceGenerator,
)


def run_region(wf=0.3, spread=0.5, hot=1.0, lines=64, alpha=0.3,
               pages=40, accesses=8000, seed=0, extra_regions=()):
    regions = [RegionSpec(name="main", footprint_share=0.8, hotness=hot,
                          write_frac=wf, read_spread=spread,
                          zipf_alpha=alpha, lines_touched=lines)]
    regions += list(extra_regions)
    if len(regions) == 1:
        regions.append(RegionSpec(name="pad", footprint_share=0.2,
                                  hotness=0.01, write_frac=0.1,
                                  read_spread=0.1))
    gen = TraceGenerator(regions, pages,
                         GeneratorParams(target_accesses=accesses,
                                         mpki=10.0, seed=seed))
    out = gen.generate()
    stats = profile_trace(out.trace, out.times, footprint_pages=pages)
    return out, stats


class TestWriteFraction:
    @pytest.mark.parametrize("wf", [0.05, 0.3, 0.7])
    def test_recovered_from_profile(self, wf):
        _out, stats = run_region(wf=wf)
        measured = stats.writes.sum() / (stats.reads.sum()
                                         + stats.writes.sum())
        assert measured == pytest.approx(wf, abs=0.06)


class TestSpreadControlsAvf:
    def test_avf_monotone_in_spread(self):
        """The core generator contract: read_spread dials AVF."""
        avfs = []
        for spread in (0.1, 0.4, 0.8):
            out, stats = run_region(spread=spread, wf=0.3, seed=5)
            layout = out.layouts[0]
            sel = ((stats.pages >= layout.first_page)
                   & (stats.pages <= layout.last_page))
            avfs.append(float(stats.avf[sel].mean()))
        assert avfs[0] < avfs[1] < avfs[2]

    def test_avf_roughly_tracks_spread(self):
        out, stats = run_region(spread=0.6, wf=0.3, lines=64, seed=2)
        layout = out.layouts[0]
        sel = ((stats.pages >= layout.first_page)
               & (stats.pages <= layout.last_page))
        hot_pages = sel & (stats.hotness > np.median(stats.hotness))
        # Dense pages: AVF within a factor-2 band of the spread knob.
        mean_avf = float(stats.avf[hot_pages].mean())
        assert 0.25 * 0.6 < mean_avf < 1.3 * 0.6


class TestLinesTouchedScalesAvf:
    def test_half_lines_roughly_halves_avf(self):
        _out32, stats32 = run_region(lines=32, spread=0.6, seed=3)
        _out64, stats64 = run_region(lines=64, spread=0.6, seed=3)
        ratio = stats32.avf.mean() / stats64.avf.mean()
        assert 0.3 < ratio < 0.8


class TestHotnessOrdering:
    def test_hot_region_beats_cold_region(self):
        cold = RegionSpec(name="cold", footprint_share=0.2, hotness=0.05,
                          write_frac=0.2, read_spread=0.3)
        out, stats = run_region(hot=5.0, extra_regions=(cold,))
        main_layout, cold_layout = out.layouts[0], out.layouts[-1]
        main_sel = ((stats.pages >= main_layout.first_page)
                    & (stats.pages <= main_layout.last_page))
        cold_sel = ((stats.pages >= cold_layout.first_page)
                    & (stats.pages <= cold_layout.last_page))
        assert (stats.hotness[main_sel].mean()
                > 10 * max(1.0, stats.hotness[cold_sel].mean()))


@settings(max_examples=15, deadline=None)
@given(
    wf=st.floats(0.05, 0.8),
    spread=st.floats(0.05, 0.9),
    seed=st.integers(0, 50),
)
def test_profile_bounds_always_hold(wf, spread, seed):
    """Whatever the knobs, profiling a generated trace yields bounded,
    finite statistics."""
    _out, stats = run_region(wf=wf, spread=spread, seed=seed,
                             accesses=2500, pages=24)
    assert np.all(stats.avf >= 0.0)
    assert np.all(stats.avf <= 1.0)
    assert np.all(np.isfinite(stats.write_ratio))
    assert np.all(np.isfinite(stats.wr2_ratio))
    assert stats.footprint_pages == 24
