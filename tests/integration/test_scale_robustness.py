"""Scale robustness: the reproduced shapes survive a 4x scale change.

The calibration runs at scale 1/1024; this test re-checks the
load-bearing shapes at 1/256 (4x more pages and HBM frames) to guard
against artefacts of one particular scale.
"""

import pytest

from repro.avf.heuristics import write_ratio_avf_correlation
from repro.core.placement import (
    PerformanceFocusedPlacement,
    Wr2RatioPlacement,
)
from repro.core.quadrant import quadrant_split
from repro.sim.system import evaluate_static, prepare_workload


@pytest.fixture(scope="module")
def big_prep():
    return prepare_workload("mix1", scale=1 / 256,
                            accesses_per_core=25_000, seed=2)


class TestShapesAtLargerScale:
    def test_avf_band(self, big_prep):
        assert 0.03 < big_prep.stats.mean_avf() < 0.30

    def test_write_ratio_correlation_negative(self, big_prep):
        assert write_ratio_avf_correlation(big_prep.stats) < -0.1

    def test_quadrant_share_in_band(self, big_prep):
        quad = quadrant_split(big_prep.stats)
        assert 0.05 < quad.hot_low_risk_fraction < 0.45

    def test_perf_vs_wr2_shape(self, big_prep):
        perf = evaluate_static(big_prep, PerformanceFocusedPlacement())
        wr2 = evaluate_static(big_prep, Wr2RatioPlacement())
        # Performance placement wins IPC, loses SER, at 4x the scale
        # of the calibration runs.
        assert perf.ipc_vs_ddr > 1.1
        assert perf.ser_vs_ddr > 50
        assert wr2.ser < 0.7 * perf.ser
        assert wr2.ipc > 0.8 * perf.ipc

    def test_fit_ratio_scale_invariant(self, big_prep):
        from repro.faults.ser import SerModel
        from repro.config import scaled_config

        small = SerModel.for_system(scaled_config(1 / 1024))
        assert big_prep.ser_model.fit_ratio == pytest.approx(
            small.fit_ratio, rel=0.01
        )
