"""Integration tests: full pipeline and paper-shape assertions.

These tests run the complete trace -> profile -> placement -> replay ->
SER pipeline at reduced scale and assert the qualitative shapes listed
in DESIGN.md Section 5.  Tolerances are wide: the claims are orderings
and rough factors, not absolute values.
"""

import numpy as np
import pytest

from repro.avf.page import profile_trace
from repro.avf.tracker import AceTracker
from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.core.placement import (
    BalancedPlacement,
    PerformanceFocusedPlacement,
    ReliabilityFocusedPlacement,
    Wr2RatioPlacement,
    WrRatioPlacement,
)
from repro.sim.system import (
    evaluate_migration,
    evaluate_static,
    prepare_workload,
)


@pytest.fixture(scope="module")
def preps():
    """Three representative workloads: bandwidth-bound high-AVF (mcf),
    latency-bound low-AVF (astar), and a mix."""
    return {
        name: prepare_workload(name, scale=1 / 1024,
                               accesses_per_core=10_000, seed=11)
        for name in ("mcf", "astar", "mix1")
    }


def gmean(values):
    return float(np.exp(np.mean(np.log(values))))


class TestStaticShapes:
    def test_perf_placement_boosts_ipc_and_wrecks_ser(self, preps):
        """Fig. 5 shape: clear IPC win, orders-of-magnitude SER loss."""
        ipcs, sers = [], []
        for prep in preps.values():
            res = evaluate_static(prep, PerformanceFocusedPlacement())
            ipcs.append(res.ipc_vs_ddr)
            sers.append(res.ser_vs_ddr)
        assert gmean(ipcs) > 1.2
        assert gmean(sers) > 50

    def test_scheme_orderings(self, preps):
        """Figs. 7/8/10/11: SER gain ordering rel > balanced > wr-like;
        IPC ordering the reverse."""
        ipc = {n: [] for n in ("rel", "bal", "wr", "wr2")}
        ser = {n: [] for n in ("rel", "bal", "wr", "wr2")}
        for prep in preps.values():
            perf = evaluate_static(prep, PerformanceFocusedPlacement())
            for key, policy in (("rel", ReliabilityFocusedPlacement()),
                                ("bal", BalancedPlacement()),
                                ("wr", WrRatioPlacement()),
                                ("wr2", Wr2RatioPlacement())):
                res = evaluate_static(prep, policy)
                ipc[key].append(res.ipc / perf.ipc)
                ser[key].append(perf.ser / res.ser)
        # Reliability-focused: biggest SER gain, biggest IPC loss.
        assert gmean(ser["rel"]) > gmean(ser["bal"])
        assert gmean(ser["bal"]) >= gmean(ser["wr2"]) * 0.9
        assert gmean(ipc["rel"]) < gmean(ipc["wr2"])
        # Every reliability-aware scheme actually gains reliability.
        for key in ser:
            assert gmean(ser[key]) > 1.2
        # The Wr^2 heuristic keeps IPC within a few percent of perf.
        assert gmean(ipc["wr2"]) > 0.85

    def test_balanced_never_raises_ser_vs_perf(self, preps):
        for prep in preps.values():
            perf = evaluate_static(prep, PerformanceFocusedPlacement())
            bal = evaluate_static(prep, BalancedPlacement())
            assert bal.ser <= perf.ser * 1.05


class TestDynamicShapes:
    def test_perf_migration_tracks_static_oracle(self, preps):
        """Fig. 12: dynamic migration stays within ~15% of the static
        oracle's IPC while keeping a large SER blow-up."""
        ratios = []
        for prep in preps.values():
            static = evaluate_static(prep, PerformanceFocusedPlacement())
            dyn = evaluate_migration(prep, PerformanceFocusedMigration(),
                                     num_intervals=8)
            ratios.append(dyn.ipc / static.ipc)
            assert dyn.ser_vs_ddr > 30
        assert gmean(ratios) > 0.85

    def test_fc_and_cc_cut_ser_vs_perf_migration(self, preps):
        """Figs. 14/15: both reliability-aware mechanisms reduce SER;
        FC reduces at least as much as CC; CC costs less IPC."""
        fc_ser, cc_ser, fc_ipc, cc_ipc = [], [], [], []
        for prep in preps.values():
            pm = evaluate_migration(prep, PerformanceFocusedMigration(),
                                    num_intervals=8)
            fc = evaluate_migration(prep, ReliabilityAwareFCMigration(),
                                    num_intervals=8,
                                    initial_policy=BalancedPlacement())
            cc = evaluate_migration(prep, CrossCountersMigration(),
                                    num_intervals=8,
                                    initial_policy=BalancedPlacement())
            fc_ser.append(pm.ser / fc.ser)
            cc_ser.append(pm.ser / cc.ser)
            fc_ipc.append(fc.ipc / pm.ipc)
            cc_ipc.append(cc.ipc / pm.ipc)
        assert gmean(fc_ser) > 1.3
        assert gmean(cc_ser) > 1.2
        assert gmean(fc_ser) >= gmean(cc_ser) * 0.95
        assert gmean(cc_ipc) >= gmean(fc_ipc) * 0.97
        assert gmean(cc_ipc) > 0.85

    def test_cc_uses_less_hardware_than_fc(self):
        fc = ReliabilityAwareFCMigration()
        cc = CrossCountersMigration()
        total, fast = (17 << 30) // 4096, (1 << 30) // 4096
        assert (cc.hardware_cost_bytes(total, fast)
                < 0.2 * fc.hardware_cost_bytes(total, fast))


class TestCrossValidation:
    def test_streaming_tracker_matches_profile_on_real_trace(self, preps):
        """The vectorised profiler and the streaming tracker agree on a
        real generated workload trace."""
        prep = preps["astar"]
        wt = prep.workload_trace
        n = 3000
        trace = wt.trace.slice(0, n)
        times = wt.times[:n]
        tracker = AceTracker()
        lines = trace.lines
        for i in range(n):
            tracker.access(int(lines[i]), float(times[i]),
                           bool(trace.is_write[i]))
        stats = profile_trace(trace, times)
        from repro.config import LINES_PER_PAGE

        page_ace = {}
        for line, ace in tracker.line_ace_times().items():
            page = line // LINES_PER_PAGE
            page_ace[page] = page_ace.get(page, 0.0) + ace
        for i, page in enumerate(stats.pages):
            expected = page_ace.get(int(page), 0.0) / LINES_PER_PAGE
            assert stats.avf[i] == pytest.approx(expected, abs=1e-9)

    def test_cache_filter_compose_with_profiler(self, preps):
        """Raw trace -> cache filter -> AVF profile end-to-end."""
        from repro.cache.hierarchy import CacheHierarchy, filter_trace
        from repro.config import CacheConfig, HierarchyConfig

        prep = preps["astar"]
        wt = prep.workload_trace
        raw = wt.trace.slice(0, 2000)
        hierarchy = CacheHierarchy(
            HierarchyConfig(
                l1i=CacheConfig(size_bytes=1024, associativity=2),
                l1d=CacheConfig(size_bytes=1024, associativity=2),
                l2=CacheConfig(size_bytes=4096, associativity=4),
            ),
            num_cores=16,
        )
        filtered = filter_trace(raw, hierarchy)
        # A thrashing L2 can add write-backs, so the residual trace may
        # exceed the raw request count but stays bounded by 2x.
        assert 0 < len(filtered) <= 2 * len(raw)
        times = np.linspace(0, 1, len(filtered), endpoint=False)
        stats = profile_trace(filtered, times)
        assert np.all(stats.avf >= 0)
        assert np.all(stats.avf <= 1)


class TestAnnotationShapes:
    def test_annotation_counts_small(self, preps):
        """Fig. 17: homogeneous workloads need only a handful of
        annotations; mixes need more."""
        from repro.sim.system import evaluate_annotations

        _res, astar_plan = evaluate_annotations(preps["astar"])
        _res, mix_plan = evaluate_annotations(preps["mix1"])
        assert astar_plan.num_annotations <= 6
        assert mix_plan.num_annotations >= astar_plan.num_annotations

    def test_annotations_cut_ser_at_modest_ipc_cost(self, preps):
        from repro.sim.system import evaluate_annotations

        for prep in preps.values():
            perf = evaluate_static(prep, PerformanceFocusedPlacement())
            res, _plan = evaluate_annotations(prep)
            assert res.ser < perf.ser
            assert res.ipc > 0.7 * perf.ipc
