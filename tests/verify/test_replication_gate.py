"""Replication gate: EXPERIMENTS.md shape claims pass, tampering fails."""

import pytest

from repro.verify.replication import (
    CLAIMS,
    Measurements,
    claim_fig05_perf_frontier,
    claim_fig07_rel_focused,
    claim_fig08_balanced_between,
    claim_ser_gain_ladder,
    measure,
    run_replication,
)


def _plausible_measurements(**overrides) -> Measurements:
    """A hand-built Measurements consistent with every shape claim."""
    ipc = {"perf": 1.4, "balanced": 1.3, "rel": 1.15, "wr": 1.25,
           "wr2": 1.3, "perf-mig": 1.35, "fc-mig": 1.25, "cc-mig": 1.3}
    ser = {"perf": 320.0, "balanced": 60.0, "rel": 23.0, "wr": 100.0,
           "wr2": 120.0, "perf-mig": 330.0, "fc-mig": 75.0,
           "cc-mig": 160.0}
    ipc.update(overrides.get("ipc", {}))
    ser.update(overrides.get("ser", {}))
    return Measurements(ipc=ipc, ser=ser)


class TestCleanTree:
    def test_every_claim_passes_on_the_bundle(self, bundle):
        results = run_replication(bundle, quick=True)
        assert len(results) == len(CLAIMS)
        assert all(r.family == "replication" for r in results)
        failed = [(r.name, r.details) for r in results if not r.passed]
        assert not failed, failed

    def test_measure_covers_every_scheme_the_claims_use(self, bundle):
        m = measure(bundle)
        for key in ("perf", "rel", "balanced", "wr", "wr2",
                    "perf-mig", "fc-mig", "cc-mig"):
            assert key in m.ipc and key in m.ser
        # The paper's headline direction: rel placement trades IPC for SER.
        assert m.ser_gain_vs("rel", "perf") > 1.0
        assert m.ipc_cost_vs("rel", "perf") < 0.0


class TestClaimsRejectTampering:
    def test_plausible_fixture_passes_everything(self):
        m = _plausible_measurements()
        failed = [c.__name__ for c in CLAIMS if not c(m).passed]
        assert not failed, failed

    def test_perf_ipc_below_ddr_fails_the_frontier(self):
        m = _plausible_measurements(ipc={"perf": 0.95})
        assert not claim_fig05_perf_frontier(m).passed

    def test_rel_worse_than_perf_fails_the_tradeoff_claims(self):
        m = _plausible_measurements(ser={"rel": 400.0})
        assert not claim_fig07_rel_focused(m).passed
        assert not claim_fig08_balanced_between(m).passed
        assert not claim_ser_gain_ladder(m).passed

    def test_free_lunch_reliability_fails(self):
        # SER gain with zero IPC cost would contradict Fig. 7's claim
        # that reliability-focused placement is a *tradeoff*.
        m = _plausible_measurements(ipc={"rel": 1.4})
        assert not claim_fig07_rel_focused(m).passed


class TestFailurePlumbing:
    def test_broken_bundle_yields_a_single_failed_measurement(self):
        results = run_replication(object(), quick=True)
        assert len(results) == 1
        assert not results[0].passed
        assert results[0].name == "replication-measurement"
        assert "raised" in results[0].details
