"""Metamorphic paper invariants: clean-tree pass + failure plumbing."""

import pytest

from repro.verify.invariants import (
    INVARIANTS,
    _gmean,
    check_ser_monotone_in_hot_fraction,
    check_write_masked_avf,
    run_invariants,
)


class TestGmean:
    def test_matches_closed_form(self):
        assert _gmean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single_value(self):
        assert _gmean([3.5]) == pytest.approx(3.5)


class TestCleanTree:
    def test_every_invariant_passes(self, bundle):
        results = run_invariants(bundle, quick=True)
        assert len(results) == len(INVARIANTS)
        assert all(r.family == "invariant" for r in results)
        failed = [(r.name, r.details) for r in results if not r.passed]
        assert not failed, failed

    def test_ser_monotone_reports_the_curve(self, bundle):
        result = check_ser_monotone_in_hot_fraction(bundle)
        assert result.passed
        # The details carry the actual SER curve for the CI log.
        assert "SER" in result.details

    def test_write_masked_traffic_has_zero_avf(self, bundle):
        result = check_write_masked_avf(bundle)
        assert result.passed, result.details


class TestFailurePlumbing:
    def test_broken_bundle_yields_failed_results_not_exceptions(self):
        results = run_invariants(object(), quick=True)
        assert len(results) == len(INVARIANTS)
        assert all(not r.passed for r in results)
        assert all("raised" in r.details for r in results)
