"""Differential fuzzer: clean-tree agreement, mutation smoke, shrinking.

The mutation smoke is the acceptance test of the whole gate: a
deliberately injected off-by-one in the shared routing stage of the
batched replay kernels must be caught by the fuzzer, shrunk, and
dumped as a repro artifact that replays.
"""

import glob
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.sim import engine
from repro.verify import differential
from repro.verify.cases import (
    DiffCase,
    build_config,
    build_trace,
    load_artifact,
    random_case,
    shrink_case,
)
from repro.verify.differential import (
    CHECKS,
    replay_artifact,
    run_fuzz,
)


def _some_case(seed=0, **overrides) -> DiffCase:
    case = random_case(np.random.default_rng(seed), 0)
    return replace(case, **overrides) if overrides else case


class TestCaseGeneration:
    def test_cases_are_deterministic_per_seed(self):
        a = [random_case(np.random.default_rng(5), i) for i in range(4)]
        b = [random_case(np.random.default_rng(5), i) for i in range(4)]
        assert a == b

    def test_trace_regenerates_identically(self):
        case = _some_case(3)
        t1, times1 = build_trace(case)
        t2, times2 = build_trace(case)
        assert np.array_equal(t1.address, t2.address)
        assert np.array_equal(t1.is_write, t2.is_write)
        assert np.array_equal(times1, times2)

    def test_footprint_fits_in_slow_memory(self):
        rng = np.random.default_rng(11)
        for i in range(50):
            case = random_case(rng, i)
            assert case.footprint_pages <= case.slow_pages
            config = build_config(case)
            assert config.slow_memory.num_pages == case.slow_pages

    def test_case_round_trips_through_dict(self):
        case = _some_case(7)
        assert DiffCase.from_dict(case.to_dict()) == case


class TestCleanTree:
    def test_all_families_agree_on_seeded_cases(self):
        results = run_fuzz(num_cases=4, seed=0)
        assert len(results) == 4 * len(CHECKS)
        failed = [r for r in results if not r.passed]
        assert not failed, failed

    @pytest.mark.fuzz
    def test_wide_seeded_sweep(self):
        """A broader clean-tree sweep, run from ci_smoke's fuzz stage."""
        results = run_fuzz(num_cases=20, seed=20260806)
        failed = [r for r in results if not r.passed]
        assert not failed, failed


class TestServeFamily:
    """The streamed-service check family against the batch oracle."""

    def test_registered(self):
        assert "serve" in CHECKS

    def test_clean_case_passes(self):
        assert differential.check_serve(_some_case(2)) is None

    def test_streamed_divergence_is_caught(self, monkeypatch):
        # Plant a bug in the *streamed* path only: the worker's spool
        # reassembly silently drops the last access.  The batch oracle
        # sees the full trace, so the digests must disagree.
        from repro.serve import session as serve_session

        orig = serve_session.load_session_trace

        def truncated(directory):
            trace, times = orig(directory)
            return trace.slice(0, len(trace) - 1), times[:-1]

        monkeypatch.setattr(serve_session, "load_session_trace",
                            truncated)
        finding = differential.check_serve(_some_case(2))
        assert finding is not None


class TestFrontierFamily:
    """The frontier-generator check family: determinism, streamed
    parity, and the injected-drift negative gate."""

    def test_registered(self):
        assert "frontier" in CHECKS

    @pytest.mark.parametrize("case_id", [0, 1, 2])
    def test_clean_case_passes_per_generator(self, case_id):
        case = replace(_some_case(4), case_id=case_id)
        assert differential.check_frontier(case) is None

    def test_tolerance_tiered_mechanism_in_rotation(self):
        from repro.verify.cases import MECHANISMS

        assert "tolerance-tiered" in MECHANISMS

    def test_policy_kernel_divergence_is_caught(self, monkeypatch):
        # Plant a bug in the tolerance weighting used by the session's
        # mechanism: the streamed and batch replays share the planted
        # code, so instead divergence is checked at the generator level
        # — a non-deterministic generator must be reported.
        from repro.workloads import frontier as frontier_mod

        orig = frontier_mod.FrontierWorkload.generate
        calls = {"n": 0}

        def flaky(self, **kwargs):
            wt = orig(self, **kwargs)
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                wt.trace.is_write[0] = ~wt.trace.is_write[0]
            return wt

        monkeypatch.setattr(frontier_mod.FrontierWorkload, "generate",
                            flaky)
        finding = differential.check_frontier(_some_case(4))
        assert finding is not None
        assert "non-deterministic" in finding


class TestEccFamily:
    """The ECC check family: LUT compilation, batch-vs-scalar decode
    digests, and the injected syndrome-table off-by-one negative."""

    def test_registered(self):
        assert "ecc" in CHECKS

    @pytest.mark.parametrize("case_id", [0, 1, 2])
    def test_clean_case_passes(self, case_id):
        case = replace(_some_case(6), case_id=case_id)
        assert differential.check_ecc(case) is None

    def test_new_schemes_in_case_rotation(self):
        from repro.verify.cases import random_case as rc

        drawn = {rc(np.random.default_rng(s), 0).fault_ecc
                 for s in range(64)}
        assert {"secdaec", "bch"} <= drawn

    def test_tampered_action_table_is_caught(self, monkeypatch, tmp_path):
        # Plant a global off-by-one: every corrective entry of the
        # SEC-DAEC syndrome action table points one bit too far.  The
        # batch-vs-scalar digest gate must diverge, shrink, and dump.
        from repro.faults import secdaec

        tampered = secdaec._BATCH_FIRST.copy()
        live = tampered >= 0
        tampered[live] = (tampered[live] + 1) % secdaec.CODE_BITS
        monkeypatch.setattr(secdaec, "_BATCH_FIRST", tampered)
        results = run_fuzz(num_cases=4, seed=0,
                           artifact_dir=str(tmp_path),
                           checks={"ecc": differential.check_ecc})
        failed = [r for r in results if not r.passed]
        assert failed, "tampered action table was not caught"
        artifacts = sorted(glob.glob(str(tmp_path / "divergence-*.json")))
        assert artifacts, "no repro artifact dumped"
        case, check_name, _ = load_artifact(artifacts[0])
        assert check_name == "ecc"
        # Artifact reproduces while the tamper is live and reports
        # fixed once the honest table is restored.
        assert not replay_artifact(artifacts[0]).passed
        monkeypatch.undo()
        assert replay_artifact(artifacts[0]).passed

    def test_verify_gate_runs_ecc_family_alone(self):
        from repro.verify import run_verify

        report = run_verify(cases=2, seed=0, gates=("ecc",))
        assert report.passed
        assert all(r.name.startswith("ecc") for r in report.results)


class TestMutationSmoke:
    """A planted bug must be caught, shrunk, and dumped."""

    @pytest.fixture
    def planted_route_bug(self, monkeypatch):
        """Off-by-one row aliasing in the batched kernels' routing."""
        orig = engine._route_chunk

        def mutated(*args, **kwargs):
            dev, is_fast, gid, cid, row = orig(*args, **kwargs)
            return dev, is_fast, gid, cid, row // 2

        monkeypatch.setattr(engine, "_route_chunk", mutated)

    def test_fuzzer_catches_and_shrinks(self, planted_route_bug, tmp_path):
        results = run_fuzz(
            num_cases=3, seed=0, artifact_dir=str(tmp_path),
            checks={"replay-kernels": differential.check_replay_kernels})
        failed = [r for r in results if not r.passed]
        assert failed, "planted off-by-one was not caught"
        artifacts = sorted(glob.glob(str(tmp_path / "divergence-*.json")))
        assert artifacts, "no repro artifact dumped"
        case, check_name, payload = load_artifact(artifacts[0])
        assert check_name == "replay-kernels"
        original = DiffCase.from_dict(payload["original_case"])
        assert case.accesses < original.accesses, \
            "artifact case was not shrunk"
        # The shrunken case still reproduces while the bug is planted.
        assert differential.check_replay_kernels(case) is not None

    def test_artifact_replays_clean_after_fix(self, tmp_path, monkeypatch):
        orig = engine._route_chunk

        def mutated(*args, **kwargs):
            dev, is_fast, gid, cid, row = orig(*args, **kwargs)
            return dev, is_fast, gid, cid, row // 2

        monkeypatch.setattr(engine, "_route_chunk", mutated)
        run_fuzz(num_cases=3, seed=0, artifact_dir=str(tmp_path),
                 checks={"replay-kernels":
                         differential.check_replay_kernels})
        artifacts = sorted(glob.glob(str(tmp_path / "divergence-*.json")))
        assert artifacts
        # Artifact still diverges while the mutation is live...
        live = replay_artifact(artifacts[0])
        assert not live.passed
        # ...and reports fixed once the mutation is reverted.
        monkeypatch.setattr(engine, "_route_chunk", orig)
        fixed = replay_artifact(artifacts[0])
        assert fixed.passed

    def test_mea_divergence_is_caught(self, monkeypatch, tmp_path):
        """A planted bug on the python-only MEA path diverges from native."""
        from repro.config import knob_value
        from repro.core.mea import MeaTracker

        orig = MeaTracker.record_many

        def mutated(self, pages):
            arr = np.asarray(pages, dtype=np.int64).ravel()
            if not knob_value("mea_native", None) and arr.size:
                arr = arr[:-1]  # python path silently drops one access
            return orig(self, arr)

        monkeypatch.setattr(MeaTracker, "record_many", mutated)
        results = run_fuzz(num_cases=2, seed=1,
                           checks={"mea": differential.check_mea})
        assert all(not r.passed for r in results)


class TestShrinker:
    def test_shrink_reduces_while_predicate_holds(self):
        case = _some_case(9)
        big = replace(case, accesses=2048)
        shrunk = shrink_case(big, lambda c: c.accesses >= 64)
        assert 64 <= shrunk.accesses <= big.accesses // 2

    def test_shrink_survives_crashing_predicate(self):
        case = _some_case(9)

        def fails(c):
            if c != case:
                raise RuntimeError("different bug")
            return True

        assert shrink_case(case, fails) == case


class TestArtifactIO:
    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-an-artifact.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a repro-hma"):
            load_artifact(str(path))
