import pytest

from repro.verify.bundle import EvalBundle


@pytest.fixture(scope="session")
def bundle() -> EvalBundle:
    """One quick evaluation bundle shared by the gate tests.

    Building it replays every bundle workload once; the per-scheme
    results are memoised inside, so sharing it across test files keeps
    the invariant + replication suites to a few seconds total.
    """
    return EvalBundle.build(quick=True)
