"""The ``repro-hma verify`` verb: exit codes, JSON verdict, replay mode."""

import json

import pytest

from repro.harness.cli import main
from repro.verify.verdict import VerifyReport


class TestVerifyVerb:
    def test_quick_fuzz_gate_passes_and_writes_json(self, tmp_path, capsys):
        json_path = tmp_path / "verify.json"
        rc = main(["verify", "--quick", "--cases", "2", "--gates", "fuzz",
                   "--artifact-dir", str(tmp_path / "artifacts"),
                   "--json", str(json_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "VERDICT: PASS" in out
        report = VerifyReport.load(str(json_path))
        assert report.passed
        # The verdict file is plain JSON for CI consumption.
        raw = json.loads(json_path.read_text())
        assert raw["passed"] is True
        assert raw["seed"] == 0
        assert raw["families"]["differential"]["total"] > 0
        # Only the fuzz gate ran; skipped families are absent, not zero.
        assert "invariant" not in raw["families"]
        assert "replication" not in raw["families"]

    def test_unknown_gate_is_a_usage_error(self, capsys):
        rc = main(["verify", "--gates", "fuzz,nonsense"])
        assert rc == 2
        assert "unknown gate" in capsys.readouterr().err

    def test_replay_artifact_mode(self, tmp_path, capsys):
        from repro.verify.cases import random_case, save_artifact

        import numpy as np

        case = random_case(np.random.default_rng(0), 0)
        path = tmp_path / "divergence-replay-kernels-case0000.json"
        save_artifact(str(path), case, "replay-kernels", "planted")
        # On a clean tree the recorded divergence no longer reproduces.
        rc = main(["verify", "--replay-artifact", str(path)])
        assert rc == 0
        assert "no longer reproduces" in capsys.readouterr().out


class TestVerifySeed:
    def test_fuzz_seed_flag_changes_nothing_on_a_clean_tree(self, tmp_path):
        rc = main(["verify", "--quick", "--cases", "2", "--gates", "fuzz",
                   "--fuzz-seed", "77",
                   "--artifact-dir", str(tmp_path / "a")])
        assert rc == 0
