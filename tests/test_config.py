"""Unit tests for repro.config (paper Table 1 parameters)."""

import pytest

from repro.config import (
    KNOBS,
    LINE_SIZE,
    LINES_PER_PAGE,
    PAGE_SIZE,
    CacheConfig,
    DramTiming,
    MemoryConfig,
    SystemConfig,
    ddr3_config,
    default_config,
    hbm_config,
    knob_overrides,
    knob_report,
    knob_source,
    knob_value,
    scaled_config,
)


def test_page_line_constants():
    assert PAGE_SIZE == 4096
    assert LINE_SIZE == 64
    assert LINES_PER_PAGE == 64


class TestCacheConfig:
    def test_num_sets(self):
        cfg = CacheConfig(size_bytes=16 * 1024, associativity=4)
        assert cfg.num_sets == 16 * 1024 // (4 * 64)

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=1)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=0)


class TestDramTiming:
    def test_latency_ordering(self):
        t = DramTiming()
        assert t.row_hit_cycles() < t.row_miss_cycles() < t.row_conflict_cycles()

    def test_hit_is_cas_plus_burst(self):
        t = DramTiming(tCL=11, tRCD=11, tRP=11, burst_cycles=4)
        assert t.row_hit_cycles() == 15
        assert t.row_miss_cycles() == 26
        assert t.row_conflict_cycles() == 37


class TestMemoryConfig:
    def test_table1_hbm(self):
        hbm = hbm_config()
        assert hbm.capacity_bytes == 1 << 30
        assert hbm.channels == 8
        assert hbm.bus_width_bits == 128
        assert hbm.ecc == "secded"
        assert hbm.num_pages == (1 << 30) // PAGE_SIZE

    def test_table1_ddr3(self):
        ddr = ddr3_config()
        assert ddr.capacity_bytes == 16 << 30
        assert ddr.channels == 2
        assert ddr.bus_width_bits == 64
        assert ddr.ecc == "chipkill"

    def test_hbm_has_higher_bandwidth(self):
        assert (hbm_config().peak_bandwidth_bytes_per_sec
                > 4 * ddr3_config().peak_bandwidth_bytes_per_sec)

    def test_hbm_has_higher_raw_fit(self):
        assert hbm_config().fit_multiplier > ddr3_config().fit_multiplier

    def test_rejects_partial_page_capacity(self):
        with pytest.raises(ValueError):
            MemoryConfig(name="x", capacity_bytes=4095,
                         bus_frequency_hz=1e9, bus_width_bits=64, channels=1)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            MemoryConfig(name="x", capacity_bytes=4096,
                         bus_frequency_hz=1e9, bus_width_bits=64, channels=0)

    def test_num_banks(self):
        assert hbm_config().num_banks == 8 * 1 * 8


class TestSystemConfig:
    def test_defaults_match_paper(self):
        cfg = default_config()
        assert cfg.num_cores == 16
        assert cfg.core.issue_width == 4
        assert cfg.core.rob_entries == 128
        assert cfg.total_capacity_bytes == 17 << 30

    def test_total_pages(self):
        cfg = default_config()
        assert cfg.total_pages == (17 << 30) // PAGE_SIZE

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)


class TestScaledConfig:
    def test_preserves_organization(self):
        cfg = scaled_config(1 / 1024)
        assert cfg.fast_memory.channels == 8
        assert cfg.slow_memory.channels == 2
        assert cfg.fast_memory.ecc == "secded"
        assert cfg.fast_memory.fit_multiplier == hbm_config().fit_multiplier

    def test_capacity_ratio_preserved(self):
        cfg = scaled_config(1 / 1024)
        ratio = cfg.slow_memory.capacity_bytes / cfg.fast_memory.capacity_bytes
        assert ratio == pytest.approx(16.0, rel=0.05)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scaled_config(0.0)
        with pytest.raises(ValueError):
            scaled_config(1.5)

    def test_full_scale_identity_capacity(self):
        cfg = scaled_config(1.0)
        assert cfg.fast_memory.capacity_bytes == 1 << 30


class TestKnobs:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_TRIALS", raising=False)
        assert knob_value("fault_trials") == 0
        assert knob_source("fault_trials") == "default"

    def test_env_parses_typed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "25")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_TELEMETRY", "yes")
        assert knob_value("fault_trials") == 25
        assert knob_value("job_timeout") == 1.5
        assert knob_value("telemetry") is True
        assert knob_source("fault_trials") == "env:REPRO_FAULT_TRIALS"

    def test_bool_falsey_spellings(self, monkeypatch):
        for raw in ("0", "false", "no", "off", "False", "OFF"):
            monkeypatch.setenv("REPRO_TELEMETRY", raw)
            assert knob_value("telemetry") is False, raw

    def test_empty_env_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_KERNEL", "")
        assert knob_value("policy_kernel") == "array"
        assert knob_source("policy_kernel") == "default"

    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "25")
        with knob_overrides(fault_trials=50):
            assert knob_value("fault_trials", 99) == 99

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_TRIALS", "25")
        with knob_overrides(fault_trials=50):
            assert knob_value("fault_trials") == 50
            assert knob_source("fault_trials") == "override"
        assert knob_value("fault_trials") == 25

    def test_override_none_means_not_overridden(self):
        with knob_overrides(fault_trials=None):
            assert knob_source("fault_trials") != "override"

    def test_overrides_nest_and_restore(self):
        with knob_overrides(policy_kernel="sparse"):
            with knob_overrides(policy_kernel="array"):
                assert knob_value("policy_kernel") == "array"
            assert knob_value("policy_kernel") == "sparse"
        assert knob_source("policy_kernel") == "default"

    def test_override_unknown_knob_raises(self):
        with pytest.raises(KeyError):
            with knob_overrides(not_a_knob=1):
                pass

    def test_override_bad_choice_raises(self):
        with pytest.raises(ValueError):
            with knob_overrides(policy_kernel="cuda"):
                pass

    def test_env_bad_choice_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTSIM_METHOD", "magic")
        with pytest.raises(ValueError, match="faultsim_method"):
            knob_value("faultsim_method")

    def test_overrides_never_touch_environ(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_POLICY_KERNEL", raising=False)
        with knob_overrides(policy_kernel="sparse"):
            assert "REPRO_POLICY_KERNEL" not in os.environ

    def test_report_covers_every_knob(self):
        rows = knob_report()
        assert [row[0] for row in rows] == list(KNOBS)
        for name, env, value, source, help_ in rows:
            assert env.startswith("REPRO_")
            assert source in ("default", "override") or \
                source.startswith("env:")
            assert help_
