"""Edge-case and failure-injection tests for the replay engine."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.core.migration import (
    MigrationMechanism,
    PerformanceFocusedMigration,
)
from repro.dram.hma import FAST, HeterogeneousMemory
from repro.sim.engine import replay
from repro.trace.record import Trace


def make_trace(n=500, pages=8, cores=4, all_writes=False, seed=0):
    rng = np.random.default_rng(seed)
    return Trace(
        core=rng.integers(0, cores, n).astype(np.uint16),
        address=(rng.integers(0, pages, n) * PAGE_SIZE).astype(np.uint64),
        is_write=(np.ones(n, dtype=bool) if all_writes
                  else rng.random(n) < 0.3),
        gap=np.full(n, 30, dtype=np.uint32),
    ), np.sort(rng.random(n))


class TestWriteOnlyTrace:
    def test_write_only_trace_completes(self, tiny_config):
        trace, times = make_trace(all_writes=True)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(8))
        result = replay(tiny_config, hma, trace, times)
        assert result.total_seconds > 0
        assert result.mean_read_latency == 0.0


class TestDeterminism:
    def test_replay_is_deterministic(self, tiny_config):
        trace, times = make_trace(seed=5)
        results = []
        for _ in range(2):
            hma = HeterogeneousMemory(tiny_config)
            hma.install_placement(range(4), range(8))
            results.append(replay(tiny_config, hma, trace, times))
        assert results[0].total_seconds == results[1].total_seconds
        assert results[0].mean_read_latency == results[1].mean_read_latency


class TestFaultInjectionMechanism:
    class ExplodingMechanism(MigrationMechanism):
        """A mechanism that proposes illegal moves; the engine and the
        HMA must stay consistent regardless."""

        name = "exploding"

        def observe_chunk(self, pages, is_write, times=None):
            pass

        def plan(self, hma):
            # Propose promoting far more pages than capacity and
            # demoting pages that are not resident.
            return list(range(1000, 1200)), [999_999]

    def test_illegal_plans_are_contained(self, tiny_config):
        trace, times = make_trace(n=800)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement(range(8), range(8))
        result = replay(tiny_config, hma, trace, times,
                        mechanism=self.ExplodingMechanism(),
                        num_intervals=4)
        assert hma.fast_occupancy() <= hma.fast_capacity_pages
        assert result.total_seconds > 0

    class GreedyMechanism(MigrationMechanism):
        """Promotes everything every interval."""

        name = "greedy"

        def observe_chunk(self, pages, is_write, times=None):
            self.seen = set(int(p) for p in np.unique(pages))

        def plan(self, hma):
            resident = hma.pages_in(FAST)
            return sorted(self.seen), resident

    def test_full_churn_still_conserves_pages(self, tiny_config):
        trace, times = make_trace(n=800, pages=12)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement(range(8), range(12))
        replay(tiny_config, hma, trace, times,
               mechanism=self.GreedyMechanism(), num_intervals=4)
        mapped = set(hma.pages_in(FAST)) | set(hma.pages_in(1))
        assert mapped == set(range(12))


class TestMigrationCostVisible:
    def test_migrations_slow_the_run_down(self, tiny_config):
        """Charging migration bandwidth must cost wall-clock time."""
        trace, times = make_trace(n=3000, pages=32, seed=2)
        quiet = HeterogeneousMemory(tiny_config)
        quiet.install_placement(range(16), range(32))
        base = replay(tiny_config, quiet, trace, times)

        churny = HeterogeneousMemory(tiny_config)
        churny.install_placement(range(16), range(32))
        mech = PerformanceFocusedMigration(max_swap_fraction=1.0,
                                           fixed_threshold=0)
        res = replay(tiny_config, churny, trace, times,
                     mechanism=mech, num_intervals=16)
        if churny.migration_stats.total > 0:
            assert res.total_seconds >= base.total_seconds
