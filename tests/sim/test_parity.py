"""Bit-exact parity between the scalar and batched replay kernels.

The batched kernels (pure-Python fused loop and the optional compiled
one) must reproduce the scalar per-request oracle *exactly* — same
IEEE-754 doubles, not merely close — for every migration mechanism.
Any drift means the vectorised routing or the sequential busy-until
resolution diverged from the model.
"""

import numpy as np
import pytest

from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.core.placement import PerformanceFocusedPlacement
from repro.dram.hma import FAST, HeterogeneousMemory
from repro.sim import _ckernel
from repro.sim.engine import KERNELS, _resolve_kernel, replay
from repro.sim.system import prepare_workload

BATCHED_KERNELS = ["batched-python"] + (
    ["batched-native"] if _ckernel.available() else []
)

MECHANISMS = {
    "static": None,
    "perf-mig": PerformanceFocusedMigration,
    "fc-mig": ReliabilityAwareFCMigration,
    "cc-mig": CrossCountersMigration,
}


@pytest.fixture(scope="module")
def prep():
    return prepare_workload("mcf", accesses_per_core=2_000, seed=3)


def _run(prep, kernel, mech_name):
    mech_cls = MECHANISMS[mech_name]
    hma = HeterogeneousMemory(prep.config)
    fast_pages = PerformanceFocusedPlacement().select_fast_pages(
        prep.stats, prep.capacity_pages)
    hma.install_placement(fast_pages, prep.stats.pages)
    wt = prep.workload_trace
    result = replay(
        prep.config, hma, wt.trace, times=wt.times,
        mechanism=mech_cls() if mech_cls else None,
        num_intervals=8 if mech_cls else 1,
        core_windows=wt.core_mlp, kernel=kernel,
    )
    return result, hma


def _assert_identical(ref, ref_hma, got, got_hma):
    assert got.total_seconds == ref.total_seconds
    assert got.mean_read_latency == ref.mean_read_latency
    assert got.per_core_ipc == ref.per_core_ipc
    assert got.ipc == ref.ipc
    assert np.array_equal(got.interval_boundaries, ref.interval_boundaries)
    assert got.fast_residency == ref.fast_residency
    assert got.migrations.total == ref.migrations.total
    assert (got.migrations.migration_seconds
            == ref.migrations.migration_seconds)
    for got_u, ref_u in zip(got.device_utilisation, ref.device_utilisation):
        assert (got_u.reads, got_u.writes) == (ref_u.reads, ref_u.writes)
        assert got_u.busy_time == ref_u.busy_time
    # Device-object state converged identically too (banks, channels).
    for got_dev, ref_dev in zip((got_hma.fast, got_hma.slow),
                                (ref_hma.fast, ref_hma.slow)):
        assert (list(got_dev.channel_busy_until)
                == list(ref_dev.channel_busy_until))
        assert got_dev.row_buffer_stats() == ref_dev.row_buffer_stats()
        assert (got_dev.stats.total_read_latency
                == ref_dev.stats.total_read_latency)
    assert sorted(got_hma.pages_in(FAST)) == sorted(ref_hma.pages_in(FAST))


@pytest.mark.parametrize("mech_name", list(MECHANISMS))
@pytest.mark.parametrize("kernel", BATCHED_KERNELS)
def test_batched_matches_scalar(prep, kernel, mech_name):
    ref, ref_hma = _run(prep, "scalar", mech_name)
    got, got_hma = _run(prep, kernel, mech_name)
    _assert_identical(ref, ref_hma, got, got_hma)


def test_default_kernel_matches_scalar(prep):
    """``kernel=None`` (the production default) is also bit-exact."""
    ref, ref_hma = _run(prep, "scalar", "perf-mig")
    got, got_hma = _run(prep, None, "perf-mig")
    _assert_identical(ref, ref_hma, got, got_hma)


class TestKernelResolution:
    def _hma(self, tiny_config):
        return HeterogeneousMemory(tiny_config)

    def test_default_prefers_batched(self, tiny_config):
        resolved = _resolve_kernel(None, self._hma(tiny_config))
        assert resolved in ("batched-native", "batched-python")

    def test_env_override(self, tiny_config, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_KERNEL", "scalar")
        assert _resolve_kernel(None, self._hma(tiny_config)) == "scalar"

    def test_explicit_scalar(self, tiny_config):
        assert _resolve_kernel("scalar", self._hma(tiny_config)) == "scalar"

    def test_unknown_kernel_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            _resolve_kernel("vectorised", self._hma(tiny_config))

    def test_all_names_exported(self):
        assert set(KERNELS) == {"batched", "scalar", "batched-native",
                                "batched-python"}

    def test_batch_api_required_for_batched(self, tiny_config):
        class NoBatch:
            pass

        assert _resolve_kernel(None, NoBatch()) == "scalar"
        with pytest.raises(ValueError):
            _resolve_kernel("batched", NoBatch())

    def test_native_disabled_falls_back(self, tiny_config, monkeypatch):
        # monkeypatch restores the memo afterwards, so the disabled
        # probe does not leak into other tests.
        monkeypatch.setattr(_ckernel, "_cached", None)
        monkeypatch.setenv("REPRO_REPLAY_NATIVE", "0")
        hma = self._hma(tiny_config)
        assert _resolve_kernel("batched", hma) == "batched-python"
        with pytest.raises(RuntimeError):
            _resolve_kernel("batched-native", hma)
