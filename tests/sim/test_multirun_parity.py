"""Parity: config-batched multi-run engine vs the per-point oracle.

``evaluate_static_multi`` / ``evaluate_migration_multi`` (and the
sweeps rewired onto them) must be *bit-identical* to per-point
``evaluate_static`` / ``evaluate_migration`` — the per-point path is
retained as the oracle, and these tests enforce the contract at every
layer: hypothesis-driven config batches, ragged capacity batches, the
single-spec degenerate case, migration batches across mechanisms, and
whole FigureResults with the ``multirun`` knob on vs off.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import knob_overrides
from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.core.placement import (
    BalancedPlacement,
    DdrOnlyPlacement,
    HotFractionPlacement,
    PerformanceFocusedPlacement,
    ReliabilityFocusedPlacement,
    Wr2RatioPlacement,
)
from repro.harness.sweeps import _config_with_fast_pages
from repro.sim.system import (
    MigrationSpec,
    StaticSpec,
    evaluate_migration,
    evaluate_migration_multi,
    evaluate_static,
    evaluate_static_multi,
    prepare_workload,
)

ACCESSES = 2_000
POLICIES = (
    PerformanceFocusedPlacement,
    ReliabilityFocusedPlacement,
    BalancedPlacement,
    Wr2RatioPlacement,
    lambda: HotFractionPlacement(0.5),
    DdrOnlyPlacement,
)


@pytest.fixture(scope="module")
def prep():
    return prepare_workload("mcf", accesses_per_core=ACCESSES, seed=3)


def _same(got, want):
    assert dataclasses.astuple(got) == dataclasses.astuple(want)


def _oracle_static(prep, spec: StaticSpec):
    """Per-point evaluation of one StaticSpec through the oracle."""
    p = prep
    if spec.config is not None:
        p = dataclasses.replace(p, config=spec.config)
    if spec.ser_model is not None:
        p = dataclasses.replace(p, ser_model=spec.ser_model)
    return evaluate_static(p, spec.policy)


class TestStaticMulti:
    def test_single_spec_degenerate(self, prep):
        spec = StaticSpec(BalancedPlacement())
        (got,) = evaluate_static_multi(prep, [spec])
        _same(got, _oracle_static(prep, spec))

    def test_ragged_capacity_batch(self, prep):
        """Mixed capacities (including pathological ones) in one batch."""
        footprint = prep.workload_trace.footprint_pages
        specs = []
        for pages in (1, 2, footprint // 10, footprint // 3, footprint):
            config = _config_with_fast_pages(prep.config, max(1, pages))
            specs.append(StaticSpec(PerformanceFocusedPlacement(),
                                    config=config))
            specs.append(StaticSpec(Wr2RatioPlacement(), config=config))
        got = evaluate_static_multi(prep, specs)
        for res, spec in zip(got, specs):
            _same(res, _oracle_static(prep, spec))

    def test_all_policies_one_batch(self, prep):
        specs = [StaticSpec(cls()) for cls in POLICIES]
        got = evaluate_static_multi(prep, specs)
        for res, spec in zip(got, specs):
            _same(res, _oracle_static(prep, spec))

    @settings(max_examples=8, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, len(POLICIES) - 1),
                  st.floats(0.02, 1.0)),
        min_size=1, max_size=6))
    def test_hypothesis_config_batches(self, prep, batch):
        footprint = prep.workload_trace.footprint_pages
        specs = []
        for policy_idx, fraction in batch:
            pages = max(1, int(footprint * fraction))
            specs.append(StaticSpec(
                POLICIES[policy_idx](),
                config=_config_with_fast_pages(prep.config, pages)))
        got = evaluate_static_multi(prep, specs)
        for res, spec in zip(got, specs):
            _same(res, _oracle_static(prep, spec))


class TestMigrationMulti:
    def test_mechanism_batch(self, prep):
        specs = [
            MigrationSpec(PerformanceFocusedMigration(), num_intervals=8,
                          initial_policy=DdrOnlyPlacement()),
            MigrationSpec(ReliabilityAwareFCMigration(), num_intervals=4),
            MigrationSpec(PerformanceFocusedMigration(), num_intervals=16),
            MigrationSpec(CrossCountersMigration(), num_intervals=4,
                          initial_policy=BalancedPlacement()),
        ]
        got = evaluate_migration_multi(prep, specs)
        for res, spec in zip(got, specs):
            # Fresh mechanism per oracle run: mechanisms are stateful.
            want = evaluate_migration(
                prep, type(spec.mechanism)(),
                num_intervals=spec.num_intervals,
                initial_policy=spec.initial_policy)
            _same(res, want)

    def test_single_spec_degenerate(self, prep):
        (got,) = evaluate_migration_multi(
            prep, [MigrationSpec(PerformanceFocusedMigration())])
        _same(got, evaluate_migration(prep, PerformanceFocusedMigration()))


class TestSweepRegression:
    """Whole figures must not move when the knob flips."""

    def test_capacity_sweep_rows(self):
        from repro.harness.sweeps import capacity_sweep

        kwargs = dict(workloads=("mcf", "mix1"), fractions=(0.1, 0.4),
                      accesses_per_core=ACCESSES, seed=3, jobs=1)
        with knob_overrides(multirun=False):
            want = capacity_sweep(**kwargs)
        with knob_overrides(multirun=True):
            got = capacity_sweep(**kwargs)
        assert got.rows == want.rows
        assert got.headers == want.headers

    def test_fig13_rows(self):
        from repro.harness.experiments import (
            WorkloadCache,
            fig13_interval_sweep,
        )

        def run():
            cache = WorkloadCache(accesses_per_core=ACCESSES, seed=3)
            return fig13_interval_sweep(
                workloads=("astar",), intervals=(4, 8), cache=cache,
                accesses_per_core=ACCESSES, seed=3)

        with knob_overrides(multirun=False):
            want = run()
        with knob_overrides(multirun=True):
            got = run()
        assert got.rows == want.rows
        assert got.summary == want.summary

    def test_fit_sweep_rows(self):
        from repro.harness.sweeps import fit_multiplier_sweep

        kwargs = dict(workload="mcf", multipliers=(1.0, 7.0),
                      accesses_per_core=ACCESSES, seed=3)
        with knob_overrides(multirun=False):
            want = fit_multiplier_sweep(**kwargs)
        with knob_overrides(multirun=True):
            got = fit_multiplier_sweep(**kwargs)
        assert got.rows == want.rows

    def test_mlp_sweep_rows(self):
        from repro.harness.sweeps import mlp_sensitivity

        kwargs = dict(workload="mcf", windows=(1, 4),
                      accesses_per_core=ACCESSES, seed=3)
        with knob_overrides(multirun=False):
            want = mlp_sensitivity(**kwargs)
        with knob_overrides(multirun=True):
            got = mlp_sensitivity(**kwargs)
        assert got.rows == want.rows
