"""Unit tests for prepared-workload checkpointing."""

import json

import numpy as np
import pytest

from repro.core.placement import PerformanceFocusedPlacement
from repro.sim.checkpoint import load_prepared, save_prepared
from repro.sim.system import evaluate_static, prepare_workload


@pytest.fixture(scope="module")
def prep():
    return prepare_workload("astar", scale=1 / 1024,
                            accesses_per_core=2000, seed=9)


class TestRoundtrip:
    def test_trace_and_stats_identical(self, prep, tmp_path):
        save_prepared(prep, tmp_path / "ck")
        restored = load_prepared(tmp_path / "ck")
        assert np.array_equal(restored.workload_trace.trace.address,
                              prep.workload_trace.trace.address)
        assert np.allclose(restored.stats.avf, prep.stats.avf)
        assert restored.stats.footprint_pages == prep.stats.footprint_pages
        assert restored.name == "astar"

    def test_evaluation_matches(self, prep, tmp_path):
        """A restored checkpoint yields bit-identical experiment
        results — the whole point of checkpointing."""
        save_prepared(prep, tmp_path / "ck")
        restored = load_prepared(tmp_path / "ck")
        a = evaluate_static(prep, PerformanceFocusedPlacement())
        b = evaluate_static(restored, PerformanceFocusedPlacement())
        assert a.ipc == b.ipc
        assert a.ser == b.ser
        assert a.ser_vs_ddr == pytest.approx(b.ser_vs_ddr)

    def test_structures_survive(self, prep, tmp_path):
        save_prepared(prep, tmp_path / "ck")
        restored = load_prepared(tmp_path / "ck")
        assert set(restored.workload_trace.structures()) \
            == set(prep.workload_trace.structures())

    def test_baseline_preserved(self, prep, tmp_path):
        save_prepared(prep, tmp_path / "ck")
        restored = load_prepared(tmp_path / "ck")
        assert restored.ddr_baseline.ipc == prep.ddr_baseline.ipc
        assert restored.ddr_baseline.ser == prep.ddr_baseline.ser


class TestErrors:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_prepared(tmp_path / "nope")

    def test_version_mismatch(self, prep, tmp_path):
        save_prepared(prep, tmp_path / "ck")
        meta_path = tmp_path / "ck" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_prepared(tmp_path / "ck")
