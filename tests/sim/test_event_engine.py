"""Tests for the discrete-event closed-loop engine, including the
cross-validation against the fast busy-until engine."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.dram.hma import HeterogeneousMemory
from repro.sim.engine import replay
from repro.sim.event_engine import replay_event_driven
from repro.trace.record import Trace


def make_trace(n=1500, pages=16, cores=4, seed=0, write_frac=0.3):
    rng = np.random.default_rng(seed)
    return Trace(
        core=rng.integers(0, cores, n).astype(np.uint16),
        address=(rng.integers(0, pages, n) * PAGE_SIZE
                 + rng.integers(0, 64, n) * 64).astype(np.uint64),
        is_write=rng.random(n) < write_frac,
        gap=np.full(n, 40, dtype=np.uint32),
    )


class TestBasics:
    def test_completes_all_requests(self, tiny_config):
        trace = make_trace()
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(16))
        result = replay_event_driven(tiny_config, hma, trace)
        assert result.requests == len(trace)
        assert result.total_seconds > 0
        assert result.ipc > 0

    def test_deterministic(self, tiny_config):
        trace = make_trace(seed=3)
        results = []
        for _ in range(2):
            hma = HeterogeneousMemory(tiny_config)
            hma.install_placement([], range(16))
            results.append(replay_event_driven(tiny_config, hma, trace))
        assert results[0].total_seconds == results[1].total_seconds

    def test_core_windows_validated(self, tiny_config):
        trace = make_trace()
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(16))
        with pytest.raises(ValueError):
            replay_event_driven(tiny_config, hma, trace, core_windows=[1])

    def test_write_only_trace(self, tiny_config):
        trace = make_trace(write_frac=1.0)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(16))
        result = replay_event_driven(tiny_config, hma, trace)
        assert result.total_seconds > 0
        assert result.mean_read_latency == 0.0


class TestOrderings:
    def test_fast_placement_beats_slow(self, tiny_config):
        trace = make_trace(n=2500)
        slow = HeterogeneousMemory(tiny_config)
        slow.install_placement([], range(16))
        r_slow = replay_event_driven(tiny_config, slow, trace)
        fast = HeterogeneousMemory(tiny_config)
        fast.install_placement(range(16), range(16))
        r_fast = replay_event_driven(tiny_config, fast, trace)
        assert r_fast.ipc > r_slow.ipc

    def test_narrow_window_lowers_ipc(self, tiny_config):
        trace = make_trace(n=2500)
        a = HeterogeneousMemory(tiny_config)
        a.install_placement([], range(16))
        wide = replay_event_driven(tiny_config, a, trace,
                                   core_windows=[16] * 4)
        b = HeterogeneousMemory(tiny_config)
        b.install_placement([], range(16))
        narrow = replay_event_driven(tiny_config, b, trace,
                                     core_windows=[1] * 4)
        assert narrow.ipc < wide.ipc


class TestCrossValidation:
    """The fast busy-until engine must stay within a calibrated band of
    the event-driven FR-FCFS reference."""

    @pytest.mark.parametrize("placement", ["slow", "fast"])
    def test_ipc_band(self, tiny_config, placement):
        trace = make_trace(n=3000, seed=7)
        fast_pages = range(16) if placement == "fast" else []
        hma1 = HeterogeneousMemory(tiny_config)
        hma1.install_placement(fast_pages, range(16))
        approx = replay(tiny_config, hma1, trace)
        hma2 = HeterogeneousMemory(tiny_config)
        hma2.install_placement(fast_pages, range(16))
        reference = replay_event_driven(tiny_config, hma2, trace)
        ratio = approx.ipc / reference.ipc
        assert 0.4 < ratio < 2.5

    def test_placement_ordering_agrees(self, tiny_config):
        """Both engines agree on which placement is faster — the
        property every experiment in the harness relies on."""
        trace = make_trace(n=3000, seed=11)

        def run(engine, fast_pages):
            hma = HeterogeneousMemory(tiny_config)
            hma.install_placement(fast_pages, range(16))
            return engine(tiny_config, hma, trace).ipc

        fast_gain_approx = (run(replay, range(16))
                            / run(replay, []))
        fast_gain_ref = (run(replay_event_driven, range(16))
                         / run(replay_event_driven, []))
        assert (fast_gain_approx - 1) * (fast_gain_ref - 1) > 0
