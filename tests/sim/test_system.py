"""Unit tests for the experiment orchestration layer."""

import numpy as np
import pytest

from repro.core.migration import PerformanceFocusedMigration
from repro.core.placement import (
    DdrOnlyPlacement,
    PerformanceFocusedPlacement,
)
from repro.sim.system import (
    evaluate_annotations,
    evaluate_migration,
    evaluate_static,
    prepare_workload,
    run_migration_experiment,
    run_placement_experiment,
)


class TestPrepareWorkload:
    def test_baseline_is_normalised(self, astar_prep):
        base = astar_prep.ddr_baseline
        assert base.ipc_vs_ddr == 1.0
        assert base.ser_vs_ddr == 1.0
        assert base.scheme == "ddr-only"

    def test_stats_cover_footprint(self, astar_prep):
        assert (astar_prep.stats.footprint_pages
                == astar_prep.workload_trace.footprint_pages)

    def test_capacity_from_config(self, astar_prep):
        assert (astar_prep.capacity_pages
                == astar_prep.config.fast_memory.num_pages)

    def test_accepts_workload_object(self, test_scale):
        from repro.trace.workloads import Workload

        prep = prepare_workload(Workload.spec("astar", num_cores=16),
                                scale=test_scale, accesses_per_core=1000)
        assert prep.name == "astar"

    def test_accepts_mix_name(self, test_scale):
        prep = prepare_workload("mix3", scale=test_scale,
                                accesses_per_core=500)
        assert prep.name == "mix3"


class TestEvaluateStatic:
    def test_ddr_only_policy_matches_baseline_ser(self, astar_prep):
        res = evaluate_static(astar_prep, DdrOnlyPlacement())
        assert res.ser == pytest.approx(astar_prep.ddr_baseline.ser)
        assert res.ser_vs_ddr == pytest.approx(1.0)

    def test_perf_placement_beats_ddr_ipc(self, astar_prep):
        res = evaluate_static(astar_prep, PerformanceFocusedPlacement())
        assert res.ipc_vs_ddr > 1.05

    def test_perf_placement_hurts_ser(self, astar_prep):
        res = evaluate_static(astar_prep, PerformanceFocusedPlacement())
        assert res.ser_vs_ddr > 10

    def test_deterministic(self, astar_prep):
        a = evaluate_static(astar_prep, PerformanceFocusedPlacement())
        b = evaluate_static(astar_prep, PerformanceFocusedPlacement())
        assert a.ipc == b.ipc
        assert a.ser == b.ser


class TestEvaluateMigration:
    def test_runs_and_reports(self, astar_prep):
        res = evaluate_migration(astar_prep, PerformanceFocusedMigration(),
                                 num_intervals=4)
        assert res.scheme == "perf-migration"
        assert res.ipc > 0
        assert res.ser > 0

    def test_ser_between_extremes(self, astar_prep):
        """Dynamic SER must lie within [all-slow, all-fast] bounds."""
        res = evaluate_migration(astar_prep, PerformanceFocusedMigration(),
                                 num_intervals=4)
        lo = astar_prep.ddr_baseline.ser
        hi = astar_prep.ser_model.fit_fast_per_page * astar_prep.stats.avf.sum()
        assert lo <= res.ser <= hi


class TestEvaluateAnnotations:
    def test_plan_and_result(self, astar_prep):
        res, plan = evaluate_annotations(astar_prep)
        assert plan.num_annotations >= 1
        assert res.scheme == "annotations"
        assert len(plan.pinned_pages) <= astar_prep.capacity_pages

    def test_annotations_cut_ser_vs_perf(self, astar_prep):
        perf = evaluate_static(astar_prep, PerformanceFocusedPlacement())
        res, _plan = evaluate_annotations(astar_prep)
        assert res.ser < perf.ser


class TestOneShotWrappers:
    def test_run_placement_experiment(self, test_scale):
        res = run_placement_experiment(
            "astar", PerformanceFocusedPlacement(),
            scale=test_scale, accesses_per_core=1000,
        )
        assert res.workload == "astar"
        assert res.ipc_vs_ddr > 1.0

    def test_run_migration_experiment(self, test_scale):
        res = run_migration_experiment(
            "astar", PerformanceFocusedMigration(),
            scale=test_scale, accesses_per_core=1000, num_intervals=4,
        )
        assert res.workload == "astar"
        assert res.ipc > 0


class TestAnnotationMigrationCombo:
    def test_combined_improves_ser_over_annotations(self, mix1_prep):
        from repro.core.migration import ReliabilityAwareFCMigration
        from repro.sim.system import (
            evaluate_annotation_migration,
            evaluate_annotations,
        )

        ann, _ = evaluate_annotations(mix1_prep)
        comb, plan = evaluate_annotation_migration(
            mix1_prep, ReliabilityAwareFCMigration(), num_intervals=8,
        )
        assert comb.ser < ann.ser
        assert comb.migrations > 0
        assert plan.num_annotations >= 1
        assert comb.scheme.startswith("annotations+")

    def test_pinned_pages_stay_resident(self, mix1_prep):
        from repro.core.migration import PerformanceFocusedMigration
        from repro.sim.system import evaluate_annotation_migration

        # Even under an aggressive perf-only mechanism, the pinned
        # structures never leave HBM (their SER protection holds).
        res, plan = evaluate_annotation_migration(
            mix1_prep, PerformanceFocusedMigration(max_swap_fraction=1.0),
            num_intervals=8,
        )
        assert res.ipc > 0

    def test_pin_fraction_validated(self, mix1_prep):
        from repro.core.migration import ReliabilityAwareFCMigration
        from repro.sim.system import evaluate_annotation_migration

        with pytest.raises(ValueError):
            evaluate_annotation_migration(
                mix1_prep, ReliabilityAwareFCMigration(), pin_fraction=0.0,
            )
