"""Unit tests for the trace-replay engine."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.core.migration import PerformanceFocusedMigration
from repro.dram.hma import FAST, HeterogeneousMemory
from repro.sim.engine import interval_boundaries, replay
from repro.trace.record import Trace


def make_trace(n=200, pages=8, cores=4, write_every=3, seed=0):
    rng = np.random.default_rng(seed)
    page = rng.integers(0, pages, n).astype(np.uint64)
    return Trace(
        core=rng.integers(0, cores, n).astype(np.uint16),
        address=page * PAGE_SIZE,
        is_write=np.arange(n) % write_every == 0,
        gap=np.full(n, 50, dtype=np.uint32),
    ), np.sort(rng.random(n))


class TestIntervalBoundaries:
    def test_count(self):
        b = interval_boundaries(4)
        assert list(b) == [0.25, 0.5, 0.75]

    def test_single_interval_empty(self):
        assert len(interval_boundaries(1)) == 0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            interval_boundaries(0)


class TestReplay:
    def test_basic_run(self, tiny_config):
        trace, times = make_trace()
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(8))
        result = replay(tiny_config, hma, trace, times)
        assert result.total_seconds > 0
        assert result.ipc > 0
        assert result.requests == len(trace)
        assert result.instructions == trace.total_instructions

    def test_fast_placement_beats_slow(self, tiny_config):
        trace, times = make_trace(n=2000)
        slow = HeterogeneousMemory(tiny_config)
        slow.install_placement([], range(8))
        r_slow = replay(tiny_config, slow, trace, times)
        fast = HeterogeneousMemory(tiny_config)
        fast.install_placement(range(8), range(8))
        r_fast = replay(tiny_config, fast, trace, times)
        assert r_fast.ipc > r_slow.ipc
        assert r_fast.mean_read_latency < r_slow.mean_read_latency

    def test_core_windows_validation(self, tiny_config):
        trace, times = make_trace()
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(8))
        with pytest.raises(ValueError):
            replay(tiny_config, hma, trace, times, core_windows=[1, 2])

    def test_narrow_window_lowers_ipc(self, tiny_config):
        trace, times = make_trace(n=2000)
        a = HeterogeneousMemory(tiny_config)
        a.install_placement([], range(8))
        wide = replay(tiny_config, a, trace, times,
                      core_windows=[16] * tiny_config.num_cores)
        b = HeterogeneousMemory(tiny_config)
        b.install_placement([], range(8))
        narrow = replay(tiny_config, b, trace, times,
                        core_windows=[1] * tiny_config.num_cores)
        assert narrow.ipc < wide.ipc

    def test_times_required_for_intervals(self, tiny_config):
        trace, _times = make_trace()
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(8))
        with pytest.raises(ValueError):
            replay(tiny_config, hma, trace, None,
                   mechanism=PerformanceFocusedMigration(), num_intervals=4)

    def test_residency_snapshot_per_interval(self, tiny_config):
        trace, times = make_trace(n=1000)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement(range(4), range(8))
        result = replay(tiny_config, hma, trace, times,
                        mechanism=PerformanceFocusedMigration(),
                        num_intervals=4)
        assert len(result.fast_residency) == 4
        assert result.fast_residency[0] == set(range(4))
        assert len(result.interval_boundaries) == 3

    def test_migration_mechanism_invoked(self, tiny_config):
        rng = np.random.default_rng(1)
        n = 2000
        # Phase change: first half hits pages 0..3, second half 8..11.
        page = np.where(np.arange(n) < n // 2,
                        rng.integers(0, 4, n), rng.integers(8, 12, n))
        trace = Trace(
            core=rng.integers(0, 4, n).astype(np.uint16),
            address=page.astype(np.uint64) * PAGE_SIZE,
            is_write=rng.random(n) < 0.3,
            gap=np.full(n, 20, dtype=np.uint32),
        )
        times = np.sort(rng.random(n))
        # Re-sort addresses to match times ordering by phase.
        order = np.argsort(times)
        trace = Trace(core=trace.core, address=trace.address[np.argsort(page)],
                      is_write=trace.is_write, gap=trace.gap)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement(range(4), range(16))
        result = replay(tiny_config, hma, trace, times,
                        mechanism=PerformanceFocusedMigration(
                            max_swap_fraction=1.0),
                        num_intervals=4)
        assert result.migrations.total > 0

    def test_empty_trace(self, tiny_config):
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], [])
        result = replay(tiny_config, hma, Trace.empty(), np.empty(0))
        assert result.ipc == 0.0
        assert result.total_seconds == 0.0
