"""Unit tests for the MLP-aware replay core."""

import pytest

from repro.config import CoreConfig
from repro.sim.cpu import ReplayCore


def core(window=None, issue_width=4, freq=1e9, max_misses=16):
    cfg = CoreConfig(frequency_hz=freq, issue_width=issue_width,
                     max_outstanding_misses=max_misses)
    return ReplayCore(cfg, window=window)


class TestAdvance:
    def test_retire_rate(self):
        c = core(issue_width=4, freq=1e9)
        c.advance(400)
        assert c.time == pytest.approx(100e-9)

    def test_advance_drains_completed(self):
        c = core(window=2)
        c.complete_read(10e-9)
        c.advance(1000)  # 250 ns at 4 IPC, 1 GHz
        assert len(c.outstanding) == 0


class TestMissWindow:
    def test_window_clamped_by_config(self):
        c = core(window=100, max_misses=8)
        assert c.window == 8

    def test_workload_mlp_narrows_window(self):
        c = core(window=2, max_misses=16)
        assert c.window == 2

    def test_rejects_zero_window(self):
        with pytest.raises(ValueError):
            core(window=0)

    def test_no_stall_until_window_full(self):
        c = core(window=2)
        c.complete_read(100e-9)
        t = c.ready_to_issue_read()
        assert t == 0.0

    def test_stall_on_full_window(self):
        c = core(window=2)
        c.complete_read(100e-9)
        c.complete_read(200e-9)
        t = c.ready_to_issue_read()
        # Must wait for the oldest outstanding read.
        assert t == pytest.approx(100e-9)
        assert len(c.outstanding) == 1

    def test_mlp_one_serialises(self):
        c = core(window=1)
        issue1 = c.ready_to_issue_read()
        c.complete_read(50e-9)
        issue2 = c.ready_to_issue_read()
        assert issue1 == 0.0
        assert issue2 == pytest.approx(50e-9)


class TestDrain:
    def test_drain_waits_for_slowest(self):
        c = core(window=4)
        c.complete_read(10e-9)
        c.complete_read(30e-9)
        assert c.drain() == pytest.approx(30e-9)
        assert len(c.outstanding) == 0

    def test_drain_noop_when_empty(self):
        c = core()
        c.advance(100)
        t = c.time
        assert c.drain() == t
