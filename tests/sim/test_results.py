"""Unit tests for result dataclasses."""

import pytest

from repro.dram.hma import MigrationStats
from repro.sim.results import ExperimentResult, ReplayResult


class TestReplayResult:
    def make(self, instructions=1_000_000, seconds=1e-3, freq=1e9):
        return ReplayResult(
            instructions=instructions,
            requests=1000,
            total_seconds=seconds,
            core_frequency_hz=freq,
            mean_read_latency=50e-9,
            migrations=MigrationStats(),
        )

    def test_ipc(self):
        r = self.make()
        assert r.total_cycles == pytest.approx(1e6)
        assert r.ipc == pytest.approx(1.0)

    def test_zero_time(self):
        r = self.make(seconds=0.0)
        assert r.ipc == 0.0


class TestExperimentResult:
    def make(self, ipc=2.0, ser=10.0):
        return ExperimentResult(
            workload="wl", scheme="s", ipc=ipc, ser=ser,
            ipc_vs_ddr=1.5, ser_vs_ddr=100.0,
        )

    def test_relative_to(self):
        a = self.make(ipc=2.0, ser=10.0)
        b = self.make(ipc=1.0, ser=5.0)
        ipc_ratio, ser_ratio = a.relative_to(b)
        assert ipc_ratio == 2.0
        assert ser_ratio == 2.0

    def test_relative_to_zero_baseline(self):
        a = self.make()
        zero = self.make(ipc=0.0, ser=0.0)
        assert a.relative_to(zero) == (0.0, 0.0)
