"""Unit tests for per-core IPC and multicore fairness metrics."""

import numpy as np
import pytest

from repro.config import PAGE_SIZE
from repro.dram.hma import HeterogeneousMemory, MigrationStats
from repro.sim.engine import replay
from repro.sim.results import ReplayResult
from repro.trace.record import Trace


def result_with(per_core_ipc):
    return ReplayResult(
        instructions=1000, requests=100, total_seconds=1e-3,
        core_frequency_hz=1e9, mean_read_latency=0.0,
        migrations=MigrationStats(), per_core_ipc=per_core_ipc,
    )


class TestMetrics:
    def test_weighted_speedup_identity(self):
        base = result_with([1.0, 2.0])
        assert base.weighted_speedup(base) == pytest.approx(2.0)

    def test_weighted_speedup(self):
        base = result_with([1.0, 1.0])
        fast = result_with([2.0, 1.0])
        assert fast.weighted_speedup(base) == pytest.approx(3.0)

    def test_harmonic_speedup_penalises_imbalance(self):
        base = result_with([1.0, 1.0])
        balanced = result_with([1.5, 1.5])
        skewed = result_with([2.5, 0.5])
        assert balanced.harmonic_speedup(base) > skewed.harmonic_speedup(base)

    def test_fairness_bounds(self):
        base = result_with([1.0, 1.0])
        fair = result_with([2.0, 2.0])
        unfair = result_with([4.0, 1.0])
        assert fair.fairness(base) == pytest.approx(1.0)
        assert unfair.fairness(base) == pytest.approx(0.25)

    def test_zero_baseline_cores_skipped(self):
        base = result_with([0.0, 1.0])
        fast = result_with([2.0, 2.0])
        assert fast.weighted_speedup(base) == pytest.approx(2.0)

    def test_empty(self):
        a = result_with([])
        assert a.weighted_speedup(a) == 0.0
        assert a.harmonic_speedup(a) == 0.0
        assert a.fairness(a) == 0.0


class TestEngineFillsPerCoreIpc:
    def test_per_core_ipc_populated(self, tiny_config):
        rng = np.random.default_rng(0)
        n = 1000
        trace = Trace(
            core=rng.integers(0, 4, n).astype(np.uint16),
            address=(rng.integers(0, 8, n) * PAGE_SIZE).astype(np.uint64),
            is_write=rng.random(n) < 0.3,
            gap=np.full(n, 20, dtype=np.uint32),
        )
        times = np.sort(rng.random(n))
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], range(8))
        result = replay(tiny_config, hma, trace, times)
        assert len(result.per_core_ipc) == 4
        assert all(ipc > 0 for ipc in result.per_core_ipc)

    def test_idle_core_reports_zero(self, tiny_config):
        n = 100
        trace = Trace(
            core=np.zeros(n, dtype=np.uint16),  # only core 0 active
            address=np.zeros(n, dtype=np.uint64),
            is_write=np.zeros(n, dtype=bool),
            gap=np.full(n, 20, dtype=np.uint32),
        )
        times = np.sort(np.random.default_rng(1).random(n))
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([], [0])
        result = replay(tiny_config, hma, trace, times)
        assert result.per_core_ipc[0] > 0
        assert result.per_core_ipc[1] == 0.0
