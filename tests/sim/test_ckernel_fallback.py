"""Chaos: C-kernel compile failure degrades once, bit-exactly.

A broken toolchain must cost exactly one ``cc`` invocation and one
structured warning (carrying the compiler's stderr) per process, after
which every replay silently uses the pure-Python fused loop — with
results identical to the scalar oracle down to the last IEEE-754 bit.
"""

import os
import stat
import warnings

import numpy as np
import pytest

from repro.dram.hma import HeterogeneousMemory
from repro.core.placement import PerformanceFocusedPlacement
from repro.sim import _ckernel
from repro.sim.engine import _resolve_kernel, replay
from repro.sim.system import prepare_workload

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


@pytest.fixture
def broken_cc(tmp_path, monkeypatch):
    """A compiler that always fails, logging every invocation."""
    log = tmp_path / "cc-invocations.log"
    script = tmp_path / "cc"
    script.write_text(
        "#!/bin/sh\n"
        f"echo invoked >> {log}\n"
        "echo 'simulated toolchain breakage: ld returned 1' >&2\n"
        "exit 1\n")
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    monkeypatch.setenv("CC", str(script))
    monkeypatch.setenv("REPRO_CKERNEL_DIR", str(tmp_path / "ckernel"))
    monkeypatch.delenv("REPRO_REPLAY_NATIVE", raising=False)
    _ckernel._reset_for_tests()
    yield log
    _ckernel._reset_for_tests()  # later tests rebuild with the real cc


def _invocations(log) -> int:
    return len(log.read_text().splitlines()) if log.exists() else 0


class TestCompileFailureCaching:
    def test_single_cc_invocation_and_single_warning(self, broken_cc):
        with pytest.warns(_ckernel.NativeKernelUnavailableWarning,
                          match="simulated toolchain breakage"):
            assert _ckernel.load() is None
        assert _invocations(broken_cc) == 1
        assert "ld returned 1" in _ckernel.build_error()
        # Failure is cached: no further compiles, no further warnings.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for _ in range(3):
                assert _ckernel.load() is None
                assert not _ckernel.available()
        assert _invocations(broken_cc) == 1

    def test_missing_compiler_is_structured_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CC", str(tmp_path / "does-not-exist"))
        monkeypatch.setenv("REPRO_CKERNEL_DIR", str(tmp_path / "ck"))
        _ckernel._reset_for_tests()
        try:
            with pytest.warns(_ckernel.NativeKernelUnavailableWarning):
                assert _ckernel.load() is None
            assert _ckernel.build_error()
        finally:
            _ckernel._reset_for_tests()


class TestBitExactFallback:
    def test_batched_resolves_to_python_and_matches_scalar(self, broken_cc):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore",
                                  _ckernel.NativeKernelUnavailableWarning)
            prep = prepare_workload("mcf", accesses_per_core=1_500, seed=3)
            assert _resolve_kernel(
                "batched", HeterogeneousMemory(prep.config)
            ) == "batched-python"
            results = {}
            for kernel in ("scalar", "batched"):
                hma = HeterogeneousMemory(prep.config)
                fast = PerformanceFocusedPlacement().select_fast_pages(
                    prep.stats, prep.capacity_pages)
                hma.install_placement(fast, prep.stats.pages)
                wt = prep.workload_trace
                results[kernel] = replay(prep.config, hma, wt.trace,
                                         times=wt.times,
                                         core_windows=wt.core_mlp,
                                         kernel=kernel)
        scalar, batched = results["scalar"], results["batched"]
        assert batched.ipc == scalar.ipc
        assert batched.total_seconds == scalar.total_seconds
        assert batched.mean_read_latency == scalar.mean_read_latency
        assert batched.per_core_ipc == scalar.per_core_ipc
        assert np.array_equal(batched.interval_boundaries,
                              scalar.interval_boundaries)
