"""The single seed knob: explicit > REPRO_SEED > 0, end to end.

A whole experiment — trace synthesis through the Monte-Carlo fault
simulator — must be byte-identical when re-run with the same seed, and
must actually change when the seed changes (a knob that is threaded but
ignored would pass the first half alone).
"""

import dataclasses

import numpy as np

from repro.config import default_config, knob_value
from repro.core.migration import ReliabilityAwareFCMigration
from repro.core.placement import BalancedPlacement
from repro.faults.faultsim import FaultSimulator
from repro.sim.system import (
    prepare_workload,
    run_migration_experiment,
    run_placement_experiment,
)
ACCESSES = 1_200
SCALE = 1 / 1024


def _trace(seed=None):
    prep = prepare_workload("astar", scale=SCALE,
                           accesses_per_core=ACCESSES, seed=seed)
    return prep.workload_trace.trace


class TestSeedKnob:
    def test_explicit_seed_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "99")
        assert knob_value("seed", 3) == 3

    def test_env_seed_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "42")
        assert knob_value("seed", None) == 42

    def test_default_is_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert knob_value("seed", None) == 0


class TestTraceDeterminism:
    def test_same_seed_is_byte_identical(self):
        a, b = _trace(seed=7), _trace(seed=7)
        assert np.array_equal(a.address, b.address)
        assert np.array_equal(a.is_write, b.is_write)
        assert np.array_equal(a.core, b.core)

    def test_env_seed_reaches_trace_synthesis(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "1")
        a = _trace()
        monkeypatch.setenv("REPRO_SEED", "2")
        b = _trace()
        assert not np.array_equal(a.address, b.address)

    def test_env_and_explicit_agree(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "11")
        via_env = _trace()
        monkeypatch.delenv("REPRO_SEED")
        via_arg = _trace(seed=11)
        assert np.array_equal(via_env.address, via_arg.address)


class TestFaultSimDeterminism:
    def _run(self, seed=None, trials=4_000):
        memory = default_config().fast_memory
        return FaultSimulator(memory, seed=seed).run(trials)

    def test_same_seed_identical_tallies(self):
        a, b = self._run(seed=5), self._run(seed=5)
        assert (a.corrected, a.detected) == (b.corrected, b.detected)
        assert a.expected_uncorrected_per_mission == \
            b.expected_uncorrected_per_mission

    def test_env_seed_reaches_monte_carlo(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "1")
        a = self._run()
        monkeypatch.setenv("REPRO_SEED", "2")
        b = self._run()
        assert (a.corrected, a.detected,
                a.expected_uncorrected_per_mission) != \
            (b.corrected, b.detected, b.expected_uncorrected_per_mission)


class TestExperimentRoundTrip:
    """Full pipeline: identical ExperimentResult for identical seeds."""

    def test_placement_experiment_round_trips(self):
        kwargs = dict(scale=SCALE, accesses_per_core=ACCESSES, seed=13)
        a = run_placement_experiment("mcf", BalancedPlacement(), **kwargs)
        b = run_placement_experiment("mcf", BalancedPlacement(), **kwargs)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_migration_experiment_round_trips(self):
        kwargs = dict(scale=SCALE, accesses_per_core=ACCESSES,
                      num_intervals=4, seed=13)
        a = run_migration_experiment(
            "astar", ReliabilityAwareFCMigration(), **kwargs)
        b = run_migration_experiment(
            "astar", ReliabilityAwareFCMigration(), **kwargs)
        assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_seed_changes_the_experiment(self):
        kwargs = dict(scale=SCALE, accesses_per_core=ACCESSES)
        a = run_placement_experiment("mcf", BalancedPlacement(),
                                     seed=1, **kwargs)
        b = run_placement_experiment("mcf", BalancedPlacement(),
                                     seed=2, **kwargs)
        assert a.ipc != b.ipc
