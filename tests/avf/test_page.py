"""Unit tests for page-level AVF aggregation and interval profiling."""

import numpy as np
import pytest

from repro.avf.page import PageStats, profile_intervals, profile_trace
from repro.config import LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE
from repro.trace.record import Trace, TraceRecord


def trace_of(entries):
    """entries: list of (page, line_in_page, is_write); times spread."""
    records = []
    times = np.linspace(0.05, 0.95, len(entries))
    for (page, line, w), t in zip(entries, times):
        records.append(TraceRecord(
            core=0, address=page * PAGE_SIZE + line * LINE_SIZE,
            is_write=w, gap_instructions=0,
        ))
    return Trace.from_records(records), times


class TestPageStats:
    def make(self):
        return PageStats(
            pages=np.array([1, 2, 3]),
            reads=np.array([10, 0, 5]),
            writes=np.array([2, 8, 5]),
            avf=np.array([0.5, 0.1, 0.2]),
            footprint_pages=10,
        )

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            PageStats(pages=np.array([1]), reads=np.array([1, 2]),
                      writes=np.array([1]), avf=np.array([0.1]))

    def test_hotness(self):
        s = self.make()
        assert list(s.hotness) == [12, 8, 10]

    def test_write_ratio_inf_safe(self):
        s = self.make()
        assert s.write_ratio[1] == 8.0  # 8 writes / max(0 reads, 1)

    def test_wr2_ratio(self):
        s = self.make()
        assert s.wr2_ratio[0] == pytest.approx(4 / 10)
        assert s.wr2_ratio[2] == pytest.approx(25 / 5)

    def test_mean_avf_over_full_footprint(self):
        s = self.make()
        assert s.mean_avf() == pytest.approx((0.5 + 0.1 + 0.2) / 10)

    def test_footprint_at_least_touched(self):
        s = PageStats(pages=np.array([1, 2]), reads=np.array([1, 1]),
                      writes=np.array([0, 0]), avf=np.array([0.1, 0.1]),
                      footprint_pages=0)
        assert s.footprint_pages == 2

    def test_index_of(self):
        s = self.make()
        assert list(s.index_of(np.array([2, 1]))) == [1, 0]

    def test_index_of_missing_raises(self):
        s = self.make()
        with pytest.raises(KeyError):
            s.index_of(np.array([99]))

    def test_len(self):
        assert len(self.make()) == 3


class TestProfileTrace:
    def test_counts(self):
        trace, times = trace_of([(0, 0, True), (0, 1, False), (1, 0, False)])
        stats = profile_trace(trace, times)
        assert list(stats.pages) == [0, 1]
        assert list(stats.reads) == [1, 1]
        assert list(stats.writes) == [1, 0]

    def test_avf_bounds(self):
        trace, times = trace_of(
            [(0, i % 4, i % 3 == 0) for i in range(40)]
        )
        stats = profile_trace(trace, times)
        assert np.all(stats.avf >= 0)
        assert np.all(stats.avf <= 1)

    def test_page_avf_is_mean_over_64_lines(self):
        # One line written at t~0.05 and read at t~0.95: ACE ~ 0.9 on
        # that line; the page AVF divides by 64 lines.
        trace, times = trace_of([(0, 0, True), (0, 0, False)])
        stats = profile_trace(trace, times)
        expected = (times[1] - times[0]) / LINES_PER_PAGE
        assert stats.avf[0] == pytest.approx(expected)

    def test_write_only_page_has_zero_avf(self):
        trace, times = trace_of([(0, 0, True), (0, 1, True)])
        stats = profile_trace(trace, times)
        assert stats.avf[0] == 0.0

    def test_footprint_passthrough(self):
        trace, times = trace_of([(0, 0, False)])
        stats = profile_trace(trace, times, footprint_pages=100)
        assert stats.footprint_pages == 100


class TestProfileIntervals:
    def test_interval_sum_matches_total(self):
        entries = [(0, i % 8, i % 4 == 0) for i in range(50)] + \
                  [(1, i % 8, i % 3 == 0) for i in range(50)]
        trace, times = trace_of(entries)
        order = np.argsort(times)
        total = profile_trace(trace, times)
        boundaries = np.array([0.25, 0.5, 0.75])
        iv = profile_intervals(trace, times, boundaries)
        assert iv.num_intervals == 4
        for i, page in enumerate(total.pages):
            assert iv.total_avf(int(page)) == pytest.approx(
                float(total.avf[i]), abs=1e-12
            )

    def test_read_attributed_to_containing_interval(self):
        # Write at ~0.05 (interval 0), read at ~0.95 (interval 1): the
        # whole span lands in interval 1.
        trace, times = trace_of([(0, 0, True), (0, 0, False)])
        iv = profile_intervals(trace, times, np.array([0.5]))
        assert iv.interval_avf[0].get(0, 0.0) == 0.0
        assert iv.interval_avf[1][0] > 0.0

    def test_no_boundaries_single_interval(self):
        trace, times = trace_of([(0, 0, True), (0, 0, False)])
        iv = profile_intervals(trace, times, np.empty(0))
        assert iv.num_intervals == 1
