"""Unit and property tests for ACE interval tracking.

The class-level tests reproduce the four didactic cases of the paper's
Figure 3; the hypothesis test cross-validates the streaming tracker
against the vectorised batch implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.avf.tracker import (AceTracker, WindowedAceTracker,
                               line_ace_times)


def run_stream(events, assume_live_at_start=True):
    """events: list of (line, time, is_write)."""
    tracker = AceTracker(assume_live_at_start=assume_live_at_start)
    for line, time, is_write in events:
        tracker.access(line, time, is_write)
    return tracker


class TestFigure3Cases:
    def test_case_a_write_read_read_write(self):
        """Fig. 3(a): WR1 .. RD1 .. RD2 .. WR2 -> ACE = [WR1, RD2]."""
        t = run_stream([(0, 0.1, True), (0, 0.3, False),
                        (0, 0.6, False), (0, 0.9, True)])
        assert t.ace_time(0) == pytest.approx(0.5)

    def test_case_b_strike_between_writes_masked(self):
        """Fig. 3(b): WR1 .. WR2 with no read -> no ACE time at all."""
        t = run_stream([(0, 0.1, True), (0, 0.8, True)])
        assert t.ace_time(0) == 0.0

    def test_case_c_same_counts_high_avf(self):
        """Fig. 3(c)/(d): equal access counts, different AVF.

        Reads late after the write -> long ACE."""
        t = run_stream([(0, 0.0, True), (0, 0.9, False)])
        assert t.ace_time(0) == pytest.approx(0.9)

    def test_case_d_same_counts_low_avf(self):
        """Reads immediately after the write -> short ACE."""
        t = run_stream([(0, 0.0, True), (0, 0.05, False)])
        assert t.ace_time(0) == pytest.approx(0.05)

    def test_equal_hotness_different_avf(self):
        high = run_stream([(0, 0.0, True), (0, 0.9, False)])
        low = run_stream([(1, 0.0, True), (1, 0.05, False)])
        assert high.ace_time(0) > 10 * low.ace_time(1)


class TestStreamingSemantics:
    def test_chained_reads_all_ace(self):
        t = run_stream([(0, 0.0, True), (0, 0.2, False),
                        (0, 0.5, False), (0, 0.7, False)])
        assert t.ace_time(0) == pytest.approx(0.7)

    def test_leading_read_counts_when_live_at_start(self):
        t = run_stream([(0, 0.4, False)])
        assert t.ace_time(0) == pytest.approx(0.4)

    def test_leading_read_ignored_when_not_live(self):
        t = run_stream([(0, 0.4, False)], assume_live_at_start=False)
        assert t.ace_time(0) == 0.0

    def test_tail_after_last_read_is_dead(self):
        t = run_stream([(0, 0.0, True), (0, 0.2, False)])
        # Nothing after the read contributes.
        assert t.ace_time(0) == pytest.approx(0.2)

    def test_untouched_line_zero(self):
        t = run_stream([(0, 0.5, True)])
        assert t.ace_time(42) == 0.0

    def test_lines_independent(self):
        t = run_stream([(0, 0.0, True), (1, 0.1, True),
                        (0, 0.5, False), (1, 0.9, False)])
        assert t.ace_time(0) == pytest.approx(0.5)
        assert t.ace_time(1) == pytest.approx(0.8)

    def test_out_of_order_rejected(self):
        t = AceTracker()
        t.access(0, 0.5, True)
        with pytest.raises(ValueError):
            t.access(0, 0.4, False)

    def test_touched_lines(self):
        t = run_stream([(3, 0.1, True), (9, 0.2, False)])
        assert sorted(t.touched_lines()) == [3, 9]

    def test_line_ace_times_map(self):
        t = run_stream([(0, 0.0, True), (0, 0.5, False)])
        assert t.line_ace_times() == {0: pytest.approx(0.5)}


class TestWindowReset:
    def test_reset_returns_and_clears(self):
        t = run_stream([(0, 0.0, True), (0, 0.4, False)])
        window = t.reset_window()
        assert window[0] == pytest.approx(0.4)
        assert t.ace_time(0) == 0.0

    def test_cross_boundary_span_charged_to_reading_window(self):
        t = AceTracker()
        t.access(0, 0.1, True)
        first = t.reset_window()
        assert first[0] == 0.0
        t.access(0, 0.6, False)
        second = t.reset_window()
        # The whole 0.1 -> 0.6 span lands in the second window.
        assert second[0] == pytest.approx(0.5)


class TestVectorised:
    def test_matches_streaming_on_example(self):
        events = [(0, 0.0, True), (1, 0.1, False), (0, 0.3, False),
                  (1, 0.5, True), (0, 0.6, True), (1, 0.8, False)]
        stream = run_stream(events)
        lines = np.array([e[0] for e in events])
        times = np.array([e[1] for e in events])
        writes = np.array([e[2] for e in events])
        ulines, ace = line_ace_times(lines, times, writes)
        batch = dict(zip(ulines, ace))
        for line in stream.touched_lines():
            assert batch[line] == pytest.approx(stream.ace_time(line))

    def test_empty(self):
        ulines, ace = line_ace_times(np.empty(0, dtype=np.int64),
                                     np.empty(0), np.empty(0, dtype=bool))
        assert len(ulines) == 0
        assert len(ace) == 0

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            line_ace_times(np.array([0, 0]), np.array([0.5, 0.4]),
                           np.array([True, False]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_ace_times(np.array([0]), np.array([0.1, 0.2]),
                           np.array([True, False]))


@settings(max_examples=60, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 5), st.floats(0.0, 1.0), st.booleans()),
        min_size=1, max_size=60,
    ),
    live=st.booleans(),
)
def test_streaming_equals_vectorised(events, live):
    """Reference streaming tracker == vectorised batch, always."""
    events = sorted(events, key=lambda e: e[1])
    stream = run_stream(events, assume_live_at_start=live)
    lines = np.array([e[0] for e in events])
    times = np.array([e[1] for e in events])
    writes = np.array([e[2] for e in events])
    ulines, ace = line_ace_times(lines, times, writes,
                                 assume_live_at_start=live)
    batch = dict(zip(ulines.tolist(), ace.tolist()))
    for line in stream.touched_lines():
        assert batch.get(line, 0.0) == pytest.approx(
            stream.ace_time(line), abs=1e-12
        )


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 3), st.floats(0.0, 1.0), st.booleans()),
        min_size=1, max_size=40,
    ),
)
def test_ace_time_bounded_by_window(events):
    """Per-line ACE time never exceeds the observation window."""
    events = sorted(events, key=lambda e: e[1])
    stream = run_stream(events)
    for line in stream.touched_lines():
        assert 0.0 <= stream.ace_time(line) <= 1.0 + 1e-9


# ---------------------------------------------------------------------------
# WindowedAceTracker: chunk-batched tracker vs the streaming reference
# ---------------------------------------------------------------------------

def _feed_chunked(tracker, events, cuts):
    """Feed `events` to `tracker` split at positions `cuts`."""
    bounds = [0] + sorted(cuts) + [len(events)]
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        chunk = events[lo:hi]
        if not chunk:
            continue
        tracker.observe_chunk(
            np.array([e[0] for e in chunk], dtype=np.int64),
            np.array([e[1] for e in chunk], dtype=np.float64),
            np.array([e[2] for e in chunk]),
        )


class TestWindowedTracker:
    def test_scalar_access_matches_stream(self):
        events = [(0, 0.1, True), (0, 0.3, False), (1, 0.4, False),
                  (0, 0.6, False), (1, 0.7, True), (0, 0.9, True)]
        stream = run_stream(events)
        windowed = WindowedAceTracker()
        for line, time, w in events:
            windowed.access(line, time, w)
        assert windowed.line_ace_times() == stream.line_ace_times()

    def test_rejects_out_of_order_chunks(self):
        t = WindowedAceTracker()
        t.observe_chunk(np.array([0]), np.array([0.5]), np.array([True]))
        with pytest.raises(ValueError, match="time order"):
            t.observe_chunk(np.array([0]), np.array([0.4]),
                            np.array([False]))

    def test_rejects_unsorted_within_chunk(self):
        t = WindowedAceTracker()
        with pytest.raises(ValueError, match="time order"):
            t.observe_chunk(np.array([0, 1]), np.array([0.5, 0.4]),
                            np.array([True, True]))

    def test_rejects_negative_lines(self):
        t = WindowedAceTracker()
        with pytest.raises(ValueError, match="non-negative"):
            t.observe_chunk(np.array([-1]), np.array([0.1]),
                            np.array([True]))

    def test_rejects_mismatched_lengths(self):
        t = WindowedAceTracker()
        with pytest.raises(ValueError, match="observe_chunk"):
            t.observe_chunk(np.array([0, 1]), np.array([0.1]),
                            np.array([True, False]))

    def test_empty_chunk_is_noop(self):
        t = WindowedAceTracker()
        t.observe_chunk(np.empty(0, dtype=np.int64), np.empty(0),
                        np.empty(0, dtype=bool))
        assert t.touched_lines() == []

    def test_grows_past_initial_capacity(self):
        t = WindowedAceTracker()
        t.observe_chunk(np.array([50_000]), np.array([0.1]),
                        np.array([True]))
        t.observe_chunk(np.array([50_000]), np.array([0.6]),
                        np.array([False]))
        assert t.ace_time(50_000) == pytest.approx(0.5)

    def test_window_reset_carries_liveness(self):
        """A write before the boundary + read after it lands the whole
        span in the second window, exactly as the streaming tracker."""
        events_a = [(0, 0.2, True)]
        events_b = [(0, 0.8, False)]
        stream = run_stream(events_a)
        windowed = WindowedAceTracker()
        _feed_chunked(windowed, events_a, [])
        assert windowed.reset_window() == stream.reset_window()
        for line, time, w in events_b:
            stream.access(line, time, w)
        _feed_chunked(windowed, events_b, [])
        assert windowed.line_ace_times() == stream.line_ace_times()
        assert windowed.ace_time(0) == pytest.approx(0.6)

    def test_window_ace_of_untouched_is_zero(self):
        t = WindowedAceTracker()
        t.observe_chunk(np.array([3]), np.array([0.1]), np.array([True]))
        out = t.window_ace_of(np.array([3, 7, -1, 10 ** 9]))
        assert out.tolist() == [0.0, 0.0, 0.0, 0.0]


@settings(max_examples=60, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 5), st.floats(0.0, 1.0), st.booleans()),
        min_size=1, max_size=60,
    ),
    cuts=st.lists(st.integers(0, 60), max_size=4),
    resets=st.integers(0, 2),
    live=st.booleans(),
)
def test_windowed_equals_streaming(events, cuts, resets, live):
    """Chunk-batched tracker == streaming reference, bit for bit,
    across arbitrary chunking and window resets."""
    events = sorted(events, key=lambda e: e[1])
    cuts = [min(c, len(events)) for c in cuts]
    stream = AceTracker(assume_live_at_start=live)
    windowed = WindowedAceTracker(assume_live_at_start=live)

    # Split the trace into `resets + 1` measurement windows, each fed
    # to the windowed tracker in the chunk pattern given by `cuts`.
    window_bounds = [len(events) * i // (resets + 1)
                     for i in range(1, resets + 1)] + [len(events)]
    lo = 0
    for hi in window_bounds:
        window = events[lo:hi]
        for line, time, w in window:
            stream.access(line, time, w)
        _feed_chunked(windowed, window,
                      [min(c, len(window)) for c in cuts])
        # Exact equality: the committed sums must be bit-identical.
        assert windowed.reset_window() == stream.reset_window()
        lo = hi
