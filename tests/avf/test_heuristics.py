"""Unit tests for AVF proxy heuristics and correlation analysis."""

import numpy as np
import pytest

from repro.avf.heuristics import (
    hotness_avf_correlation,
    pearson,
    risk_from_write_ratio,
    top_hot_pages,
    write_ratio_avf_correlation,
    write_ratio_histogram,
)
from repro.avf.page import PageStats


def stats_from(reads, writes, avf, footprint=None):
    n = len(reads)
    return PageStats(
        pages=np.arange(n),
        reads=np.asarray(reads),
        writes=np.asarray(writes),
        avf=np.asarray(avf, dtype=float),
        footprint_pages=footprint or n,
    )


class TestPearson:
    def test_perfect_positive(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, 2 * x) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_short_input_returns_zero(self):
        assert pearson(np.array([1.0]), np.array([2.0])) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.ones(3), np.ones(4))


class TestCorrelations:
    def test_hotness_avf_sign(self):
        s = stats_from(reads=[100, 10, 1], writes=[0, 0, 0],
                       avf=[0.9, 0.5, 0.1])
        assert hotness_avf_correlation(s) > 0.9

    def test_write_ratio_avf_negative_by_construction(self):
        # More writes per read -> lower AVF, as the paper observes.
        s = stats_from(reads=[10, 10, 10], writes=[0, 5, 10],
                       avf=[0.9, 0.5, 0.1])
        assert write_ratio_avf_correlation(s) < -0.9


class TestTopHotPages:
    def test_order_and_count(self):
        s = stats_from(reads=[5, 50, 20], writes=[0, 0, 0],
                       avf=[0.1, 0.2, 0.3])
        idx = top_hot_pages(s, 2)
        assert list(idx) == [1, 2]

    def test_n_larger_than_footprint(self):
        s = stats_from(reads=[5, 1], writes=[0, 0], avf=[0.1, 0.2])
        assert len(top_hot_pages(s, 10)) == 2


class TestHistogram:
    def test_counts_sum_to_pages(self):
        s = stats_from(reads=[10] * 6, writes=[0, 1, 3, 5, 8, 20],
                       avf=[0.1] * 6)
        hist = write_ratio_histogram(s, num_bins=5)
        assert hist.counts.sum() == 6

    def test_overflow_lands_in_last_bin(self):
        s = stats_from(reads=[1], writes=[50], avf=[0.1])
        hist = write_ratio_histogram(s, num_bins=5, max_ratio=1.0)
        assert hist.counts[-1] == 1

    def test_iteration(self):
        s = stats_from(reads=[10, 10], writes=[1, 9], avf=[0.1, 0.1])
        rows = list(write_ratio_histogram(s, num_bins=2))
        assert len(rows) == 2
        assert sum(r[2] for r in rows) == 2


class TestRiskClassifier:
    def test_low_write_ratio_is_high_risk(self):
        s = stats_from(reads=[10, 10], writes=[0, 10], avf=[0.9, 0.1])
        risky = risk_from_write_ratio(s)
        assert risky[0]
        assert not risky[1]

    def test_explicit_threshold(self):
        s = stats_from(reads=[10, 10], writes=[2, 6], avf=[0.5, 0.5])
        risky = risk_from_write_ratio(s, threshold=0.5)
        assert list(risky) == [True, False]


class TestOnGeneratedWorkload:
    def test_mix1_correlations_match_paper_shape(self, mix1_prep):
        """Paper: rho(hotness, AVF) ~ 0.08; rho(Wr ratio, AVF) ~ -0.32."""
        stats = mix1_prep.stats
        rho_hot = hotness_avf_correlation(stats)
        rho_wr = write_ratio_avf_correlation(stats)
        assert abs(rho_hot) < 0.45         # weak (paper: 0.08)
        assert -0.7 < rho_wr < -0.1        # clearly negative

    def test_hot_pages_mostly_high_avf(self, mix1_prep):
        """Fig. 6: most of the hottest pages carry high AVF, with some
        low-AVF exceptions."""
        stats = mix1_prep.stats
        idx = top_hot_pages(stats, 200)
        top_avf = stats.avf[idx]
        assert np.median(top_avf) > stats.avf.mean()
        assert (top_avf < stats.avf.mean()).sum() > 0
