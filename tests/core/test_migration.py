"""Unit tests for the dynamic migration mechanisms."""

import numpy as np
import pytest

from repro.core.migration import (
    CrossCountersMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.dram.hma import FAST, SLOW, HeterogeneousMemory


@pytest.fixture
def hma(tiny_config):
    """16-frame HBM; pages 0..15 start in fast, 16..63 in slow."""
    hma = HeterogeneousMemory(tiny_config)
    hma.install_placement(range(16), range(64))
    return hma


def observe(mechanism, accesses):
    """accesses: list of (page, is_write)."""
    pages = np.array([a[0] for a in accesses], dtype=np.int64)
    writes = np.array([a[1] for a in accesses], dtype=bool)
    mechanism.observe_chunk(pages, writes)


class TestPerformanceFocused:
    def test_hot_slow_page_swapped_in(self, hma):
        mech = PerformanceFocusedMigration()
        accesses = [(20, False)] * 50 + [(p, False) for p in range(16)]
        observe(mech, accesses)
        to_fast, to_slow = mech.plan(hma)
        assert 20 in to_fast
        assert len(to_slow) == len(to_fast)  # HBM was full: swaps

    def test_victims_are_coldest(self, hma):
        mech = PerformanceFocusedMigration()
        accesses = [(20, False)] * 50
        accesses += [(p, False) for p in range(1, 16) for _ in range(5)]
        # Page 0 untouched -> coldest resident.
        observe(mech, accesses)
        _to_fast, to_slow = mech.plan(hma)
        assert to_slow == [0]

    def test_no_unprofitable_swap(self, hma):
        mech = PerformanceFocusedMigration()
        # Residents hotter than any slow page: nothing should move.
        accesses = [(p, False) for p in range(16) for _ in range(20)]
        accesses += [(20, False)] * 2
        observe(mech, accesses)
        to_fast, to_slow = mech.plan(hma)
        assert to_fast == []
        assert to_slow == []

    def test_budget_cap(self, hma):
        mech = PerformanceFocusedMigration(max_swap_fraction=0.25)
        accesses = []
        for p in range(16, 48):
            accesses += [(p, False)] * 30
        observe(mech, accesses)
        to_fast, _ = mech.plan(hma)
        assert len(to_fast) <= max(1, hma.fast_capacity_pages // 4)

    def test_counters_reset_after_plan(self, hma):
        mech = PerformanceFocusedMigration()
        observe(mech, [(20, False)] * 10)
        mech.plan(hma)
        assert mech.counters.touched_pages() == []

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            PerformanceFocusedMigration(max_swap_fraction=0.0)

    def test_hw_cost_is_one_counter_per_page(self):
        mech = PerformanceFocusedMigration()
        pages = (17 << 30) // 4096
        assert mech.hardware_cost_bytes(pages, 0) == pytest.approx(
            4.25 * 2**20, rel=0.01
        )


class TestReliabilityAwareFC:
    def test_prefers_hot_low_risk(self, hma):
        mech = ReliabilityAwareFCMigration()
        accesses = []
        # Page 20: hot, write-heavy (low risk). Page 21: hot, read-only
        # (high risk). Residents barely touched.
        accesses += [(20, True)] * 30 + [(20, False)] * 30
        accesses += [(21, False)] * 60
        accesses += [(22, False)] * 6  # lukewarm page lowers the mean
        observe(mech, accesses)
        to_fast, _ = mech.plan(hma)
        assert 20 in to_fast
        assert 21 not in to_fast

    def test_evicts_high_risk_residents_even_unpaired(self, hma):
        mech = ReliabilityAwareFCMigration()
        # Resident page 0 is hot but read-only -> high risk; resident
        # page 1 is write-heavy (low risk).  No slow-memory candidates
        # exist, so the exchange is one-sided: page 0 leaves anyway.
        observe(mech, [(0, False)] * 60 + [(1, True)] * 30 + [(1, False)] * 10)
        to_fast, to_slow = mech.plan(hma)
        assert 0 in to_slow
        assert 1 not in to_slow
        assert to_fast == []

    def test_hw_cost_two_counters_per_page(self):
        mech = ReliabilityAwareFCMigration()
        pages = (17 << 30) // 4096
        assert mech.hardware_cost_bytes(pages, 0) == pytest.approx(
            8.5 * 2**20, rel=0.01
        )


class TestCrossCounters:
    def test_mea_promotion(self, hma):
        mech = CrossCountersMigration()
        observe(mech, [(30, False)] * 40)
        to_fast, _to_slow = mech.plan_sub(hma)
        assert 30 in to_fast

    def test_promotions_paired_with_demotions_when_full(self, hma):
        mech = CrossCountersMigration()
        observe(mech, [(30, False)] * 40 + [(31, False)] * 40)
        to_fast, to_slow = mech.plan_sub(hma)
        assert len(to_slow) >= len(to_fast) - (
            hma.fast_capacity_pages - hma.fast_occupancy()
        )

    def test_occupancy_never_drains(self, hma):
        """Risk demotions only happen paired with promotions."""
        mech = CrossCountersMigration()
        rng = np.random.default_rng(0)
        for _ in range(8):
            pages = rng.integers(0, 64, 200)
            writes = rng.random(200) < 0.3
            mech.observe_chunk(pages, writes)
            tf, ts = mech.plan(hma)
            hma.migrate_pairs(tf, ts, now=0.0)
            for _ in range(4):
                pages = rng.integers(0, 64, 200)
                writes = rng.random(200) < 0.3
                mech.observe_chunk(pages, writes)
                tf, ts = mech.plan_sub(hma)
                hma.migrate_pairs(tf, ts, now=0.0)
        assert hma.fast_occupancy() >= hma.fast_capacity_pages - 2

    def test_fc_interval_queues_high_risk(self, hma):
        mech = CrossCountersMigration()
        # Resident 0 read-only (high risk), resident 1 write-heavy.
        observe(mech, [(0, False)] * 40 + [(1, True)] * 30 + [(1, False)] * 10)
        to_fast, to_slow = mech.plan(hma)
        assert to_fast == [] and to_slow == []
        assert 0 in mech._pending_out
        assert 1 not in mech._pending_out

    def test_queued_risk_demoted_on_next_promotion(self, hma):
        mech = CrossCountersMigration()
        observe(mech, [(0, False)] * 40 + [(1, True)] * 40)
        mech.plan(hma)
        observe(mech, [(40, False)] * 60)
        to_fast, to_slow = mech.plan_sub(hma)
        assert 40 in to_fast
        assert 0 in to_slow

    def test_hw_cost_well_below_fc(self):
        """Sec. 6.4.2: CC needs ~676 KB vs FC's 8.5 MB."""
        cc = CrossCountersMigration()
        fc = ReliabilityAwareFCMigration()
        total = (17 << 30) // 4096
        fast = (1 << 30) // 4096
        cc_cost = cc.hardware_cost_bytes(total, fast)
        assert cc_cost <= 700 * 1024
        assert cc_cost < fc.hardware_cost_bytes(total, fast) / 5

    @pytest.mark.parametrize("kernel", ["array", "sparse"])
    def test_pending_demotion_never_doubles_as_cold_victim(
            self, hma, kernel):
        """Regression: a page queued in ``_pending_out`` must not be
        picked again as a cold-eviction victim in the same plan — a
        page can only leave HBM once."""
        mech = CrossCountersMigration(policy_kernel=kernel)
        # Residents 2..15 warm, resident 1 lukewarm, resident 0 cold
        # (untouched); two confident off-package MEA pages force two
        # paired demotions while only one pending page is queued.
        accesses = [(p, False) for p in range(2, 16) for _ in range(2)]
        accesses += [(1, False)]
        accesses += [(40, False)] * 4 + [(41, False)] * 4
        observe(mech, accesses)
        mech._pending_out = [0]
        to_fast, to_slow = mech.plan_sub(hma)
        assert to_fast == [40, 41]
        assert to_slow == [0, 1]  # queued page 0, then coldest other
        assert len(to_slow) == len(set(to_slow))

    def test_rejects_bad_subintervals(self):
        with pytest.raises(ValueError):
            CrossCountersMigration(subintervals_per_interval=0)

    def test_rejects_bad_promotion_cap(self):
        with pytest.raises(ValueError):
            CrossCountersMigration(max_promotions=0)


class TestOracleRisk:
    def test_requires_times(self, hma):
        from repro.core.migration import OracleRiskMigration

        mech = OracleRiskMigration()
        with pytest.raises(ValueError):
            mech.observe_chunk(np.array([1, 2]), np.array([True, False]))

    def test_evicts_measured_high_ace_pages(self, hma):
        from repro.core.migration import OracleRiskMigration

        mech = OracleRiskMigration()
        # Resident page 0: written early, read late -> long ACE span.
        # Resident page 1: written then immediately re-read -> tiny ACE.
        pages = np.array([0, 1, 1, 0])
        writes = np.array([True, True, False, False])
        times = np.array([0.0, 0.1, 0.12, 0.9])
        mech.observe_chunk(pages, writes, times=times)
        to_fast, to_slow = mech.plan(hma)
        assert 0 in to_slow
        assert 1 not in to_slow

    def test_rejects_bad_fraction(self):
        from repro.core.migration import OracleRiskMigration

        with pytest.raises(ValueError):
            OracleRiskMigration(max_swap_fraction=0.0)
