"""Unit tests for annotation-based placement (paper Section 7)."""

import numpy as np
import pytest

from repro.core.annotations import (
    plan_annotations,
    profile_structures,
)
from repro.trace.workloads import Workload


@pytest.fixture(scope="module")
def prepared():
    from repro.sim.system import prepare_workload

    return prepare_workload("astar", scale=1 / 1024,
                            accesses_per_core=4000, seed=3)


class TestProfileStructures:
    def test_one_profile_per_structure(self, prepared):
        profiles = profile_structures(prepared.workload_trace, prepared.stats)
        # astar has 5 regions, pooled over all 16 copies.
        assert len(profiles) == 5

    def test_pages_pooled_over_copies(self, prepared):
        profiles = {p.name: p for p in
                    profile_structures(prepared.workload_trace, prepared.stats)}
        way = profiles["astar.way_array"]
        per_copy = prepared.workload_trace.core_layouts[0]
        way_layout = next(l for l in per_copy if l.spec.name == "way_array")
        assert way.pages == way_layout.num_pages * 16

    def test_hot_structure_has_high_mean_hotness(self, prepared):
        profiles = {p.name: p for p in
                    profile_structures(prepared.workload_trace, prepared.stats)}
        assert (profiles["astar.way_array"].mean_hotness
                > 5 * profiles["astar.cold_heap"].mean_hotness)

    def test_risky_structure_has_higher_avf(self, prepared):
        profiles = {p.name: p for p in
                    profile_structures(prepared.workload_trace, prepared.stats)}
        assert (profiles["astar.landscape"].mean_avf
                > profiles["astar.open_list"].mean_avf)


class TestPlanAnnotations:
    def test_fills_capacity(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                capacity_pages=100)
        assert 50 <= len(plan.pinned_pages) <= 100

    def test_few_annotations_for_homogeneous(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                capacity_pages=100)
        assert 1 <= plan.num_annotations <= 5

    def test_zero_capacity(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 0)
        assert plan.num_annotations == 0
        assert len(plan.pinned_pages) == 0

    def test_pinned_pages_unique(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 200)
        assert len(plan.pinned_pages) == len(np.unique(plan.pinned_pages))

    def test_pinned_pages_belong_to_annotated_structures(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 100)
        allowed = set()
        structures = prepared.workload_trace.structures()
        for profile in plan.annotated:
            for layout in structures[profile.name]:
                allowed.update(range(layout.first_page,
                                     layout.first_page + layout.num_pages))
        assert set(int(p) for p in plan.pinned_pages) <= allowed

    def test_avoids_riskiest_structures(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 100,
                                avf_quantile=0.5)
        # landscape is astar's long-lived (risky) structure.
        assert "astar.landscape" not in plan.structure_names

    def test_structure_names_property(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 100)
        assert plan.structure_names == [s.name for s in plan.annotated]

    def test_mix_needs_more_annotations_than_homogeneous(self, prepared):
        mix_prep_wt = Workload.mix("mix1").generate(
            scale=1 / 1024, accesses_per_core=4000, seed=3
        )
        from repro.avf.page import profile_trace

        mix_stats = profile_trace(mix_prep_wt.trace, mix_prep_wt.times,
                                  footprint_pages=mix_prep_wt.footprint_pages)
        mix_plan = plan_annotations(mix_prep_wt, mix_stats, 256)
        astar_plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                      256)
        assert mix_plan.num_annotations > astar_plan.num_annotations
