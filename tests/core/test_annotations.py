"""Unit tests for annotation-based placement (paper Section 7)."""

import numpy as np
import pytest

from repro.core.annotations import (
    plan_annotations,
    profile_structures,
)
from repro.trace.workloads import Workload


@pytest.fixture(scope="module")
def prepared():
    from repro.sim.system import prepare_workload

    return prepare_workload("astar", scale=1 / 1024,
                            accesses_per_core=4000, seed=3)


class TestProfileStructures:
    def test_one_profile_per_structure(self, prepared):
        profiles = profile_structures(prepared.workload_trace, prepared.stats)
        # astar has 5 regions, pooled over all 16 copies.
        assert len(profiles) == 5

    def test_pages_pooled_over_copies(self, prepared):
        profiles = {p.name: p for p in
                    profile_structures(prepared.workload_trace, prepared.stats)}
        way = profiles["astar.way_array"]
        per_copy = prepared.workload_trace.core_layouts[0]
        way_layout = next(l for l in per_copy if l.spec.name == "way_array")
        assert way.pages == way_layout.num_pages * 16

    def test_hot_structure_has_high_mean_hotness(self, prepared):
        profiles = {p.name: p for p in
                    profile_structures(prepared.workload_trace, prepared.stats)}
        assert (profiles["astar.way_array"].mean_hotness
                > 5 * profiles["astar.cold_heap"].mean_hotness)

    def test_risky_structure_has_higher_avf(self, prepared):
        profiles = {p.name: p for p in
                    profile_structures(prepared.workload_trace, prepared.stats)}
        assert (profiles["astar.landscape"].mean_avf
                > profiles["astar.open_list"].mean_avf)


class TestPlanAnnotations:
    def test_fills_capacity(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                capacity_pages=100)
        assert 50 <= len(plan.pinned_pages) <= 100

    def test_few_annotations_for_homogeneous(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                capacity_pages=100)
        assert 1 <= plan.num_annotations <= 5

    def test_zero_capacity(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 0)
        assert plan.num_annotations == 0
        assert len(plan.pinned_pages) == 0

    def test_pinned_pages_unique(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 200)
        assert len(plan.pinned_pages) == len(np.unique(plan.pinned_pages))

    def test_pinned_pages_belong_to_annotated_structures(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 100)
        allowed = set()
        structures = prepared.workload_trace.structures()
        for profile in plan.annotated:
            for layout in structures[profile.name]:
                allowed.update(range(layout.first_page,
                                     layout.first_page + layout.num_pages))
        assert set(int(p) for p in plan.pinned_pages) <= allowed

    def test_avoids_riskiest_structures(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 100,
                                avf_quantile=0.5)
        # landscape is astar's long-lived (risky) structure.
        assert "astar.landscape" not in plan.structure_names

    def test_structure_names_property(self, prepared):
        plan = plan_annotations(prepared.workload_trace, prepared.stats, 100)
        assert plan.structure_names == [s.name for s in plan.annotated]

    def test_mix_needs_more_annotations_than_homogeneous(self, prepared):
        mix_prep_wt = Workload.mix("mix1").generate(
            scale=1 / 1024, accesses_per_core=4000, seed=3
        )
        from repro.avf.page import profile_trace

        mix_stats = profile_trace(mix_prep_wt.trace, mix_prep_wt.times,
                                  footprint_pages=mix_prep_wt.footprint_pages)
        mix_plan = plan_annotations(mix_prep_wt, mix_stats, 256)
        astar_plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                      256)
        assert mix_plan.num_annotations > astar_plan.num_annotations


class TestToleranceRoundtrip:
    """Tolerance maps and annotation plans must survive the prep cache
    and the shm handoff bit-identically."""

    def test_frontier_tolerance_through_prep_cache(self, tmp_path):
        from repro.harness.runner import prepare_workload_cached

        kwargs = dict(scale=1 / 2048, accesses_per_core=600, seed=4,
                      cache_dir=tmp_path)
        first = prepare_workload_cached("kvstore", **kwargs)
        second = prepare_workload_cached("kvstore", **kwargs)
        tol_a = first.workload_trace.tolerance
        tol_b = second.workload_trace.tolerance
        assert tol_a is not None and tol_b is not None
        assert tol_a.page_class.dtype == tol_b.page_class.dtype
        assert tol_a.page_class.tobytes() == tol_b.page_class.tobytes()
        assert tol_a.weights().tobytes() == tol_b.weights().tobytes()

    def test_spec_workloads_have_no_tolerance(self, prepared):
        assert getattr(prepared.workload_trace, "tolerance", None) is None

    def test_annotation_plan_shm_roundtrip(self, prepared):
        import pickle

        from repro.config import knob_overrides
        from repro.harness import shm

        plan = plan_annotations(prepared.workload_trace, prepared.stats,
                                capacity_pages=64)
        payload = {"pinned": plan.pinned_pages,
                   "names": plan.structure_names}
        with knob_overrides(shm_handoff=True):
            item = shm.share_payload(payload, threshold=8)
        if not isinstance(item, shm.SharedPayload):
            pytest.skip("no shared memory on this platform")
        try:
            clone = pickle.loads(pickle.dumps(item)).load()
            assert clone["pinned"].tobytes() == plan.pinned_pages.tobytes()
            assert clone["names"] == plan.structure_names
        finally:
            shm.release_payload(item)

    def test_tolerance_map_shm_roundtrip_property(self):
        pytest.importorskip("hypothesis")
        import pickle

        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.config import knob_overrides
        from repro.core.annotations import TOLERANCE_CLASSES, ToleranceMap
        from repro.harness import shm

        @settings(max_examples=25, deadline=None)
        @given(st.lists(st.integers(0, len(TOLERANCE_CLASSES) - 1),
                        min_size=1, max_size=512))
        def roundtrip(classes):
            tm = ToleranceMap(
                page_class=np.array(classes, dtype=np.int8))
            with knob_overrides(shm_handoff=True):
                item = shm.share_payload({"cls": tm.page_class},
                                         threshold=8)
            if not isinstance(item, shm.SharedPayload):
                return
            try:
                clone = pickle.loads(pickle.dumps(item)).load()
                rebuilt = ToleranceMap(page_class=clone["cls"])
                assert (rebuilt.page_class.tobytes()
                        == tm.page_class.tobytes())
                assert rebuilt.weights().tobytes() == tm.weights().tobytes()
            finally:
                shm.release_payload(item)

        roundtrip()
