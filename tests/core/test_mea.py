"""Unit and property tests for the Majority Element Algorithm tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mea import MeaTracker


class TestBasics:
    def test_tracks_frequent_page(self):
        mea = MeaTracker(capacity=4)
        for _ in range(10):
            mea.record(7)
        assert 7 in mea.hot_pages()
        assert mea.count(7) == 10

    def test_capacity_bound(self):
        mea = MeaTracker(capacity=4)
        for page in range(100):
            mea.record(page)
        assert len(mea) <= 4

    def test_decrement_on_overflow(self):
        mea = MeaTracker(capacity=2)
        mea.record(0)
        mea.record(1)
        mea.record(2)  # decrements both, inserts nothing
        assert mea.count(0) == 0 or mea.count(0) == 1

    def test_hot_pages_ordered_by_count(self):
        mea = MeaTracker(capacity=4)
        for _ in range(5):
            mea.record(1)
        for _ in range(2):
            mea.record(2)
        assert mea.hot_pages()[:2] == [1, 2]

    def test_limit(self):
        mea = MeaTracker(capacity=8)
        for page in range(5):
            mea.record(page)
        assert len(mea.hot_pages(limit=3)) == 3

    def test_min_count_filters(self):
        mea = MeaTracker(capacity=8)
        mea.record(1)
        mea.record(2)
        mea.record(2)
        assert mea.hot_pages(min_count=2) == [2]

    def test_record_many(self):
        mea = MeaTracker(capacity=8)
        mea.record_many([1, 1, 2])
        assert mea.count(1) == 2
        assert mea.stream_length == 3

    def test_reset(self):
        mea = MeaTracker(capacity=4)
        mea.record(1)
        mea.reset()
        assert len(mea) == 0
        assert mea.stream_length == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MeaTracker(capacity=0)


class TestStorageCost:
    def test_paper_budget(self):
        """Sec. 6.4.2: MEA tracking <= ~100 KB plus the 64 KB remap
        table cache (total <= 164 KB)."""
        cost = MeaTracker.storage_cost_bytes(capacity=32)
        assert cost <= 164 * 1024
        assert cost >= 64 * 1024


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(st.integers(0, 20), min_size=1, max_size=400),
    capacity=st.integers(2, 16),
)
def test_majority_element_guarantee(stream, capacity):
    """Misra-Gries: any element with frequency > n/(k+1) is tracked."""
    mea = MeaTracker(capacity=capacity)
    mea.record_many(stream)
    n = len(stream)
    threshold = n / (capacity + 1)
    from collections import Counter

    for page, freq in Counter(stream).items():
        if freq > threshold:
            assert page in mea.hot_pages(), (page, freq, threshold)


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(st.integers(0, 50), min_size=1, max_size=300))
def test_capacity_never_exceeded(stream):
    mea = MeaTracker(capacity=8)
    for page in stream:
        mea.record(page)
        assert len(mea) <= 8


@settings(max_examples=30, deadline=None)
@given(stream=st.lists(st.integers(0, 10), min_size=1, max_size=200))
def test_residual_counts_underestimate_true_counts(stream):
    """Misra-Gries residual counts never exceed true frequencies."""
    from collections import Counter

    mea = MeaTracker(capacity=4)
    mea.record_many(stream)
    true = Counter(stream)
    for page in mea.hot_pages():
        assert mea.count(page) <= true[page]


class TextbookMea:
    """Literal Misra-Gries reference: decrement *every* counter on a
    non-member access when the map is full — the O(k)-per-access
    semantics that :class:`MeaTracker`'s offset formulation replaces.
    """

    def __init__(self, capacity=32):
        self.capacity = capacity
        self._counters = {}
        self.stream_length = 0

    def record(self, page):
        self.stream_length += 1
        counters = self._counters
        if page in counters:
            counters[page] += 1
        elif len(counters) < self.capacity:
            counters[page] = 1
        else:
            dead = []
            for p in counters:
                counters[p] -= 1
                if counters[p] == 0:
                    dead.append(p)
            for p in dead:
                del counters[p]

    def record_many(self, pages):
        import numpy as np

        for page in np.asarray(pages, dtype=np.int64).ravel().tolist():
            self.record(page)

    def hot_pages(self, limit=None, min_count=1):
        ranked = sorted(
            ((p, v) for p, v in self._counters.items() if v >= min_count),
            key=lambda kv: -kv[1],
        )
        pages = [page for page, _count in ranked]
        return pages[:limit] if limit is not None else pages

    def count(self, page):
        return self._counters.get(page, 0)

    def reset(self):
        self._counters.clear()
        self.stream_length = 0


@settings(max_examples=60, deadline=None)
@given(
    chunks=st.lists(
        st.lists(st.integers(0, 25), max_size=80), min_size=1, max_size=6
    ),
    capacity=st.integers(2, 12),
)
def test_offset_formulation_equals_textbook(chunks, capacity):
    """The offset/lazy-minimum tracker is *exactly* the textbook
    decrement-all algorithm: same members, same residual counts, same
    map (tie-break) order after any chunked stream."""
    fast = MeaTracker(capacity=capacity)
    slow = TextbookMea(capacity=capacity)
    for chunk in chunks:
        fast.record_many(chunk)
        slow.record_many(chunk)
        assert fast.hot_pages() == slow.hot_pages()
        assert fast.hot_pages(min_count=2) == slow.hot_pages(min_count=2)
        for page in slow.hot_pages():
            assert fast.count(page) == slow.count(page)
    assert fast.stream_length == slow.stream_length


class TestNativeKernel:
    """The compiled chunk kernel vs the pure-Python update loop."""

    def _fill(self, tracker, rng, chunks=4, size=300, span=200):
        for _ in range(chunks):
            tracker.record_many(rng.integers(0, span, size=size))

    def test_native_equals_python_fallback(self, monkeypatch):
        import numpy as np

        from repro.core import _mea_native

        if not _mea_native.available():
            pytest.skip("no C compiler in this environment")
        rng = np.random.default_rng(3)
        fast = MeaTracker(capacity=8)
        self._fill(fast, rng)
        monkeypatch.setenv("REPRO_MEA_NATIVE", "0")
        _mea_native._reset_for_tests()
        try:
            rng = np.random.default_rng(3)
            slow = MeaTracker(capacity=8)
            self._fill(slow, rng)
        finally:
            _mea_native._reset_for_tests()
        assert fast.hot_pages() == slow.hot_pages()
        assert fast.hot_pages(min_count=2) == slow.hot_pages(min_count=2)
        for page in slow.hot_pages():
            assert fast.count(page) == slow.count(page)
        assert fast.stream_length == slow.stream_length

    def test_disabled_by_env(self, monkeypatch):
        from repro.core import _mea_native

        monkeypatch.setenv("REPRO_MEA_NATIVE", "0")
        _mea_native._reset_for_tests()
        try:
            assert _mea_native.load() is None
            # The tracker still works on large chunks via the fallback.
            mea = MeaTracker(capacity=4)
            mea.record_many(list(range(10)) * 20)
            assert len(mea) <= 4
        finally:
            _mea_native._reset_for_tests()

    def test_broken_compiler_degrades_once(self, tmp_path, monkeypatch):
        from repro.core import _mea_native

        monkeypatch.setenv("CC", str(tmp_path / "does-not-exist"))
        monkeypatch.setenv("REPRO_CKERNEL_DIR", str(tmp_path / "ck"))
        monkeypatch.delenv("REPRO_MEA_NATIVE", raising=False)
        _mea_native._reset_for_tests()
        try:
            with pytest.warns(_mea_native.NativeMeaUnavailableWarning):
                assert _mea_native.load() is None
            assert _mea_native.build_error()
            # Memoised: no second warning, still None.
            assert _mea_native.load() is None
        finally:
            _mea_native._reset_for_tests()


class TestArrayTracker:
    """ArrayMeaTracker (flat-array form) vs the dict reference."""

    def _make(self):
        from repro.core.mea import ArrayMeaTracker

        return ArrayMeaTracker

    @settings(max_examples=60, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(st.integers(0, 25), max_size=80), min_size=1, max_size=6
        ),
        capacity=st.integers(2, 12),
    )
    def test_matches_dict_tracker(self, chunks, capacity):
        from repro.core.mea import ArrayMeaTracker

        ref = MeaTracker(capacity=capacity)
        arr = ArrayMeaTracker(capacity=capacity)
        for chunk in chunks:
            ref.record_many(chunk)
            arr.record_many(chunk)
            assert arr.hot_pages() == ref.hot_pages()
            assert arr.hot_pages(min_count=2) == ref.hot_pages(min_count=2)
            assert arr.hot_pages(limit=3) == ref.hot_pages(limit=3)
            for page in ref.hot_pages():
                assert arr.count(page) == ref.count(page)
            assert len(arr) == len(ref)
        assert arr.stream_length == ref.stream_length

    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(
            st.lists(st.integers(0, 25), max_size=60), min_size=1, max_size=5
        ),
        capacity=st.integers(2, 10),
    )
    def test_python_fallback_matches_native(self, chunks, capacity):
        from repro.config import knob_overrides
        from repro.core import _mea_native
        from repro.core.mea import ArrayMeaTracker

        if not _mea_native.available():
            pytest.skip("no C compiler in this environment")
        native = ArrayMeaTracker(capacity=capacity)
        for chunk in chunks:
            native.record_many(chunk)
        _mea_native._reset_for_tests()
        try:
            with knob_overrides(mea_native=False):
                fallback = ArrayMeaTracker(capacity=capacity)
                for chunk in chunks:
                    fallback.record_many(chunk)
        finally:
            _mea_native._reset_for_tests()
        assert fallback.hot_pages() == native.hot_pages()
        assert (fallback._pages[: len(fallback)].tolist()
                == native._pages[: len(native)].tolist())
        assert (fallback._counts[: len(fallback)].tolist()
                == native._counts[: len(native)].tolist())

    def test_hot_arrays_rank_and_filter(self):
        from repro.core.mea import ArrayMeaTracker

        mea = ArrayMeaTracker(capacity=8)
        mea.record_many([5, 5, 5, 9, 9, 2])
        pages, counts = mea.hot_arrays()
        assert pages.tolist() == [5, 9, 2]
        assert counts.tolist() == [3, 2, 1]
        pages2, counts2 = mea.hot_arrays(min_count=2)
        assert pages2.tolist() == [5, 9]
        assert counts2.tolist() == [3, 2]

    def test_record_and_reset(self):
        from repro.core.mea import ArrayMeaTracker

        mea = ArrayMeaTracker(capacity=4)
        mea.record(7)
        mea.record(7)
        assert mea.count(7) == 2
        assert mea.count(8) == 0
        mea.reset()
        assert len(mea) == 0
        assert mea.stream_length == 0
        with pytest.raises(ValueError):
            ArrayMeaTracker(capacity=0)
