"""Unit and property tests for the Majority Element Algorithm tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mea import MeaTracker


class TestBasics:
    def test_tracks_frequent_page(self):
        mea = MeaTracker(capacity=4)
        for _ in range(10):
            mea.record(7)
        assert 7 in mea.hot_pages()
        assert mea.count(7) == 10

    def test_capacity_bound(self):
        mea = MeaTracker(capacity=4)
        for page in range(100):
            mea.record(page)
        assert len(mea) <= 4

    def test_decrement_on_overflow(self):
        mea = MeaTracker(capacity=2)
        mea.record(0)
        mea.record(1)
        mea.record(2)  # decrements both, inserts nothing
        assert mea.count(0) == 0 or mea.count(0) == 1

    def test_hot_pages_ordered_by_count(self):
        mea = MeaTracker(capacity=4)
        for _ in range(5):
            mea.record(1)
        for _ in range(2):
            mea.record(2)
        assert mea.hot_pages()[:2] == [1, 2]

    def test_limit(self):
        mea = MeaTracker(capacity=8)
        for page in range(5):
            mea.record(page)
        assert len(mea.hot_pages(limit=3)) == 3

    def test_min_count_filters(self):
        mea = MeaTracker(capacity=8)
        mea.record(1)
        mea.record(2)
        mea.record(2)
        assert mea.hot_pages(min_count=2) == [2]

    def test_record_many(self):
        mea = MeaTracker(capacity=8)
        mea.record_many([1, 1, 2])
        assert mea.count(1) == 2
        assert mea.stream_length == 3

    def test_reset(self):
        mea = MeaTracker(capacity=4)
        mea.record(1)
        mea.reset()
        assert len(mea) == 0
        assert mea.stream_length == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MeaTracker(capacity=0)


class TestStorageCost:
    def test_paper_budget(self):
        """Sec. 6.4.2: MEA tracking <= ~100 KB plus the 64 KB remap
        table cache (total <= 164 KB)."""
        cost = MeaTracker.storage_cost_bytes(capacity=32)
        assert cost <= 164 * 1024
        assert cost >= 64 * 1024


@settings(max_examples=40, deadline=None)
@given(
    stream=st.lists(st.integers(0, 20), min_size=1, max_size=400),
    capacity=st.integers(2, 16),
)
def test_majority_element_guarantee(stream, capacity):
    """Misra-Gries: any element with frequency > n/(k+1) is tracked."""
    mea = MeaTracker(capacity=capacity)
    mea.record_many(stream)
    n = len(stream)
    threshold = n / (capacity + 1)
    from collections import Counter

    for page, freq in Counter(stream).items():
        if freq > threshold:
            assert page in mea.hot_pages(), (page, freq, threshold)


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(st.integers(0, 50), min_size=1, max_size=300))
def test_capacity_never_exceeded(stream):
    mea = MeaTracker(capacity=8)
    for page in stream:
        mea.record(page)
        assert len(mea) <= 8


@settings(max_examples=30, deadline=None)
@given(stream=st.lists(st.integers(0, 10), min_size=1, max_size=200))
def test_residual_counts_underestimate_true_counts(stream):
    """Misra-Gries residual counts never exceed true frequencies."""
    from collections import Counter

    mea = MeaTracker(capacity=4)
    mea.record_many(stream)
    true = Counter(stream)
    for page in mea.hot_pages():
        assert mea.count(page) <= true[page]
