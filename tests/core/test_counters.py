"""Unit tests for hardware activity counters."""

import numpy as np
import pytest

from repro.core.counters import CounterCost, FullCounters, SaturatingCounter


class TestSaturatingCounter:
    def test_increments(self):
        c = SaturatingCounter(bits=8)
        c.increment()
        c.increment(5)
        assert c.value == 6

    def test_saturates(self):
        c = SaturatingCounter(bits=2)
        for _ in range(10):
            c.increment()
        assert c.value == 3

    def test_reset(self):
        c = SaturatingCounter()
        c.increment(10)
        c.reset()
        assert c.value == 0

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)


class TestFullCounters:
    def test_record_reads_and_writes_separately(self):
        fc = FullCounters()
        fc.record(1, is_write=False)
        fc.record(1, is_write=False)
        fc.record(1, is_write=True)
        assert fc.reads(1) == 2
        assert fc.writes(1) == 1
        assert fc.hotness(1) == 3

    def test_untouched_page_zero(self):
        fc = FullCounters()
        assert fc.hotness(99) == 0
        assert fc.write_ratio(99) == 0.0

    def test_write_ratio(self):
        fc = FullCounters()
        for _ in range(4):
            fc.record(0, True)
        for _ in range(2):
            fc.record(0, False)
        assert fc.write_ratio(0) == pytest.approx(2.0)

    def test_write_ratio_no_reads_safe(self):
        fc = FullCounters()
        fc.record(0, True)
        assert fc.write_ratio(0) == 1.0

    def test_saturation(self):
        fc = FullCounters(counter_bits=4)
        for _ in range(100):
            fc.record(0, False)
        assert fc.reads(0) == 15

    def test_record_batch_equals_scalar(self):
        rng = np.random.default_rng(0)
        pages = rng.integers(0, 20, 500)
        writes = rng.random(500) < 0.4
        batch = FullCounters()
        batch.record_batch(pages, writes)
        scalar = FullCounters()
        for p, w in zip(pages, writes):
            scalar.record(int(p), bool(w))
        assert batch.snapshot() == scalar.snapshot()

    def test_batch_saturates_too(self):
        fc = FullCounters(counter_bits=4)
        fc.record_batch(np.zeros(100, dtype=np.int64),
                        np.zeros(100, dtype=bool))
        assert fc.reads(0) == 15

    def test_touched_pages(self):
        fc = FullCounters()
        fc.record(1, True)
        fc.record(2, False)
        assert sorted(fc.touched_pages()) == [1, 2]

    def test_reset(self):
        fc = FullCounters()
        fc.record(0, True)
        fc.reset()
        assert fc.touched_pages() == []

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            FullCounters(counter_bits=0)


class TestStorageCost:
    def test_paper_numbers_17gb_hma(self):
        """Sec. 6.3: 16 bits x 4.25M pages = 8.5 MB total FC storage."""
        pages = (17 << 30) // 4096
        cost = FullCounters.storage_cost(pages)
        assert cost.total_mb == pytest.approx(8.5, rel=0.01)

    def test_perf_scheme_half_cost(self):
        pages = (17 << 30) // 4096
        cost = FullCounters.storage_cost(pages, counters_per_page=1)
        assert cost.total_mb == pytest.approx(4.25, rel=0.01)

    def test_cost_dataclass(self):
        cost = CounterCost(bits_per_page=16, pages_tracked=1024)
        assert cost.total_bytes == 2048
