"""Unit tests for the MemPod-style pod-clustered migration."""

import numpy as np
import pytest

from repro.core.mempod import MemPodMigration
from repro.dram.hma import FAST, HeterogeneousMemory


@pytest.fixture
def hma(tiny_config):
    hma = HeterogeneousMemory(tiny_config)
    hma.install_placement(range(16), range(64))
    return hma


def observe(mech, pages):
    arr = np.asarray(pages, dtype=np.int64)
    mech.observe_chunk(arr, np.zeros(len(arr), dtype=bool))


class TestPods:
    def test_pod_assignment_by_hash(self):
        mech = MemPodMigration(num_pods=4)
        assert mech.pod_of(0) == 0
        assert mech.pod_of(5) == 1
        assert mech.pod_of(7) == 3

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MemPodMigration(num_pods=0)
        with pytest.raises(ValueError):
            MemPodMigration(subintervals_per_interval=0)


class TestMigrationPolicy:
    def test_promotes_hot_page(self, hma):
        mech = MemPodMigration(num_pods=4)
        observe(mech, [20] * 40)
        to_fast, _ = mech.plan_sub(hma)
        assert 20 in to_fast

    def test_victims_from_same_pod_only(self, hma):
        """The defining MemPod restriction: a hot page can only
        displace residents of its own pod."""
        mech = MemPodMigration(num_pods=4)
        # Pod 0 residents get some traffic (so they are victims by
        # recency, not by absence); page 20 (pod 0) becomes very hot.
        traffic = [20] * 60
        for p in range(16):
            traffic += [p] * 2
        observe(mech, traffic)
        to_fast, to_slow = mech.plan_sub(hma)
        assert 20 in to_fast
        assert all(mech.pod_of(v) == 0 for v in to_slow)

    def test_capacity_respected_under_pressure(self, hma):
        mech = MemPodMigration(num_pods=4)
        traffic = []
        for page in range(16, 64):
            traffic += [page] * 10
        observe(mech, traffic)
        to_fast, to_slow = mech.plan_sub(hma)
        hma.migrate_pairs(to_fast, to_slow, now=0.0)
        assert hma.fast_occupancy() <= hma.fast_capacity_pages

    def test_plan_clears_recency(self, hma):
        mech = MemPodMigration(num_pods=2)
        observe(mech, [3] * 5)
        mech.plan(hma)
        assert mech._recent == {}

    def test_hw_cost_scales_with_pods(self):
        one = MemPodMigration(num_pods=1)
        four = MemPodMigration(num_pods=4)
        assert (four.hardware_cost_bytes(1000, 100)
                == 4 * one.hardware_cost_bytes(1000, 100))


class TestEndToEnd:
    def test_runs_through_engine(self, tiny_config):
        from repro.sim.engine import replay
        from repro.trace.record import Trace
        from repro.config import PAGE_SIZE

        rng = np.random.default_rng(0)
        n = 2000
        trace = Trace(
            core=rng.integers(0, 4, n).astype(np.uint16),
            address=(rng.integers(0, 48, n) * PAGE_SIZE).astype(np.uint64),
            is_write=rng.random(n) < 0.3,
            gap=np.full(n, 20, dtype=np.uint32),
        )
        times = np.sort(rng.random(n))
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement(range(16), range(48))
        result = replay(tiny_config, hma, trace, times,
                        mechanism=MemPodMigration(num_pods=4),
                        num_intervals=4)
        assert result.total_seconds > 0
        assert hma.fast_occupancy() <= hma.fast_capacity_pages
