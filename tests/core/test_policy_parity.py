"""Bit-identity of the array policy kernels against the sparse oracle.

The ``array`` kernels (dense counters, vectorised planners, windowed
ACE tracking) must reproduce the retained ``sparse`` reference
*exactly*: same migration plans in the same order, same counter
snapshots, on randomized traces including counter saturation and
empty-interval edge cases.
"""

import numpy as np
import pytest

from repro.core.counters import (
    ArrayFullCounters,
    FullCounters,
    POLICY_KERNELS,
    check_parallel_arrays,
    make_counters,
    resolve_policy_kernel,
)
from repro.core.migration import (
    CrossCountersMigration,
    OracleRiskMigration,
    PerformanceFocusedMigration,
    ReliabilityAwareFCMigration,
)
from repro.dram.hma import FAST, HeterogeneousMemory


# ---------------------------------------------------------------------------
# Kernel resolution
# ---------------------------------------------------------------------------

class TestKernelResolution:
    def test_default_is_array(self, monkeypatch):
        monkeypatch.delenv("REPRO_POLICY_KERNEL", raising=False)
        assert resolve_policy_kernel() == "array"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_KERNEL", "array")
        assert resolve_policy_kernel("sparse") == "sparse"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLICY_KERNEL", "sparse")
        assert isinstance(make_counters(), FullCounters)
        monkeypatch.setenv("REPRO_POLICY_KERNEL", "array")
        assert isinstance(make_counters(), ArrayFullCounters)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="policy kernel"):
            resolve_policy_kernel("vectorised")

    def test_mechanisms_resolve_kernel(self):
        for kernel in POLICY_KERNELS:
            mech = ReliabilityAwareFCMigration(policy_kernel=kernel)
            assert mech.policy_kernel == kernel
            assert mech.counters.kind == kernel


# ---------------------------------------------------------------------------
# Parallel-array validation
# ---------------------------------------------------------------------------

class TestValidation:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match=r"\(3,\).*\(2,\)"):
            check_parallel_arrays("x", np.zeros(3), np.zeros(2))

    def test_non_1d_raises(self):
        with pytest.raises(ValueError, match="1-D"):
            check_parallel_arrays("x", np.zeros((3, 2)), np.zeros(3))

    def test_scalar_raises(self):
        with pytest.raises(ValueError):
            check_parallel_arrays("x", np.zeros(3), True)

    def test_none_entries_skipped(self):
        check_parallel_arrays("x", np.zeros(3), None, np.zeros(3))

    @pytest.mark.parametrize("kernel", POLICY_KERNELS)
    def test_record_batch_validates(self, kernel):
        counters = make_counters(kernel=kernel)
        with pytest.raises(ValueError, match="record_batch"):
            counters.record_batch(np.array([1, 2, 3]),
                                  np.array([True, False]))

    @pytest.mark.parametrize("kernel", POLICY_KERNELS)
    def test_observe_chunk_validates(self, kernel):
        for mech in (
            PerformanceFocusedMigration(policy_kernel=kernel),
            ReliabilityAwareFCMigration(policy_kernel=kernel),
            CrossCountersMigration(policy_kernel=kernel),
            OracleRiskMigration(policy_kernel=kernel),
        ):
            with pytest.raises(ValueError, match="observe_chunk"):
                mech.observe_chunk(np.array([1, 2]), np.array([True]))

    @pytest.mark.parametrize("kernel", POLICY_KERNELS)
    def test_observe_chunk_validates_times(self, kernel):
        mech = PerformanceFocusedMigration(policy_kernel=kernel)
        with pytest.raises(ValueError, match="observe_chunk"):
            mech.observe_chunk(np.array([1, 2]), np.array([True, False]),
                               times=np.array([0.5]))


# ---------------------------------------------------------------------------
# Counter backend parity
# ---------------------------------------------------------------------------

class TestCounterParity:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("bits", [4, 8])
    def test_random_interleavings_identical(self, seed, bits):
        rng = np.random.default_rng(seed)
        sparse = FullCounters(counter_bits=bits)
        dense = ArrayFullCounters(counter_bits=bits)
        for _ in range(rng.integers(2, 8)):
            n = int(rng.integers(0, 200))
            pages = rng.integers(0, 40, size=n)
            writes = rng.random(n) < 0.4
            if rng.random() < 0.3 and n:
                page = int(pages[0])
                w = bool(writes[0])
                sparse.record(page, w)
                dense.record(page, w)
            else:
                sparse.record_batch(pages, writes)
                dense.record_batch(pages, writes)
        assert sparse.touched_pages() == dense.touched_pages()
        assert sparse.snapshot() == dense.snapshot()
        sp, sr, sw = sparse.touched_arrays()
        dp, dr, dw = dense.touched_arrays()
        assert np.array_equal(sp, dp)
        assert np.array_equal(sr, dr)
        assert np.array_equal(sw, dw)
        probe = np.asarray(sorted({int(p) for p in sp} | {0, 999}),
                           dtype=np.int64)
        assert np.array_equal(sparse.hotness_of(probe),
                              dense.hotness_of(probe))

    def test_saturation_is_per_batch(self):
        # Both backends add the whole batch count, then clip: a single
        # huge batch saturates identically to the scalar reference.
        sparse = FullCounters(counter_bits=4)
        dense = ArrayFullCounters(counter_bits=4)
        pages = np.zeros(100, dtype=np.int64)
        writes = np.zeros(100, dtype=bool)
        sparse.record_batch(pages, writes)
        dense.record_batch(pages, writes)
        assert sparse.reads(0) == dense.reads(0) == 15

    def test_reset_clears_both(self):
        for counters in (FullCounters(), ArrayFullCounters()):
            counters.record_batch(np.array([5, 6]), np.array([True, False]))
            counters.reset()
            assert counters.touched_pages() == []
            assert counters.hotness(5) == 0


# ---------------------------------------------------------------------------
# Mechanism plan parity on randomized traces
# ---------------------------------------------------------------------------

def _fresh_mechanism(name, kernel):
    if name == "perf":
        return PerformanceFocusedMigration(counter_bits=4,
                                           policy_kernel=kernel)
    if name == "fc":
        return ReliabilityAwareFCMigration(counter_bits=4,
                                           policy_kernel=kernel)
    if name == "cc":
        return CrossCountersMigration(counter_bits=4,
                                      subintervals_per_interval=4,
                                      policy_kernel=kernel)
    return OracleRiskMigration(policy_kernel=kernel)


def _drive(name, kernel, config, seed, num_pages=64, intervals=6):
    """Feed a seeded random trace through one mechanism; return plans."""
    rng = np.random.default_rng(seed)
    mech = _fresh_mechanism(name, kernel)
    hma = HeterogeneousMemory(config)
    all_pages = list(range(num_pages))
    hma.install_placement(all_pages[: hma.fast_capacity_pages // 2],
                          all_pages)
    sub = mech.subintervals_per_interval
    clock = 0.0
    plans = []
    for chunk in range(intervals * sub):
        # Zipf-flavoured chunk; occasionally empty (empty-interval edge).
        n = 0 if rng.random() < 0.15 else int(rng.integers(1, 400))
        raw = rng.zipf(1.3, size=n) if n else np.empty(0, dtype=np.int64)
        pages = np.minimum(raw, num_pages) - 1
        writes = rng.random(n) < 0.4
        times = np.sort(clock + rng.random(n))
        clock += 1.0
        if n:
            mech.observe_chunk(pages, writes, times=times)
        if (chunk + 1) % sub == 0:
            to_fast, to_slow = mech.plan(hma)
            if sub > 1:
                f2, s2 = mech.plan_sub(hma)
                to_fast, to_slow = (list(to_fast) + list(f2),
                                    list(to_slow) + list(s2))
        else:
            to_fast, to_slow = mech.plan_sub(hma)
        plans.append((list(to_fast), list(to_slow)))
        if to_fast or to_slow:
            hma.migrate_pairs(to_fast, to_slow, clock)
    plans.append(sorted(hma.pages_in(FAST)))
    return plans


@pytest.mark.parametrize("name", ["perf", "fc", "cc", "oracle"])
@pytest.mark.parametrize("seed", range(6))
def test_plans_bit_identical(name, seed, tiny_config):
    sparse = _drive(name, "sparse", tiny_config, seed)
    dense = _drive(name, "array", tiny_config, seed)
    assert sparse == dense


@pytest.mark.parametrize("name", ["perf", "fc", "cc", "oracle"])
def test_plan_with_no_observations(name, tiny_config):
    """An interval with zero traffic plans identically (and sanely)."""
    results = []
    for kernel in POLICY_KERNELS:
        mech = _fresh_mechanism(name, kernel)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([0, 1], [0, 1, 2, 3])
        if name == "oracle":
            mech.observe_chunk(np.empty(0, dtype=np.int64),
                               np.empty(0, dtype=bool),
                               times=np.empty(0))
        results.append((mech.plan(hma), mech.plan_sub(hma)))
    assert results[0] == results[1]


def test_fixed_threshold_parity(tiny_config):
    plans = []
    for kernel in POLICY_KERNELS:
        mech = PerformanceFocusedMigration(fixed_threshold=2,
                                           policy_kernel=kernel)
        hma = HeterogeneousMemory(tiny_config)
        hma.install_placement([0, 1], list(range(8)))
        pages = np.array([2, 2, 2, 3, 3, 3, 4, 0])
        mech.observe_chunk(pages, np.zeros(len(pages), dtype=bool))
        plans.append(mech.plan(hma))
    assert plans[0] == plans[1]
