"""Unit tests for hotness-risk quadrant analysis (Figure 4)."""

import numpy as np
import pytest

from repro.avf.page import PageStats
from repro.core.quadrant import quadrant_split


def stats(footprint=None):
    return PageStats(
        pages=np.array([0, 1, 2, 3]),
        reads=np.array([100, 90, 5, 2]),
        writes=np.array([0, 0, 0, 0]),
        avf=np.array([0.9, 0.1, 0.8, 0.05]),
        footprint_pages=footprint or 4,
    )


class TestQuadrantSplit:
    def test_partition_is_exhaustive(self):
        q = quadrant_split(stats(), "wl")
        assert (q.hot_high_risk + q.hot_low_risk + q.cold_high_risk
                + q.cold_low_risk) == 4

    def test_classification(self):
        q = quadrant_split(stats())
        # Mean hotness = 49.25, mean AVF = 0.4625.
        assert q.hot_high_risk == 1   # page 0
        assert q.hot_low_risk == 1    # page 1
        assert q.cold_high_risk == 1  # page 2
        assert q.cold_low_risk == 1   # page 3

    def test_untouched_counted_separately(self):
        q = quadrant_split(stats(footprint=10))
        assert q.untouched == 6
        assert q.total_pages == 10

    def test_hot_low_risk_fraction(self):
        q = quadrant_split(stats(footprint=10))
        assert q.hot_low_risk_fraction == pytest.approx(0.1)

    def test_hot_low_risk_bytes(self):
        q = quadrant_split(stats())
        assert q.hot_low_risk_bytes == 4096

    def test_fractions_sum_to_one(self):
        q = quadrant_split(stats(footprint=10))
        assert sum(q.fractions().values()) == pytest.approx(1.0)

    def test_untouched_are_cold_low_risk(self):
        q = quadrant_split(stats(footprint=10))
        fr = q.fractions()
        assert fr["cold_low_risk"] == pytest.approx((1 + 6) / 10)

    def test_workload_label(self):
        assert quadrant_split(stats(), "mix1").workload == "mix1"

    def test_empty_stats(self):
        empty = PageStats(
            pages=np.empty(0, dtype=np.int64),
            reads=np.empty(0, dtype=np.int64),
            writes=np.empty(0, dtype=np.int64),
            avf=np.empty(0),
            footprint_pages=5,
        )
        q = quadrant_split(empty)
        assert q.untouched == 5
        assert q.hot_low_risk == 0


class TestOnWorkloads:
    def test_paper_range_on_real_workloads(self, mix1_prep, mcf_prep):
        """Fig. 4: hot & low-risk share sits in a meaningful band."""
        for prep in (mix1_prep, mcf_prep):
            q = quadrant_split(prep.stats, prep.name)
            assert 0.03 < q.hot_low_risk_fraction < 0.45

    def test_all_quadrants_populated(self, mix1_prep):
        q = quadrant_split(mix1_prep.stats)
        assert q.hot_high_risk > 0
        assert q.hot_low_risk > 0
        assert q.cold_high_risk > 0
        assert q.cold_low_risk > 0
