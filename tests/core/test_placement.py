"""Unit tests for static placement policies."""

import numpy as np
import pytest

from repro.avf.page import PageStats
from repro.core.placement import (
    STATIC_POLICIES,
    BalancedPlacement,
    DdrOnlyPlacement,
    HotFractionPlacement,
    PerformanceFocusedPlacement,
    ReliabilityFocusedPlacement,
    Wr2RatioPlacement,
    WrRatioPlacement,
)


def stats():
    """Six pages spanning the hotness-risk quadrants.

    page: 0      1      2      3      4      5
    hot:  100    90     80     10     8      2
    avf:  0.9    0.1    0.8    0.05   0.7    0.01
    wr:   0.0    1.0    0.125  2.0    0.0    0.5
    """
    return PageStats(
        pages=np.array([0, 1, 2, 3, 4, 5]),
        reads=np.array([100, 45, 72, 3, 8, 1]),
        writes=np.array([0, 45, 9, 6, 0, 1]),
        avf=np.array([0.9, 0.1, 0.8, 0.05, 0.7, 0.01]),
    )


class TestDdrOnly:
    def test_selects_nothing(self):
        assert len(DdrOnlyPlacement().select_fast_pages(stats(), 4)) == 0


class TestPerformanceFocused:
    def test_top_hot(self):
        chosen = PerformanceFocusedPlacement().select_fast_pages(stats(), 3)
        assert set(chosen) == {0, 1, 2}

    def test_capacity_zero(self):
        assert len(PerformanceFocusedPlacement().select_fast_pages(stats(), 0)) == 0

    def test_capacity_exceeds_footprint(self):
        chosen = PerformanceFocusedPlacement().select_fast_pages(stats(), 100)
        assert len(chosen) == 6


class TestReliabilityFocused:
    def test_lowest_avf_first(self):
        chosen = ReliabilityFocusedPlacement().select_fast_pages(stats(), 2)
        assert set(chosen) == {5, 3}

    def test_hotness_blind(self):
        # Page 1 is hot and low-risk but 3/5 have lower AVF still.
        chosen = ReliabilityFocusedPlacement().select_fast_pages(stats(), 3)
        assert set(chosen) == {5, 3, 1}


class TestBalanced:
    def test_only_hot_and_low_risk(self):
        # Mean hotness = 48.3, mean AVF = 0.426: quadrant = page 1 only.
        chosen = BalancedPlacement().select_fast_pages(stats(), 4)
        assert set(chosen) == {1}

    def test_underfills_rather_than_pollute(self):
        chosen = BalancedPlacement().select_fast_pages(stats(), 6)
        assert len(chosen) < 6

    def test_empty_quadrant(self):
        s = PageStats(
            pages=np.array([0, 1]),
            reads=np.array([10, 10]),
            writes=np.array([0, 0]),
            avf=np.array([0.5, 0.5]),
        )
        assert len(BalancedPlacement().select_fast_pages(s, 2)) == 0


class TestWrRatio:
    def test_top_write_ratio(self):
        chosen = WrRatioPlacement().select_fast_pages(stats(), 2)
        # Highest Wr/Rd: page 3 (2.0), then page 1 (1.0).
        assert list(chosen) == [3, 1]


class TestWr2Ratio:
    def test_weights_absolute_writes(self):
        chosen = Wr2RatioPlacement().select_fast_pages(stats(), 1)
        # Wr^2/Rd: page 1 = 45, page 3 = 12 -> page 1 wins despite
        # its lower Wr ratio (the paper's p1/p2 example).
        assert list(chosen) == [1]

    def test_paper_example(self):
        """Sec. 5.4.2: p1 = 4:1, p2 = 400:200; Wr favours p1, Wr^2
        favours p2."""
        s = PageStats(
            pages=np.array([1, 2]),
            reads=np.array([1, 200]),
            writes=np.array([4, 400]),
            avf=np.array([0.2, 0.2]),
        )
        assert list(WrRatioPlacement().select_fast_pages(s, 1)) == [1]
        assert list(Wr2RatioPlacement().select_fast_pages(s, 1)) == [2]


class TestHotFraction:
    def test_fraction_of_capacity(self):
        chosen = HotFractionPlacement(0.5).select_fast_pages(stats(), 4)
        assert len(chosen) == 2
        assert set(chosen) == {0, 1}

    def test_zero_fraction(self):
        assert len(HotFractionPlacement(0.0).select_fast_pages(stats(), 4)) == 0

    def test_full_fraction_equals_perf(self):
        full = HotFractionPlacement(1.0).select_fast_pages(stats(), 3)
        perf = PerformanceFocusedPlacement().select_fast_pages(stats(), 3)
        assert list(full) == list(perf)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            HotFractionPlacement(1.5)

    def test_monotone_in_fraction(self):
        sizes = [
            len(HotFractionPlacement(f).select_fast_pages(stats(), 6))
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert sizes == sorted(sizes)


class TestRegistry:
    def test_contains_all_named_policies(self):
        assert set(STATIC_POLICIES) == {
            "ddr-only", "perf-focused", "rel-focused", "balanced",
            "wr-ratio", "wr2-ratio",
        }

    def test_capacity_respected_by_all(self):
        for policy in STATIC_POLICIES.values():
            chosen = policy.select_fast_pages(stats(), 2)
            assert len(chosen) <= 2
            assert len(np.unique(chosen)) == len(chosen)
