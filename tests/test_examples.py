"""Every bundled example must at least compile and expose a main()."""

import ast
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    tree = ast.parse(path.read_text())
    # Each example defines main() and a __main__ guard.
    functions = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in functions
    assert '__main__' in path.read_text()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_module_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree)
