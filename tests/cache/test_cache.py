"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.config import CacheConfig


def make_cache(size=1024, assoc=2):
    return Cache(CacheConfig(size_bytes=size, associativity=assoc))


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.access(0, False).hit
        assert c.access(0, False).hit

    def test_stats(self):
        c = make_cache()
        c.access(0, False)
        c.access(0, False)
        c.access(1, False)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2
        assert c.stats.hit_rate == pytest.approx(1 / 3)
        assert c.stats.miss_rate == pytest.approx(2 / 3)

    def test_contains(self):
        c = make_cache()
        c.access(5, False)
        assert c.contains(5)
        assert not c.contains(6)

    def test_different_sets_do_not_conflict(self):
        c = make_cache(size=1024, assoc=2)  # 8 sets
        for line in range(8):
            c.access(line, False)
        assert all(c.contains(line) for line in range(8))


class TestLru:
    def test_eviction_order_is_lru(self):
        c = make_cache(size=512, assoc=2)  # 4 sets
        # Three lines mapping to set 0: 0, 4, 8.
        c.access(0, False)
        c.access(4, False)
        r = c.access(8, False)
        assert r.evicted_line == 0

    def test_access_refreshes_recency(self):
        c = make_cache(size=512, assoc=2)
        c.access(0, False)
        c.access(4, False)
        c.access(0, False)  # 0 becomes MRU
        r = c.access(8, False)
        assert r.evicted_line == 4


class TestWriteback:
    def test_clean_eviction_no_writeback(self):
        c = make_cache(size=512, assoc=1)  # 8 direct-mapped sets
        c.access(0, False)
        r = c.access(8, False)  # same set as line 0
        assert r.evicted_line == 0
        assert not r.writeback

    def test_dirty_eviction_writes_back(self):
        c = make_cache(size=512, assoc=1)
        c.access(0, True)
        r = c.access(8, False)
        assert r.writeback
        assert c.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        c = make_cache(size=512, assoc=1)
        c.access(0, False)
        c.access(0, True)
        assert c.is_dirty(0)

    def test_dirty_bit_sticky_across_reads(self):
        c = make_cache(size=512, assoc=1)
        c.access(0, True)
        c.access(0, False)
        assert c.is_dirty(0)

    def test_invalidate_returns_dirtiness(self):
        c = make_cache()
        c.access(0, True)
        assert c.invalidate(0) is True
        assert not c.contains(0)
        assert c.invalidate(0) is False

    def test_flush_returns_dirty_lines(self):
        c = make_cache(size=1024, assoc=2)
        c.access(0, True)
        c.access(1, False)
        dirty = c.flush()
        assert dirty == [0]
        assert c.occupancy() == 0

    def test_no_write_allocate(self):
        cfg = CacheConfig(size_bytes=512, associativity=1,
                          write_allocate=False)
        c = Cache(cfg)
        r = c.access(0, True)
        assert not r.hit
        assert not c.contains(0)


class TestResidency:
    def test_resident_lines_roundtrip(self):
        c = make_cache(size=1024, assoc=2)
        lines = [0, 3, 9, 17]
        for line in lines:
            c.access(line, False)
        assert sorted(c.resident_lines()) == sorted(lines)

    def test_occupancy(self):
        c = make_cache(size=1024, assoc=2)
        for line in range(5):
            c.access(line, False)
        assert c.occupancy() == 5


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 200), st.booleans()),
                min_size=1, max_size=300))
def test_cache_capacity_invariant(accesses):
    """Occupancy never exceeds sets x associativity, and every resident
    line was accessed at some point."""
    c = make_cache(size=512, assoc=2)
    seen = set()
    for line, is_write in accesses:
        c.access(line, is_write)
        seen.add(line)
        assert c.occupancy() <= c.num_sets * c.associativity
    assert set(c.resident_lines()) <= seen


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 100), st.booleans()),
                min_size=1, max_size=200))
def test_most_recent_line_always_resident(accesses):
    """Write-allocate LRU: the last accessed line is always resident."""
    c = make_cache(size=512, assoc=2)
    for line, is_write in accesses:
        c.access(line, is_write)
        assert c.contains(line)
