"""Unit tests for the cache hierarchy and the Moola-style trace filter."""

import numpy as np
import pytest

from repro.cache.hierarchy import CacheHierarchy, filter_trace
from repro.config import LINE_SIZE, CacheConfig, HierarchyConfig
from repro.trace.record import Trace, TraceRecord


def small_hierarchy(num_cores=2):
    return CacheHierarchy(
        HierarchyConfig(
            l1i=CacheConfig(size_bytes=512, associativity=2),
            l1d=CacheConfig(size_bytes=512, associativity=2),
            l2=CacheConfig(size_bytes=2048, associativity=2),
        ),
        num_cores=num_cores,
    )


def trace_of(entries):
    """entries: list of (core, line, is_write, gap)."""
    return Trace.from_records([
        TraceRecord(core=c, address=line * LINE_SIZE, is_write=w,
                    gap_instructions=g)
        for c, line, w, g in entries
    ])


class TestHierarchy:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            small_hierarchy(0)

    def test_first_access_misses_to_memory(self):
        h = small_hierarchy()
        residual = h.access(0, 0, False)
        assert residual == [(0, False)]

    def test_l1_hit_is_fully_filtered(self):
        h = small_hierarchy()
        h.access(0, 0, False)
        assert h.access(0, 0, False) == []

    def test_l2_shared_across_cores(self):
        h = small_hierarchy()
        h.access(0, 0, False)
        # Core 1 misses its private L1 but hits the shared L2.
        assert h.access(1, 0, False) == []

    def test_l1_private_per_core(self):
        h = small_hierarchy()
        h.access(0, 0, False)
        assert h.l1d[0].contains(0)
        assert not h.l1d[1].contains(0)

    def test_instruction_accesses_use_l1i(self):
        h = small_hierarchy()
        h.access(0, 0, False, is_instruction=True)
        assert h.l1i[0].contains(0)
        assert not h.l1d[0].contains(0)

    def test_dirty_l2_eviction_reaches_memory(self):
        h = small_hierarchy()
        l2_sets = h.l2.num_sets
        # Write a line, then evict it from both L1 and L2 by conflicts.
        h.access(0, 0, True)
        residuals = []
        line = l2_sets
        # Fill the L2 set of line 0 until it evicts the dirty line.
        for k in range(1, 4):
            residuals.extend(h.access(0, k * l2_sets, False))
        writes = [r for r in residuals if r[1]]
        assert (0, True) in writes

    def test_flush_writes_back_dirty(self):
        h = small_hierarchy()
        h.access(0, 0, True)
        flushed = h.flush()
        assert (0, True) in flushed

    def test_stats_keys(self):
        h = small_hierarchy()
        stats = h.stats()
        assert {"l2", "l1i0", "l1d0", "l1i1", "l1d1"} <= set(stats)


class TestFilterTrace:
    def test_hits_removed(self):
        h = small_hierarchy()
        t = trace_of([(0, 0, False, 10), (0, 0, False, 10), (0, 0, False, 10)])
        out = filter_trace(t, h)
        assert len(out) == 1

    def test_gap_accumulates_over_filtered_hits(self):
        h = small_hierarchy()
        t = trace_of([
            (0, 0, False, 10),   # miss -> memory, gap 10
            (0, 0, False, 20),   # hit, filtered
            (0, 99, False, 30),  # miss -> carries 20 + 1 + 30 + 1 - 1
        ])
        out = filter_trace(t, h)
        assert len(out) == 2
        assert int(out.gap[0]) == 10
        # Gap of second residual = hits' instructions + own gap.
        assert int(out.gap[1]) == 20 + 1 + 30

    def test_instruction_totals_preserved(self):
        h = small_hierarchy()
        entries = [(0, i % 3, False, 7) for i in range(30)]
        t = trace_of(entries)
        out = filter_trace(t, h)
        # Residual trace keeps all instructions except those trailing
        # the last residual request.
        assert out.total_instructions <= t.total_instructions
        assert out.total_instructions >= t.total_instructions - 8 * 30

    def test_writeback_requests_marked_writes(self):
        h = small_hierarchy(num_cores=1)
        l2_sets = h.l2.num_sets
        entries = [(0, 0, True, 1)]
        entries += [(0, k * l2_sets, False, 1) for k in range(1, 4)]
        out = filter_trace(trace_of(entries), h)
        assert out.is_write.sum() >= 1

    def test_flush_at_end(self):
        h = small_hierarchy(num_cores=1)
        t = trace_of([(0, 0, True, 1)])
        out = filter_trace(t, h, flush_at_end=True)
        # The dirty line flushes to memory as a write.
        writes = out.is_write[np.asarray(out.lines) == 0]
        assert writes.any()

    def test_mpki_increases_after_filtering(self):
        """Cache filtering removes requests but keeps instructions, so
        main-memory MPKI is lower than CPU MPKI."""
        h = small_hierarchy(num_cores=1)
        entries = [(0, i % 4, False, 3) for i in range(100)]
        entries.append((0, 50, False, 3))  # final miss collects the gaps
        t = trace_of(entries)
        out = filter_trace(t, h)
        assert out.mpki() < t.mpki()
