"""Property tests: sparse vs array cache-filter kernels, bit-exact.

The ``array`` kernel (compiled C or fused Python,
``repro.cache.filter_array``) must reproduce the per-access ``sparse``
reference loop exactly: same residual trace (cores, lines, writes,
gaps), same final cache contents *and recency order*, same stats —
over random hierarchies including write-through / no-write-allocate
configurations, carried-over state, and the flush-at-end tail.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import (
    CacheHierarchy,
    filter_trace,
    resolve_cache_kernel,
)
from repro.config import (
    LINE_SIZE,
    CacheConfig,
    HierarchyConfig,
    knob_overrides,
)
from repro.sim import _ckernel
from repro.trace.record import Trace


def hierarchy_strategy():
    def build(l1_sets_log, l1_assoc, l2_sets_log, l2_assoc, wb, wa, cores):
        l1_size = (1 << l1_sets_log) * l1_assoc * LINE_SIZE
        l2_size = (1 << l2_sets_log) * l2_assoc * LINE_SIZE
        config = HierarchyConfig(
            l1i=CacheConfig(size_bytes=l1_size, associativity=l1_assoc),
            l1d=CacheConfig(size_bytes=l1_size, associativity=l1_assoc,
                            write_back=wb, write_allocate=wa),
            l2=CacheConfig(size_bytes=l2_size, associativity=l2_assoc,
                           write_back=wb, write_allocate=wa),
        )
        return config, cores

    return st.builds(
        build,
        st.integers(1, 4), st.integers(1, 4),
        st.integers(2, 5), st.integers(1, 4),
        st.booleans(), st.booleans(),
        st.integers(1, 4),
    )


def trace_strategy(num_cores: int, max_len: int = 300):
    entry = st.tuples(
        st.integers(0, num_cores - 1),
        st.integers(0, 120),
        st.booleans(),
        st.integers(0, 40),
    )
    return st.lists(entry, min_size=0, max_size=max_len)


def build_trace(entries):
    n = len(entries)
    return Trace(
        core=np.array([e[0] for e in entries], dtype=np.uint16),
        address=np.array([e[1] for e in entries],
                         dtype=np.uint64) * LINE_SIZE,
        is_write=np.array([e[2] for e in entries], dtype=bool),
        gap=np.array([e[3] for e in entries], dtype=np.uint32),
    )


def trace_digest(trace: Trace):
    return (trace.core.tolist(), trace.lines.tolist(),
            trace.is_write.tolist(), trace.gap.tolist())


def hierarchy_digest(h: CacheHierarchy):
    out = {}
    for name, cache in [("l2", h.l2)] + \
            [(f"l1d{c}", h.l1d[c]) for c in range(h.num_cores)] + \
            [(f"l1i{c}", h.l1i[c]) for c in range(h.num_cores)]:
        out[name] = (
            cache.stats.accesses, cache.stats.hits, cache.stats.misses,
            cache.stats.writebacks,
            tuple(tuple(s.items()) for s in cache._sets),
        )
    return out


def run_kernel(config, cores, traces, flush_at_end, kernel, native):
    h = CacheHierarchy(config, num_cores=cores)
    outs = []
    with knob_overrides(cache_native=native):
        if not native:
            _ckernel._reset_for_tests()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for i, trace in enumerate(traces):
                last = i == len(traces) - 1
                outs.append(filter_trace(
                    trace, h, flush_at_end=flush_at_end and last,
                    cache_kernel=kernel))
        if not native:
            _ckernel._reset_for_tests()
    return [trace_digest(t) for t in outs], hierarchy_digest(h)


class TestFilterParity:
    @settings(max_examples=60, deadline=None)
    @given(hierarchy_strategy(), st.data(), st.booleans())
    def test_array_kernels_match_sparse(self, hc, data, flush):
        config, cores = hc
        # Two back-to-back traces so the second starts from carried-over
        # cache state (the kernels must seed from and sync back to the
        # hierarchy exactly).
        traces = [build_trace(data.draw(trace_strategy(cores)))
                  for _ in range(2)]
        ref = run_kernel(config, cores, traces, flush, "sparse", True)
        py = run_kernel(config, cores, traces, flush, "array", False)
        assert py == ref
        if _ckernel.filter_available():
            nat = run_kernel(config, cores, traces, flush, "array", True)
            assert nat == ref

    @settings(max_examples=30, deadline=None)
    @given(hierarchy_strategy(), st.data())
    def test_per_core_gap_accounting(self, hc, data):
        """Gaps of filtered-out hits fold onto the next residual of the
        same core, identically in both kernels."""
        config, cores = hc
        trace = build_trace(data.draw(trace_strategy(cores, max_len=200)))
        ref, _ = run_kernel(config, cores, [trace], False, "sparse", True)
        arr, _ = run_kernel(config, cores, [trace], False, "array", True)
        assert arr == ref
        out_gaps = ref[0][3]
        out_cores = ref[0][0]
        # Instruction conservation per core: emitted gaps + accesses
        # never exceed the core's total instruction budget.
        for c in range(cores):
            mask = trace.core == c
            budget = int(trace.gap[mask].sum()) + int(mask.sum())
            emitted = sum(g for g, oc in zip(out_gaps, out_cores)
                          if oc == c)
            assert emitted <= budget


class TestFlushOrdering:
    def _dirty_hierarchy(self):
        config = HierarchyConfig(
            l1i=CacheConfig(size_bytes=512, associativity=2),
            l1d=CacheConfig(size_bytes=512, associativity=2),
            l2=CacheConfig(size_bytes=2048, associativity=2),
        )
        h = CacheHierarchy(config, num_cores=2)
        rng = np.random.default_rng(3)
        for line in rng.permutation(48).tolist():
            h.access(int(line) % 2, int(line), True)
        return h

    def test_flush_emits_ascending_lines(self):
        flushed = self._dirty_hierarchy().flush()
        lines = [line for line, _w in flushed]
        assert lines == sorted(lines)
        assert all(w for _line, w in flushed)
        assert len(set(lines)) == len(lines)

    def test_flush_order_independent_of_history(self):
        """Two hierarchies holding the same dirty lines via different
        access orders flush identically."""
        config = HierarchyConfig(
            l1i=CacheConfig(size_bytes=512, associativity=2),
            l1d=CacheConfig(size_bytes=512, associativity=2),
            l2=CacheConfig(size_bytes=4096, associativity=4),
        )
        lines = list(range(12))
        h1 = CacheHierarchy(config, num_cores=1)
        h2 = CacheHierarchy(config, num_cores=1)
        for line in lines:
            h1.access(0, line, True)
        for line in reversed(lines):
            h2.access(0, line, True)
        assert h1.flush() == h2.flush()

    @pytest.mark.parametrize("kernel", ["sparse", "array"])
    def test_filter_flush_tail_sorted(self, kernel):
        config = HierarchyConfig(
            l1i=CacheConfig(size_bytes=512, associativity=2),
            l1d=CacheConfig(size_bytes=512, associativity=2),
            l2=CacheConfig(size_bytes=2048, associativity=2),
        )
        h = CacheHierarchy(config, num_cores=1)
        rng = np.random.default_rng(11)
        n = 60
        trace = Trace(
            core=np.zeros(n, dtype=np.uint16),
            address=(rng.integers(0, 40, n) * LINE_SIZE).astype(np.uint64),
            is_write=np.ones(n, dtype=bool),
            gap=np.zeros(n, dtype=np.uint32),
        )
        out = filter_trace(trace, h, flush_at_end=True, cache_kernel=kernel)
        h2 = CacheHierarchy(config, num_cores=1)
        base = filter_trace(trace, h2, flush_at_end=False,
                            cache_kernel=kernel)
        # The flush tail: write requests attributed to core 0 with zero
        # gap, in ascending line order.
        tail = out.lines[len(base):].tolist()
        assert len(tail) > 0
        assert tail == sorted(tail)
        assert out.is_write[len(base):].all()
        assert not out.gap[len(base):].any()


def test_resolve_cache_kernel_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_cache_kernel("simd")
    with knob_overrides(cache_kernel="sparse"):
        assert resolve_cache_kernel() == "sparse"
    assert resolve_cache_kernel("array") == "array"
